//! The parcel port: per-locality send/receive engine.
//!
//! ## Send path
//!
//! `send_parcel` routes through the per-action *interceptor* table — the
//! plug-in point where `rpx-coalesce` installs its coalescer for actions
//! flagged for message coalescing (the analogue of
//! `HPX_ACTION_USES_MESSAGE_COALESCING`). Unintercepted parcels, and
//! batches emitted by interceptors, land in the egress queue. The
//! [`ParcelPort::pump`] — run as scheduler background work — encodes
//! egress entries into framed messages (real serialization, charged as
//! background time) and drives the fabric's send/receive pumps.
//!
//! The send fast path is lock-free and allocation-free in steady state:
//! the interceptor table and direct-action set are read with plain
//! `Acquire` loads ([`SlotTable`]/[`BitTable`]), hooks live in
//! [`ArcCell`]s, single-parcel batches store their parcel inline (no
//! buffer at all), and the egress queue is drained in one sweep per pump.
//!
//! ## Receive path
//!
//! Delivered messages are decoded (single parcel or coalesced batch) and
//! each parcel becomes a scheduler task ("the parcel is converted into an
//! HPX thread and placed in the scheduler queue", §II-A). Single-parcel
//! messages go through the per-task [`TaskSpawner`]; all parcels of a
//! coalesced message are handed to the scheduler as *one* batch through
//! the [`BatchTaskSpawner`] seam (one admission per message — the
//! receive-side dual of send-side coalescing), reusing a thread-local
//! scratch vector across pumps. Direct actions always run inline on the
//! pumping thread. If a parcel carries a continuation, the result is
//! shipped back as a continuation parcel addressed to the origin's LCO.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use bytes::Bytes;
use parking_lot::Mutex;

use rpx_agas::Gid;
use rpx_net::{DeliveryClass, Message, MessageKind, TransportPort};
use rpx_serialize::{ArchiveReader, ArchiveWriter, WireError};
use rpx_util::sync::{ArcCell, BitTable, SlotTable};
use rpx_util::{IdAllocator, LogHistogram};

use crate::action::{ActionId, ActionRegistry};
use crate::batch::ParcelBatch;
use crate::egress::{EgressEntry, EgressQueue};
use crate::parcel::Parcel;

/// Sink for parcels that are ready to leave the locality as one message.
///
/// Implemented by [`ParcelPort`]; consumed by interceptors (the coalescer
/// flushes its queue through this).
pub trait SendPath: Send + Sync {
    /// Emit a batch (all bound for `dst`) as a single message.
    fn emit(&self, dst: u32, batch: ParcelBatch);

    /// A Coalesce-class mailbox replaced a queued value with a newer one
    /// (statistics hook; the default implementation ignores it).
    fn note_mailbox_replaced(&self) {}

    /// A Coalesce-class mailbox flushed its occupant to the wire
    /// (statistics hook; the default implementation ignores it).
    fn note_mailbox_flushed(&self) {}
}

/// A per-action send-side hook (the coalescing plug-in interface).
pub trait ParcelInterceptor: Send + Sync {
    /// Take ownership of an outgoing parcel (queue it, or emit it
    /// immediately through the [`SendPath`]).
    fn submit(&self, parcel: Parcel);
    /// Flush any internally queued parcels immediately.
    fn flush(&self);
}

/// Schedules a closure as a lightweight task on the locality's scheduler.
pub type TaskSpawner = Arc<SpawnFn>;

/// The unsized function type behind [`TaskSpawner`].
pub type SpawnFn = dyn Fn(Box<dyn FnOnce() + Send + 'static>) + Send + Sync;

/// A boxed task body, the unit the spawner seam moves around.
pub type TaskFn = Box<dyn FnOnce() + Send + 'static>;

/// Schedules a whole batch of closures in one scheduler admission.
///
/// The implementation must *drain* the vector (leaving its capacity
/// behind — the port reuses it as scratch across pumps) and execute every
/// drained closure exactly once. Installed via
/// [`ParcelPort::set_batch_spawner`]; when absent, the port falls back to
/// spawning through the per-task [`TaskSpawner`].
pub type BatchTaskSpawner = Arc<BatchSpawnFn>;

/// The unsized function type behind [`BatchTaskSpawner`].
pub type BatchSpawnFn = dyn Fn(&mut Vec<TaskFn>) + Send + Sync;

/// Parcel-level traffic statistics.
#[derive(Debug)]
pub struct ParcelPortStats {
    /// Parcels submitted for sending.
    pub parcels_sent: AtomicU64,
    /// Parcels decoded from received messages.
    pub parcels_received: AtomicU64,
    /// Messages encoded and handed to the fabric.
    pub messages_sent: AtomicU64,
    /// Messages received and decoded.
    pub messages_received: AtomicU64,
    /// Parcels dropped (unknown action, decode failure).
    pub dropped: AtomicU64,
    /// Coalescing-buffer occupancy at flush: parcels per encoded message,
    /// recorded in the egress pump the moment a batch is framed. Bucketed
    /// log₂ so the send hot path pays two relaxed adds.
    pub flush_occupancy: Arc<LogHistogram>,
    /// Wire payload bytes per encoded message (header excluded).
    pub wire_bytes: Arc<LogHistogram>,
    /// Tasks admitted per batched spawn on the ingress path (decode →
    /// spawn batch size of one coalesced message).
    pub spawn_batch: Arc<LogHistogram>,
    /// Coalesce-class mailbox slots that replaced a queued value with a
    /// newer one — each replacement is one wire record saved.
    pub coalesce_mailbox_replaced: AtomicU64,
    /// Coalesce-class mailbox flushes (occupant shipped to the wire).
    pub coalesce_mailbox_flushed: AtomicU64,
    /// Received Coalesce-class parcels discarded because a newer value
    /// from the same (source, action) was already delivered.
    pub coalesce_stale_dropped: AtomicU64,
    /// Submissions that found their destination's egress backlog at or
    /// above the backpressure watermark (each such admission counts once,
    /// whether it ended in shedding or blocking).
    pub backpressure_events: AtomicU64,
    /// BestEffort parcels shed by backpressure admission control (the
    /// send-side half of the `delivered + shed == sent` accounting;
    /// disjoint from the transport's `best_effort_dropped`).
    pub backpressure_shed: AtomicU64,
    /// Nanoseconds Lossless/Coalesce submitters spent blocked waiting for
    /// a destination's backlog to fall below the watermark.
    pub backpressure_blocked_ns: AtomicU64,
    /// Send-side sheds per destination locality (backpressure sheds plus
    /// global BestEffort backlog-bound sheds) — the per-endpoint-pair
    /// breakdown behind the exact `delivered + shed == sent` accounting.
    shed_by_dest: Mutex<HashMap<u32, u64>>,
}

impl ParcelPortStats {
    /// Parcels this port shed at submit time that were bound for `dst`
    /// (backpressure admission plus the global BestEffort backlog bound).
    pub fn sheds_to(&self, dst: u32) -> u64 {
        self.shed_by_dest.lock().get(&dst).copied().unwrap_or(0)
    }

    fn record_shed(&self, dst: u32) {
        *self.shed_by_dest.lock().entry(dst).or_insert(0) += 1;
    }
}

impl Default for ParcelPortStats {
    fn default() -> Self {
        // 32 log₂ buckets cover occupancies/bytes/batches up to 2³¹.
        ParcelPortStats {
            parcels_sent: AtomicU64::new(0),
            parcels_received: AtomicU64::new(0),
            messages_sent: AtomicU64::new(0),
            messages_received: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            flush_occupancy: Arc::new(LogHistogram::new(32)),
            wire_bytes: Arc::new(LogHistogram::new(32)),
            spawn_batch: Arc::new(LogHistogram::new(32)),
            coalesce_mailbox_replaced: AtomicU64::new(0),
            coalesce_mailbox_flushed: AtomicU64::new(0),
            coalesce_stale_dropped: AtomicU64::new(0),
            backpressure_events: AtomicU64::new(0),
            backpressure_shed: AtomicU64::new(0),
            backpressure_blocked_ns: AtomicU64::new(0),
            shed_by_dest: Mutex::new(HashMap::new()),
        }
    }
}

/// Sentinel for "no continuation action installed".
const NO_ACTION: u32 = u32::MAX;

/// Tunables of a [`ParcelPort`], plumbed down from the cluster builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParcelPortConfig {
    /// Egress entries encoded per pump sweep (bounds per-poll latency of
    /// the background thread; the paper's HPX analogue drains its parcel
    /// queues in similarly bounded chunks).
    pub egress_drain_budget: usize,
    /// Load-shedding bound for BestEffort-class actions: when the egress
    /// queue (at submit time) or the transport's outbound backlog (at
    /// pump time) holds at least this many entries, further BestEffort
    /// parcels are dropped and counted in the transport's
    /// `best_effort_dropped` statistic instead of queued — bounded
    /// memory under overload, by contract.
    pub best_effort_backlog: usize,
    /// Per-destination egress backpressure watermark: when the number of
    /// egress entries queued for one destination reaches this bound,
    /// admission control engages for further parcels to that destination
    /// — BestEffort parcels are shed (counted in `backpressure_shed`),
    /// Lossless/Coalesce submitters block for up to
    /// `backpressure_block_us` waiting for the backlog to drain (time
    /// counted in `backpressure_blocked_ns`), then proceed. `None`
    /// disables the watermark (the default).
    pub backpressure_watermark: Option<usize>,
    /// Upper bound, in microseconds, on how long one Lossless/Coalesce
    /// submission may block at the watermark before being admitted
    /// anyway. Bounded so a submitter on a pump thread can never
    /// deadlock against its own drain.
    pub backpressure_block_us: u64,
}

impl Default for ParcelPortConfig {
    fn default() -> Self {
        ParcelPortConfig {
            egress_drain_budget: 8,
            best_effort_backlog: 1024,
            backpressure_watermark: None,
            backpressure_block_us: 500,
        }
    }
}

struct Inner {
    locality: u32,
    actions: Arc<ActionRegistry>,
    net: Arc<dyn TransportPort>,
    config: ParcelPortConfig,
    /// Per-action send hooks, indexed by `ActionId` — lock-free reads on
    /// every `send_parcel`.
    interceptors: SlotTable<dyn ParcelInterceptor>,
    /// Actions executed inline on the receive path instead of being
    /// spawned as tasks (HPX "direct actions"); used for cheap runtime
    /// internals like continuation delivery.
    direct_actions: BitTable,
    /// Actions registered under [`DeliveryClass::BestEffort`] — their
    /// parcels are shed past the backlog bound and deduplicated on the
    /// receive side. Lock-free reads on every send and delivery.
    best_effort_actions: BitTable,
    /// Actions registered under [`DeliveryClass::Coalesce`] — their
    /// messages carry the Coalesce class bit and receivers keep only
    /// monotone-latest values.
    coalesce_actions: BitTable,
    /// BestEffort receive dedup: per-source sliding window over parcel
    /// ids (ids are allocated monotonically per sender), so a
    /// wire-duplicated unsequenced frame is delivered at most once.
    be_dedup: Mutex<HashMap<u32, DedupWindow>>,
    /// Coalesce monotone-latest filter: highest parcel id delivered per
    /// (source locality, action); stale values are discarded.
    coalesce_seen: Mutex<HashMap<(u32, u32), u64>>,
    egress: EgressQueue,
    spawner: ArcCell<SpawnFn>,
    /// Batched spawner: one scheduler admission per coalesced message
    /// instead of one per parcel. Optional — absent, the port degrades to
    /// the per-parcel `spawner`.
    batch_spawner: ArcCell<BatchSpawnFn>,
    /// The action used to deliver continuation results (registered by the
    /// runtime core as its `set-lco` builtin); `NO_ACTION` when unset.
    continuation_action: AtomicU32,
    /// Handler for [`MessageKind::Control`] messages (the runtime's
    /// boot/barrier plane); without one, control traffic is dropped.
    control: ArcCell<dyn Fn(Message) + Send + Sync>,
    notify: ArcCell<dyn Fn() + Send + Sync>,
    ids: IdAllocator,
    stats: ParcelPortStats,
    /// Egress entries popped but not yet handed to the fabric (mid-pump);
    /// keeps quiescence checks honest.
    ///
    /// Ordering: the gauge rises (`Acquire` RMW) *before* entries leave
    /// the egress queue and falls (`Release`) only *after* the message is
    /// handed to the fabric, so a quiescence check that loads 0 with
    /// `Acquire` and then observes the queues empty cannot miss in-flight
    /// work. SeqCst is unnecessary: there is no multi-variable total-order
    /// requirement, only this happens-before pairing.
    processing: AtomicUsize,
}

/// Words in the dedup bitmap; the window spans `DEDUP_WORDS * 64` ids.
const DEDUP_WORDS: usize = 16;
const DEDUP_WINDOW: u64 = DEDUP_WORDS as u64 * 64;

/// Sliding at-most-once window over the monotone parcel ids of one
/// source locality, deduplicating BestEffort traffic (which travels
/// unsequenced, so a wire-duplicated frame reaches this layer twice).
///
/// Bit `i` of the bitmap records delivery of `max_id - i`; ids behind
/// the whole window are discarded as stale — erring on the
/// at-most-once side, which is the BestEffort contract. The window is
/// wide enough (1024 ids) that a frame has to be displaced far past
/// anything wire reordering or pump-thread scheduling produces before
/// at-most-once has to discard it as stale.
#[derive(Debug)]
struct DedupWindow {
    max_id: u64,
    /// Seen-bits for offsets behind `max_id`: offset `k` lives at bit
    /// `k % 64` of word `k / 64` (word 0 bit 0 is `max_id` itself).
    bitmap: [u64; DEDUP_WORDS],
    seeded: bool,
}

impl Default for DedupWindow {
    fn default() -> Self {
        DedupWindow {
            max_id: 0,
            bitmap: [0; DEDUP_WORDS],
            seeded: false,
        }
    }
}

/// The dedup window's verdict for one arriving BestEffort parcel id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admit {
    /// Not seen before: deliver.
    Fresh,
    /// Inside the window with its seen-bit already set: a wire duplicate,
    /// suppressed and charged to `duplicates_suppressed`.
    Duplicate,
    /// Behind the window entirely — the wire reordered this frame so far
    /// past its peers that at-most-once can no longer prove it unseen.
    /// Discarded and charged to `best_effort_dropped` (the receive-side
    /// half of the `delivered + dropped == sent` accounting), never to
    /// the duplicate gauge.
    Stale,
}

impl DedupWindow {
    /// Record `id` and classify it (see [`Admit`]).
    fn admit(&mut self, id: u64) -> Admit {
        if !self.seeded {
            self.seeded = true;
            self.max_id = id;
            self.bitmap[0] = 1;
            return Admit::Fresh;
        }
        if id > self.max_id {
            self.shift(id - self.max_id);
            self.bitmap[0] |= 1;
            self.max_id = id;
            Admit::Fresh
        } else {
            let back = self.max_id - id;
            if back >= DEDUP_WINDOW {
                return Admit::Stale;
            }
            let (word, bit) = ((back / 64) as usize, 1u64 << (back % 64));
            if self.bitmap[word] & bit != 0 {
                Admit::Duplicate
            } else {
                self.bitmap[word] |= bit;
                Admit::Fresh
            }
        }
    }

    /// Slide the window forward by `ahead` ids: every seen-bit moves to a
    /// higher back-offset, bits pushed past the window fall off.
    fn shift(&mut self, ahead: u64) {
        if ahead >= DEDUP_WINDOW {
            self.bitmap = [0; DEDUP_WORDS];
            return;
        }
        let (words, bits) = ((ahead / 64) as usize, (ahead % 64) as u32);
        for w in (0..DEDUP_WORDS).rev() {
            let lo = if w >= words {
                self.bitmap[w - words]
            } else {
                0
            };
            let hi = if bits > 0 && w > words {
                self.bitmap[w - words - 1] >> (64 - bits)
            } else {
                0
            };
            self.bitmap[w] = (lo << bits) | hi;
        }
    }
}

/// The per-locality parcel engine.
pub struct ParcelPort {
    inner: Arc<Inner>,
}

impl ParcelPort {
    /// Create a port for `locality` on `net` with default tunables.
    ///
    /// The returned port is installed as the transport receive handler.
    pub fn new(
        locality: u32,
        net: Arc<dyn TransportPort>,
        actions: Arc<ActionRegistry>,
    ) -> Arc<Self> {
        Self::with_config(locality, net, actions, ParcelPortConfig::default())
    }

    /// Create a port with explicit [`ParcelPortConfig`] tunables.
    pub fn with_config(
        locality: u32,
        net: Arc<dyn TransportPort>,
        actions: Arc<ActionRegistry>,
        config: ParcelPortConfig,
    ) -> Arc<Self> {
        assert!(
            config.egress_drain_budget > 0,
            "egress_drain_budget must be at least 1"
        );
        let inner = Arc::new(Inner {
            locality,
            actions,
            net,
            config,
            interceptors: SlotTable::new(),
            direct_actions: BitTable::new(),
            best_effort_actions: BitTable::new(),
            coalesce_actions: BitTable::new(),
            be_dedup: Mutex::new(HashMap::new()),
            coalesce_seen: Mutex::new(HashMap::new()),
            egress: EgressQueue::new(),
            spawner: ArcCell::new(),
            batch_spawner: ArcCell::new(),
            continuation_action: AtomicU32::new(NO_ACTION),
            control: ArcCell::new(),
            notify: ArcCell::new(),
            ids: IdAllocator::new(),
            stats: ParcelPortStats::default(),
            processing: AtomicUsize::new(0),
        });
        let weak = Arc::downgrade(&inner);
        inner.net.set_receiver(Arc::new(move |message| {
            if let Some(inner) = weak.upgrade() {
                receive_message(&inner, message);
            }
        }));
        Arc::new(ParcelPort { inner })
    }

    /// This port's locality.
    pub fn locality(&self) -> u32 {
        self.inner.locality
    }

    /// Parcel statistics.
    pub fn stats(&self) -> &ParcelPortStats {
        &self.inner.stats
    }

    /// The underlying transport port.
    pub fn net(&self) -> &Arc<dyn TransportPort> {
        &self.inner.net
    }

    /// This port's tunables.
    pub fn config(&self) -> &ParcelPortConfig {
        &self.inner.config
    }

    /// The shared action registry.
    pub fn actions(&self) -> &Arc<ActionRegistry> {
        &self.inner.actions
    }

    /// Install the task spawner (the locality's scheduler).
    pub fn set_spawner(&self, spawner: TaskSpawner) {
        self.inner.spawner.set(spawner);
    }

    /// Install the batched task spawner (typically
    /// `Scheduler::spawn_batch`): all non-direct parcels of one coalesced
    /// message are handed to it as a single batch. Without it, each
    /// parcel goes through the per-task spawner individually.
    pub fn set_batch_spawner(&self, spawner: BatchTaskSpawner) {
        self.inner.batch_spawner.set(spawner);
    }

    /// Install the wake-up hook (typically `Scheduler::notify`).
    pub fn set_notify(&self, notify: impl Fn() + Send + Sync + 'static) {
        self.inner.notify.set(Arc::new(notify));
    }

    /// Install the handler for [`MessageKind::Control`] messages — the
    /// runtime's boot/barrier control plane. Runs inline on the pumping
    /// thread, so handlers must be short and non-blocking.
    pub fn set_control_handler(&self, handler: impl Fn(Message) + Send + Sync + 'static) {
        self.inner.control.set(Arc::new(handler));
    }

    /// Send a raw control-plane message to `dst`'s port. Control
    /// messages bypass the parcel layer entirely (no action dispatch);
    /// they ride the transport — including any reliability decorator —
    /// like any other message.
    pub fn send_control(&self, dst: u32, payload: Bytes) {
        self.inner.net.send(Message::new(
            self.inner.locality,
            dst,
            MessageKind::Control,
            payload,
        ));
    }

    /// Declare which action delivers continuation results.
    pub fn set_continuation_action(&self, action: ActionId) {
        self.inner
            .continuation_action
            .store(action.0, Ordering::Release);
    }

    /// Mark an action as *direct*: received parcels for it run inline on
    /// the pumping (background) thread instead of becoming tasks. Only
    /// suitable for short, non-blocking handlers.
    pub fn set_direct(&self, action: ActionId) {
        self.inner.direct_actions.set(action.0 as usize);
    }

    /// Declare the delivery class of `action` on this port (called by
    /// the runtime at registration; [`DeliveryClass::Lossless`] needs no
    /// marking — it is the default for unmarked actions).
    pub fn set_action_class(&self, action: ActionId, class: DeliveryClass) {
        match class {
            DeliveryClass::Lossless => {}
            DeliveryClass::BestEffort => self.inner.best_effort_actions.set(action.0 as usize),
            DeliveryClass::Coalesce => self.inner.coalesce_actions.set(action.0 as usize),
        }
    }

    /// The delivery class `action` is marked with on this port.
    pub fn action_class(&self, action: ActionId) -> DeliveryClass {
        action_class(&self.inner, action)
    }

    /// Install (or replace) a send-side interceptor for `action`.
    pub fn set_interceptor(&self, action: ActionId, interceptor: Arc<dyn ParcelInterceptor>) {
        self.inner.interceptors.set(action.0 as usize, interceptor);
    }

    /// Remove the interceptor for `action`, if any.
    pub fn clear_interceptor(&self, action: ActionId) -> bool {
        self.inner.interceptors.clear(action.0 as usize)
    }

    /// Flush every interceptor's queued parcels.
    pub fn flush_interceptors(&self) {
        let mut pending = Vec::new();
        self.inner
            .interceptors
            .for_each(|_, i| pending.push(Arc::clone(i)));
        for i in pending {
            i.flush();
        }
    }

    /// Submit a parcel for transmission.
    ///
    /// Assigns a fresh parcel id if the id is zero. Flagged actions pass
    /// through their interceptor (the coalescer); others go straight to
    /// the egress queue. Steady state does no locking and no allocation:
    /// interceptor lookup is an atomic load and the single-parcel buffer
    /// comes from the recycled pool.
    pub fn send_parcel(&self, mut parcel: Parcel) {
        if parcel.id == 0 {
            parcel.id = self.inner.ids.next();
        }
        self.inner
            .stats
            .parcels_sent
            .fetch_add(1, Ordering::Relaxed);
        route_parcel(&self.inner, parcel);
    }

    /// Pump the send engine once:
    /// 1. encode queued egress entries into framed messages (serialization
    ///    work, charged to the calling — background — thread),
    /// 2. drive the fabric's send and receive pumps.
    ///
    /// Returns `true` if any work was done.
    pub fn pump(&self) -> bool {
        thread_local! {
            /// Per-thread drain scratch: one egress sweep per pump, reused
            /// across calls so pumping allocates nothing in steady state.
            static DRAIN: RefCell<Vec<EgressEntry>> = const { RefCell::new(Vec::new()) };
        }
        let mut did_work = false;
        DRAIN.with(|drain| {
            let mut drain = drain.borrow_mut();
            // Raise the in-flight gauge before taking entries out of the
            // queue (see `Inner::processing` ordering notes).
            self.inner.processing.fetch_add(1, Ordering::Acquire);
            let budget = self.inner.config.egress_drain_budget;
            let taken = self.inner.egress.drain_into(&mut drain, budget);
            if taken == 0 {
                self.inner.processing.fetch_sub(1, Ordering::Release);
                return;
            }
            did_work = true;
            for (dst, batch) in drain.drain(..) {
                // Batches are per-action (interceptors queue one action;
                // unintercepted parcels travel as singles), so the first
                // parcel's class is the message's class.
                let class = action_class(&self.inner, batch[0].action);
                if class == DeliveryClass::BestEffort
                    && self.inner.net.outbound_backlog() >= self.inner.config.best_effort_backlog
                {
                    // Transport under pressure: shed BestEffort load here
                    // rather than grow the wire backlog. The drop is
                    // accounted, never owed to quiescence.
                    self.inner
                        .net
                        .stats()
                        .best_effort_dropped
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                self.inner.stats.flush_occupancy.record(batch.len() as u64);
                let (kind, payload) = encode_message(&batch);
                // Returns the batch buffer to the pool before the fabric
                // send, keeping pool occupancy high under load.
                drop(batch);
                self.inner.stats.wire_bytes.record(payload.len() as u64);
                self.inner
                    .stats
                    .messages_sent
                    .fetch_add(1, Ordering::Relaxed);
                self.inner
                    .net
                    .send(Message::new(self.inner.locality, dst, kind, payload).with_class(class));
            }
            self.inner.processing.fetch_sub(1, Ordering::Release);
        });
        let sent = self.inner.net.pump_send();
        let received = self.inner.net.pump_recv();
        did_work || sent || received
    }

    /// Parcels queued for encoding but not yet framed.
    pub fn egress_backlog(&self) -> usize {
        self.inner.egress.len()
    }

    /// Egress sweeps currently encoding (mid-pump).
    pub fn processing(&self) -> usize {
        self.inner.processing.load(Ordering::Acquire)
    }
}

impl SendPath for ParcelPort {
    fn emit(&self, dst: u32, batch: ParcelBatch) {
        debug_assert!(!batch.is_empty(), "emit of empty batch");
        debug_assert!(batch.iter().all(|p| p.dest_locality == dst));
        self.inner.egress.push(dst, batch);
        if let Some(n) = self.inner.notify.get() {
            n();
        }
    }

    fn note_mailbox_replaced(&self) {
        self.inner
            .stats
            .coalesce_mailbox_replaced
            .fetch_add(1, Ordering::Relaxed);
    }

    fn note_mailbox_flushed(&self) {
        self.inner
            .stats
            .coalesce_mailbox_flushed
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// The delivery class of `action` as marked on this port (lock-free).
fn action_class(inner: &Inner, action: ActionId) -> DeliveryClass {
    if inner.best_effort_actions.test(action.0 as usize) {
        DeliveryClass::BestEffort
    } else if inner.coalesce_actions.test(action.0 as usize) {
        DeliveryClass::Coalesce
    } else {
        DeliveryClass::Lossless
    }
}

/// Per-destination egress admission control: returns `false` if the
/// parcel must be shed.
///
/// When the destination's egress backlog sits at or above the watermark,
/// the action's [`DeliveryClass`] decides the response: BestEffort load
/// is shed immediately (bounded memory, accounted exactly), while
/// Lossless and Coalesce submitters block — in short sleeps, re-checking
/// the backlog — for at most `backpressure_block_us` before being
/// admitted anyway (the bound makes deadlock against the submitter's own
/// pump impossible). Every admission that hits the watermark increments
/// `backpressure_events` exactly once.
fn backpressure_admit(inner: &Inner, dst: u32, class: DeliveryClass) -> bool {
    let Some(watermark) = inner.config.backpressure_watermark else {
        return true;
    };
    if inner.egress.dest_backlog(dst) < watermark {
        return true;
    }
    inner
        .stats
        .backpressure_events
        .fetch_add(1, Ordering::Relaxed);
    if class == DeliveryClass::BestEffort {
        inner
            .stats
            .backpressure_shed
            .fetch_add(1, Ordering::Relaxed);
        inner.stats.record_shed(dst);
        return false;
    }
    let started = std::time::Instant::now();
    let deadline = std::time::Duration::from_micros(inner.config.backpressure_block_us);
    while started.elapsed() < deadline && inner.egress.dest_backlog(dst) >= watermark {
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
    inner
        .stats
        .backpressure_blocked_ns
        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    true
}

/// Hand `parcel` to its action's interceptor, or straight to egress.
fn route_parcel(inner: &Inner, parcel: Parcel) {
    if inner.best_effort_actions.test(parcel.action.0 as usize)
        && inner.egress.len() >= inner.config.best_effort_backlog
    {
        // BestEffort load shedding at submit time: past the backlog
        // bound the parcel is dropped (and accounted) instead of queued,
        // so an overloaded BestEffort producer cannot grow the egress
        // queue without bound or wedge quiescence.
        inner
            .net
            .stats()
            .best_effort_dropped
            .fetch_add(1, Ordering::Relaxed);
        inner.stats.record_shed(parcel.dest_locality);
        return;
    }
    if !backpressure_admit(
        inner,
        parcel.dest_locality,
        action_class(inner, parcel.action),
    ) {
        return;
    }
    match inner.interceptors.get(parcel.action.0 as usize) {
        Some(i) => i.submit(parcel),
        None => {
            let dst = parcel.dest_locality;
            let batch = ParcelBatch::single(parcel);
            inner.egress.push(dst, batch);
            if let Some(n) = inner.notify.get() {
                n();
            }
        }
    }
}

fn encode_message(parcels: &[Parcel]) -> (MessageKind, Bytes) {
    if parcels.len() == 1 {
        let mut w = ArchiveWriter::pooled(parcels[0].wire_size());
        parcels[0].encode(&mut w);
        (MessageKind::Parcel, w.finish())
    } else {
        (MessageKind::Coalesced, Parcel::encode_batch(parcels))
    }
}

fn receive_message(inner: &Arc<Inner>, message: Message) {
    inner
        .stats
        .messages_received
        .fetch_add(1, Ordering::Relaxed);
    match message.kind {
        MessageKind::Parcel => {
            // Single-parcel fast path: no intermediate Vec at all.
            let mut r = ArchiveReader::new(message.payload);
            match Parcel::decode(&mut r) {
                Ok(p) => {
                    inner.stats.parcels_received.fetch_add(1, Ordering::Relaxed);
                    deliver_single(inner, p);
                }
                Err(_) => {
                    inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        MessageKind::Coalesced => match Parcel::decode_batch(message.payload) {
            Ok(ps) => {
                inner
                    .stats
                    .parcels_received
                    .fetch_add(ps.len() as u64, Ordering::Relaxed);
                deliver_coalesced(inner, ps);
            }
            Err(_) => {
                inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
            }
        },
        MessageKind::Control => {
            if let Some(handler) = inner.control.get() {
                handler(message);
            }
        }
        // Reliability acks are consumed inside rpx-net's ReliablePort
        // and normally never reach this layer; ignore any that arrive
        // over a raw (non-reliable) port.
        MessageKind::Ack => {}
    }
}

/// Per-class receive admission: `true` if the parcel should execute.
///
/// * BestEffort parcels are deduplicated against the per-source sliding
///   window — BestEffort travels unsequenced, so a wire-duplicated frame
///   reaches this layer twice and would otherwise double-execute.
/// * Coalesce parcels deliver only monotone-latest values per
///   (source, action): a stale value arriving after a newer one (wire
///   reordering, retransmit races) is discarded, preserving the
///   newest-wins contract end to end. Parcels carrying a continuation
///   bypass the filter — a promise must always be resolved.
/// * Lossless parcels are always admitted (exactly-once is the
///   reliability sublayer's job).
fn admit_parcel(inner: &Arc<Inner>, parcel: &Parcel) -> bool {
    if inner.best_effort_actions.test(parcel.action.0 as usize) {
        let verdict = inner
            .be_dedup
            .lock()
            .entry(parcel.src_locality)
            .or_default()
            .admit(parcel.id);
        match verdict {
            Admit::Fresh => return true,
            Admit::Duplicate => {
                inner
                    .net
                    .stats()
                    .duplicates_suppressed
                    .fetch_add(1, Ordering::Relaxed);
            }
            Admit::Stale => {
                inner
                    .net
                    .stats()
                    .best_effort_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        return false;
    }
    if inner.coalesce_actions.test(parcel.action.0 as usize) && !parcel.continuation.is_valid() {
        let mut seen = inner.coalesce_seen.lock();
        let last = seen
            .entry((parcel.src_locality, parcel.action.0))
            .or_insert(0);
        if parcel.id <= *last {
            inner
                .stats
                .coalesce_stale_dropped
                .fetch_add(1, Ordering::Relaxed);
            return false;
        }
        *last = parcel.id;
    }
    true
}

/// Deliver one decoded parcel: inline if direct, else one spawned task.
fn deliver_single(inner: &Arc<Inner>, parcel: Parcel) {
    if !admit_parcel(inner, &parcel) {
        return;
    }
    let weak = Arc::downgrade(inner);
    if inner.direct_actions.test(parcel.action.0 as usize) {
        // Direct action: run inline on the pumping thread. This keeps
        // continuation delivery alive even when every scheduler worker
        // is blocked in a cooperative wait.
        execute_parcel(&weak, parcel);
        return;
    }
    let Some(spawner) = inner.spawner.get() else {
        inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    };
    spawner(Box::new(move || execute_parcel(&weak, parcel)));
}

/// Deliver all parcels of one coalesced message: direct actions run
/// inline (unchanged), everything else is handed to the scheduler as one
/// batch — a single admission for the whole message. The closure scratch
/// vector is thread-local and reused across pumps, so a steady ingress
/// stream allocates only the closures themselves.
fn deliver_coalesced(inner: &Arc<Inner>, parcels: Vec<Parcel>) {
    thread_local! {
        /// Per-thread batch scratch. Taken out (not borrowed) around the
        /// delivery so a direct action that re-enters delivery on this
        /// thread cannot conflict with it.
        static SPAWN_SCRATCH: RefCell<Vec<TaskFn>> = const { RefCell::new(Vec::new()) };
    }
    let Some(batch_spawner) = inner.batch_spawner.get() else {
        // No batch seam installed: the per-parcel path, as before.
        for parcel in parcels {
            deliver_single(inner, parcel);
        }
        return;
    };
    let mut scratch = SPAWN_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
    debug_assert!(scratch.is_empty());
    scratch.reserve(parcels.len());
    for parcel in parcels {
        if !admit_parcel(inner, &parcel) {
            continue;
        }
        let weak = Arc::downgrade(inner);
        if inner.direct_actions.test(parcel.action.0 as usize) {
            execute_parcel(&weak, parcel);
        } else {
            scratch.push(Box::new(move || execute_parcel(&weak, parcel)));
        }
    }
    if !scratch.is_empty() {
        inner.stats.spawn_batch.record(scratch.len() as u64);
        batch_spawner(&mut scratch);
        debug_assert!(
            scratch.is_empty(),
            "batch spawner must drain the task vector"
        );
        scratch.clear();
    }
    SPAWN_SCRATCH.with(|s| *s.borrow_mut() = scratch);
}

/// Run a received parcel's action and deliver its continuation, if any.
fn execute_parcel(inner: &Weak<Inner>, parcel: Parcel) {
    let Some(inner) = inner.upgrade() else {
        return;
    };
    let Some(handler) = inner.actions.handler(parcel.action) else {
        inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    };
    match handler(parcel.args.clone()) {
        Ok(result) => {
            if parcel.continuation.is_valid() {
                deliver_result(&inner, parcel.continuation, parcel.src_locality, result);
            }
        }
        Err(_) => {
            inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn deliver_result(inner: &Arc<Inner>, continuation: Gid, dest: u32, result: Bytes) {
    let action = inner.continuation_action.load(Ordering::Acquire);
    if action == NO_ACTION {
        inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let response = Parcel {
        id: inner.ids.next(),
        src_locality: inner.locality,
        dest_locality: dest,
        dest_object: Gid::INVALID,
        action: ActionId(action),
        args: encode_continuation_args(continuation, &result),
        continuation: Gid::INVALID,
    };
    inner.stats.parcels_sent.fetch_add(1, Ordering::Relaxed);
    // Continuation parcels can themselves be intercepted (coalesced) if
    // the runtime flags the continuation action.
    route_parcel(inner, response);
}

/// Encode the payload of a continuation-delivery parcel.
pub fn encode_continuation_args(target: Gid, result: &Bytes) -> Bytes {
    let mut w = ArchiveWriter::pooled(result.len() + 16);
    w.put_u32_le(target.birth_locality());
    w.put_u64_le(target.sequence());
    w.put_bytes(result);
    w.finish()
}

/// Decode the payload of a continuation-delivery parcel.
pub fn decode_continuation_args(args: Bytes) -> Result<(Gid, Bytes), WireError> {
    let mut r = ArchiveReader::new(args);
    let birth = r.get_u32_le()?;
    let seq = r.get_u64_le()?;
    let result = r.get_bytes()?;
    r.expect_exhausted()?;
    Ok((Gid::from_parts(birth, seq), result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpx_net::{Fabric, LinkModel};
    use rpx_serialize::{from_bytes, to_bytes};
    use std::time::{Duration, Instant};

    /// A spawner that runs tasks inline on the pumping thread —
    /// deterministic for unit tests.
    fn inline_spawner() -> TaskSpawner {
        Arc::new(|f| f())
    }

    fn two_ports() -> (Arc<ParcelPort>, Arc<ParcelPort>, Arc<ActionRegistry>) {
        let fabric = Fabric::new(2, LinkModel::zero());
        let actions = ActionRegistry::new();
        let p0 = ParcelPort::new(0, Arc::new(fabric.port(0)), Arc::clone(&actions));
        let p1 = ParcelPort::new(1, Arc::new(fabric.port(1)), Arc::clone(&actions));
        p0.set_spawner(inline_spawner());
        p1.set_spawner(inline_spawner());
        (p0, p1, actions)
    }

    fn pump_until(ports: &[&Arc<ParcelPort>], done: impl Fn() -> bool, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !done() {
            for p in ports {
                p.pump();
            }
            if Instant::now() > deadline {
                return false;
            }
        }
        true
    }

    fn plain_parcel(dst: u32, action: ActionId, args: Bytes) -> Parcel {
        Parcel {
            id: 0,
            src_locality: if dst == 0 { 1 } else { 0 },
            dest_locality: dst,
            dest_object: Gid::INVALID,
            action,
            args,
            continuation: Gid::INVALID,
        }
    }

    #[test]
    fn fire_and_forget_parcel_executes_remotely() {
        let (p0, p1, actions) = two_ports();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let act = actions.register(
            "bump",
            Arc::new(move |args| {
                let v: u64 = from_bytes(args)?;
                h.fetch_add(v, Ordering::SeqCst);
                Ok(Bytes::new())
            }),
        );
        p0.send_parcel(plain_parcel(1, act, to_bytes(&5u64)));
        assert!(pump_until(
            &[&p0, &p1],
            || hits.load(Ordering::SeqCst) == 5,
            Duration::from_secs(2)
        ));
        assert_eq!(p0.stats().parcels_sent.load(Ordering::SeqCst), 1);
        assert_eq!(p1.stats().parcels_received.load(Ordering::SeqCst), 1);
        assert_eq!(p1.stats().messages_received.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn continuation_result_comes_back() {
        let (p0, p1, actions) = two_ports();
        let double = actions.register(
            "double",
            Arc::new(|args| {
                let v: u64 = from_bytes(args)?;
                Ok(to_bytes(&(v * 2)))
            }),
        );
        // Register a set-lco action capturing results on locality 0.
        let results: Arc<parking_lot::Mutex<Vec<(Gid, u64)>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let r = Arc::clone(&results);
        let set_lco = actions.register(
            "set-lco",
            Arc::new(move |args| {
                let (gid, payload) = decode_continuation_args(args)?;
                r.lock().push((gid, from_bytes(payload)?));
                Ok(Bytes::new())
            }),
        );
        p0.set_continuation_action(set_lco);
        p1.set_continuation_action(set_lco);

        let cont = Gid::from_parts(0, 99);
        let mut parcel = plain_parcel(1, double, to_bytes(&21u64));
        parcel.continuation = cont;
        p0.send_parcel(parcel);
        assert!(pump_until(
            &[&p0, &p1],
            || !results.lock().is_empty(),
            Duration::from_secs(2)
        ));
        assert_eq!(results.lock()[0], (cont, 42));
    }

    #[test]
    fn interceptor_captures_flagged_action_only() {
        struct Capture {
            held: parking_lot::Mutex<Vec<Parcel>>,
        }
        impl ParcelInterceptor for Capture {
            fn submit(&self, parcel: Parcel) {
                self.held.lock().push(parcel);
            }
            fn flush(&self) {}
        }
        let (p0, _p1, actions) = two_ports();
        let flagged = actions.register("flagged", Arc::new(|_| Ok(Bytes::new())));
        let normal = actions.register("normal", Arc::new(|_| Ok(Bytes::new())));
        let cap = Arc::new(Capture {
            held: parking_lot::Mutex::new(Vec::new()),
        });
        p0.set_interceptor(flagged, cap.clone());

        p0.send_parcel(plain_parcel(1, flagged, Bytes::new()));
        p0.send_parcel(plain_parcel(1, normal, Bytes::new()));
        // The flagged parcel sits in the interceptor, the normal one in
        // the egress queue.
        assert_eq!(cap.held.lock().len(), 1);
        assert_eq!(p0.egress_backlog(), 1);
        assert!(p0.clear_interceptor(flagged));
        assert!(!p0.clear_interceptor(flagged));
    }

    #[test]
    fn batch_emission_travels_as_one_coalesced_message() {
        let (p0, p1, actions) = two_ports();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let act = actions.register(
            "inc",
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            }),
        );
        let parcels: Vec<Parcel> = (0..10)
            .map(|i| {
                let mut p = plain_parcel(1, act, Bytes::new());
                p.id = i + 1;
                p
            })
            .collect();
        p0.emit(1, parcels.into());
        assert!(pump_until(
            &[&p0, &p1],
            || count.load(Ordering::SeqCst) == 10,
            Duration::from_secs(2)
        ));
        // One message on the wire, ten parcels decoded.
        assert_eq!(p1.stats().messages_received.load(Ordering::SeqCst), 1);
        assert_eq!(p1.stats().parcels_received.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn coalesced_message_spawns_as_one_batch() {
        let (p0, p1, actions) = two_ports();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let act = actions.register(
            "inc",
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            }),
        );
        // Record each batch handed over; run the tasks inline.
        let batch_sizes = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sizes = Arc::clone(&batch_sizes);
        p1.set_batch_spawner(Arc::new(move |fs| {
            sizes.lock().push(fs.len());
            for f in fs.drain(..) {
                f();
            }
        }));
        let parcels: Vec<Parcel> = (0..10)
            .map(|i| {
                let mut p = plain_parcel(1, act, Bytes::new());
                p.id = i + 1;
                p
            })
            .collect();
        p0.emit(1, parcels.into());
        assert!(pump_until(
            &[&p0, &p1],
            || count.load(Ordering::SeqCst) == 10,
            Duration::from_secs(2)
        ));
        // One coalesced message → exactly one batch of all ten parcels.
        assert_eq!(batch_sizes.lock().as_slice(), &[10]);
    }

    #[test]
    fn direct_actions_stay_inline_under_batch_spawner() {
        let (p0, p1, actions) = two_ports();
        let spawned = Arc::new(AtomicU64::new(0));
        let direct_hits = Arc::new(AtomicU64::new(0));
        let task_hits = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&direct_hits);
        let direct = actions.register(
            "direct",
            Arc::new(move |_| {
                d.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            }),
        );
        let t = Arc::clone(&task_hits);
        let tasky = actions.register(
            "tasky",
            Arc::new(move |_| {
                t.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            }),
        );
        p1.set_direct(direct);
        let sp = Arc::clone(&spawned);
        p1.set_batch_spawner(Arc::new(move |fs| {
            sp.fetch_add(fs.len() as u64, Ordering::SeqCst);
            for f in fs.drain(..) {
                f();
            }
        }));
        let mut parcels = Vec::new();
        for i in 0..6u64 {
            let act = if i % 2 == 0 { direct } else { tasky };
            let mut p = plain_parcel(1, act, Bytes::new());
            p.id = i + 1;
            parcels.push(p);
        }
        p0.emit(1, parcels.into());
        assert!(pump_until(
            &[&p0, &p1],
            || direct_hits.load(Ordering::SeqCst) == 3 && task_hits.load(Ordering::SeqCst) == 3,
            Duration::from_secs(2)
        ));
        // Only the non-direct half went through the batch spawner.
        assert_eq!(spawned.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn coalesced_without_batch_spawner_falls_back_per_parcel() {
        let (p0, p1, actions) = two_ports();
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        let act = actions.register(
            "inc",
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            }),
        );
        // two_ports installs only the per-parcel inline spawner.
        let parcels: Vec<Parcel> = (0..5)
            .map(|i| {
                let mut p = plain_parcel(1, act, Bytes::new());
                p.id = i + 1;
                p
            })
            .collect();
        p0.emit(1, parcels.into());
        assert!(pump_until(
            &[&p0, &p1],
            || count.load(Ordering::SeqCst) == 5,
            Duration::from_secs(2)
        ));
    }

    #[test]
    fn unknown_action_is_dropped_not_fatal() {
        let (p0, p1, _actions) = two_ports();
        p0.send_parcel(plain_parcel(1, ActionId(999), Bytes::new()));
        assert!(pump_until(
            &[&p0, &p1],
            || p1.stats().dropped.load(Ordering::SeqCst) == 1,
            Duration::from_secs(2)
        ));
    }

    #[test]
    fn handler_decode_failure_is_dropped() {
        let (p0, p1, actions) = two_ports();
        let act = actions.register(
            "needs-u64",
            Arc::new(|args| {
                let v: u64 = from_bytes(args)?;
                Ok(to_bytes(&v))
            }),
        );
        p0.send_parcel(plain_parcel(1, act, Bytes::new()));
        assert!(pump_until(
            &[&p0, &p1],
            || p1.stats().dropped.load(Ordering::SeqCst) == 1,
            Duration::from_secs(2)
        ));
    }

    #[test]
    fn parcel_ids_are_assigned_uniquely() {
        let (p0, _p1, actions) = two_ports();
        struct Keep(parking_lot::Mutex<Vec<u64>>);
        impl ParcelInterceptor for Keep {
            fn submit(&self, p: Parcel) {
                self.0.lock().push(p.id);
            }
            fn flush(&self) {}
        }
        let act = actions.register("ids", Arc::new(|_| Ok(Bytes::new())));
        let keep = Arc::new(Keep(parking_lot::Mutex::new(Vec::new())));
        p0.set_interceptor(act, keep.clone());
        for _ in 0..100 {
            p0.send_parcel(plain_parcel(1, act, Bytes::new()));
        }
        let ids = keep.0.lock();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), 100);
        assert!(ids.iter().all(|&id| id != 0));
    }

    #[test]
    fn continuation_args_roundtrip() {
        let gid = Gid::from_parts(3, 0xabcdef);
        let payload = Bytes::from_static(b"result");
        let encoded = encode_continuation_args(gid, &payload);
        let (g, p) = decode_continuation_args(encoded).unwrap();
        assert_eq!(g, gid);
        assert_eq!(p.as_ref(), b"result");
        assert!(decode_continuation_args(Bytes::from_static(b"xx")).is_err());
    }

    #[test]
    fn flush_interceptors_reaches_every_interceptor() {
        struct Flushy(AtomicU64);
        impl ParcelInterceptor for Flushy {
            fn submit(&self, _p: Parcel) {}
            fn flush(&self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (p0, _p1, actions) = two_ports();
        let a = actions.register("a1", Arc::new(|_| Ok(Bytes::new())));
        let b = actions.register("b1", Arc::new(|_| Ok(Bytes::new())));
        let fa = Arc::new(Flushy(AtomicU64::new(0)));
        let fb = Arc::new(Flushy(AtomicU64::new(0)));
        p0.set_interceptor(a, fa.clone());
        p0.set_interceptor(b, fb.clone());
        p0.flush_interceptors();
        assert_eq!(fa.0.load(Ordering::SeqCst), 1);
        assert_eq!(fb.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn egress_drain_budget_bounds_one_pump_sweep() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let actions = ActionRegistry::new();
        let act = actions.register("noop", Arc::new(|_| Ok(Bytes::new())));
        let p0 = ParcelPort::with_config(
            0,
            Arc::new(fabric.port(0)),
            Arc::clone(&actions),
            ParcelPortConfig {
                egress_drain_budget: 2,
                ..ParcelPortConfig::default()
            },
        );
        assert_eq!(p0.config().egress_drain_budget, 2);
        for _ in 0..5 {
            p0.send_parcel(plain_parcel(1, act, Bytes::new()));
        }
        assert_eq!(p0.egress_backlog(), 5);
        p0.pump();
        // One sweep encodes exactly the configured budget.
        assert_eq!(p0.stats().messages_sent.load(Ordering::SeqCst), 2);
        assert_eq!(p0.egress_backlog(), 3);
    }

    #[test]
    fn dedup_window_admits_each_id_once() {
        let mut w = DedupWindow::default();
        assert_eq!(w.admit(5), Admit::Fresh);
        assert_eq!(w.admit(5), Admit::Duplicate, "exact duplicate");
        assert_eq!(w.admit(7), Admit::Fresh);
        assert_eq!(w.admit(6), Admit::Fresh, "in-window gap fill");
        assert_eq!(w.admit(6), Admit::Duplicate, "gap-fill duplicate");
        assert_eq!(w.admit(7), Admit::Duplicate);
        // A jump past the whole window clears it.
        assert_eq!(w.admit(7 + DEDUP_WINDOW), Admit::Fresh);
        assert_eq!(w.admit(7 + DEDUP_WINDOW), Admit::Duplicate);
        let max = 7 + DEDUP_WINDOW;
        // Behind the window: a reorder casualty, not a duplicate.
        assert_eq!(w.admit(max - DEDUP_WINDOW), Admit::Stale);
        // Still inside the window, even at its far edge.
        assert_eq!(w.admit(max - (DEDUP_WINDOW - 1)), Admit::Fresh);
        assert_eq!(w.admit(max - (DEDUP_WINDOW - 1)), Admit::Duplicate);
    }

    #[test]
    fn dedup_window_shift_carries_bits_across_words() {
        // Seen-bits must survive slides that cross word boundaries: mark
        // every id in a stretch, slide by an unaligned amount, and verify
        // each old id still reads as a duplicate at its new offset.
        let mut w = DedupWindow::default();
        for id in 100..164 {
            assert_eq!(w.admit(id), Admit::Fresh);
        }
        // Unaligned slide: 70 = one word + 6 bits.
        assert_eq!(w.admit(163 + 70), Admit::Fresh);
        for id in 100..164 {
            assert_eq!(w.admit(id), Admit::Duplicate, "id {id} lost in shift");
        }
        // An id never seen in that stretch's neighbourhood is still fresh.
        assert_eq!(w.admit(99), Admit::Fresh);
    }

    #[test]
    fn action_class_marks_and_stamps_messages() {
        let (p0, _p1, actions) = two_ports();
        let be = actions.register_with_class(
            "be",
            DeliveryClass::BestEffort,
            Arc::new(|_| Ok(Bytes::new())),
        );
        let co = actions.register_with_class(
            "co",
            DeliveryClass::Coalesce,
            Arc::new(|_| Ok(Bytes::new())),
        );
        let ll = actions.register("ll", Arc::new(|_| Ok(Bytes::new())));
        p0.set_action_class(be, DeliveryClass::BestEffort);
        p0.set_action_class(co, DeliveryClass::Coalesce);
        p0.set_action_class(ll, DeliveryClass::Lossless);
        assert_eq!(p0.action_class(be), DeliveryClass::BestEffort);
        assert_eq!(p0.action_class(co), DeliveryClass::Coalesce);
        assert_eq!(p0.action_class(ll), DeliveryClass::Lossless);
    }

    #[test]
    fn best_effort_sheds_past_the_backlog_bound() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let actions = ActionRegistry::new();
        let be = actions.register_with_class(
            "be",
            DeliveryClass::BestEffort,
            Arc::new(|_| Ok(Bytes::new())),
        );
        let p0 = ParcelPort::with_config(
            0,
            Arc::new(fabric.port(0)),
            Arc::clone(&actions),
            ParcelPortConfig {
                egress_drain_budget: 8,
                best_effort_backlog: 4,
                ..ParcelPortConfig::default()
            },
        );
        p0.set_action_class(be, DeliveryClass::BestEffort);
        for _ in 0..10 {
            p0.send_parcel(plain_parcel(1, be, Bytes::new()));
        }
        // The queue is capped at the bound; the overflow was dropped and
        // accounted on the transport's BestEffort counter.
        assert_eq!(p0.egress_backlog(), 4);
        assert_eq!(
            p0.net().stats().best_effort_dropped.load(Ordering::SeqCst),
            6
        );
    }

    #[test]
    fn best_effort_duplicates_are_deduplicated_on_receive() {
        let (p0, p1, actions) = two_ports();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let be = actions.register_with_class(
            "be",
            DeliveryClass::BestEffort,
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
                Ok(Bytes::new())
            }),
        );
        p0.set_action_class(be, DeliveryClass::BestEffort);
        p1.set_action_class(be, DeliveryClass::BestEffort);
        p0.net()
            .set_fault_plan(Some(Arc::new(rpx_net::FaultPlan::duplicate_every(1))));
        for _ in 0..10 {
            p0.send_parcel(plain_parcel(1, be, Bytes::new()));
        }
        // Every message is wire-duplicated; dedup delivers each once.
        assert!(pump_until(
            &[&p0, &p1],
            || p1.stats().parcels_received.load(Ordering::SeqCst) == 20,
            Duration::from_secs(2)
        ));
        assert_eq!(hits.load(Ordering::SeqCst), 10, "duplicates leaked");
        assert_eq!(
            p1.net()
                .stats()
                .duplicates_suppressed
                .load(Ordering::SeqCst),
            10
        );
    }

    #[test]
    fn coalesce_delivers_only_monotone_latest_values() {
        let (p0, p1, actions) = two_ports();
        let got = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        let co = actions.register_with_class(
            "co",
            DeliveryClass::Coalesce,
            Arc::new(move |args| {
                let v: u64 = from_bytes(args)?;
                g.lock().push(v);
                Ok(Bytes::new())
            }),
        );
        p0.set_action_class(co, DeliveryClass::Coalesce);
        p1.set_action_class(co, DeliveryClass::Coalesce);
        // Reorder the wire: every 3rd message is displaced.
        p0.net()
            .set_fault_plan(Some(Arc::new(rpx_net::FaultPlan::reorder_window(3))));
        for v in 1..=20u64 {
            p0.send_parcel(plain_parcel(1, co, to_bytes(&v)));
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            p0.pump();
            p1.pump();
        }
        let got = got.lock();
        assert!(!got.is_empty());
        // Strictly increasing: a displaced stale value never executes.
        let got: Vec<u64> = got.clone();
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "stale value ran: {got:?}"
        );
        assert_eq!(*got.last().unwrap(), 20, "final value must arrive");
        assert!(
            p1.stats().coalesce_stale_dropped.load(Ordering::SeqCst) > 0,
            "reordering should have produced at least one stale drop"
        );
    }

    #[test]
    fn mailbox_note_hooks_feed_port_stats() {
        let (p0, _p1, _actions) = two_ports();
        let path: &dyn SendPath = p0.as_ref();
        path.note_mailbox_replaced();
        path.note_mailbox_replaced();
        path.note_mailbox_flushed();
        assert_eq!(
            p0.stats().coalesce_mailbox_replaced.load(Ordering::SeqCst),
            2
        );
        assert_eq!(
            p0.stats().coalesce_mailbox_flushed.load(Ordering::SeqCst),
            1
        );
    }

    #[test]
    fn unintercepted_sends_deliver_in_steady_state() {
        // Unintercepted parcels travel as inline single-parcel batches —
        // no backing buffer exists, so there is nothing to leak or pool.
        let (p0, p1, actions) = two_ports();
        let act = actions.register("plain", Arc::new(|_| Ok(Bytes::new())));
        for _ in 0..50 {
            p0.send_parcel(plain_parcel(1, act, Bytes::new()));
        }
        assert!(pump_until(
            &[&p0, &p1],
            || p1.stats().parcels_received.load(Ordering::Relaxed) == 50,
            Duration::from_secs(2)
        ));
    }

    /// A three-locality port with a tight backpressure watermark and no
    /// pumping, so backlogs build deterministically.
    fn watermarked_port(
        watermark: usize,
        actions: &Arc<ActionRegistry>,
    ) -> (Arc<ParcelPort>, Arc<Fabric>) {
        let fabric = Fabric::new(3, LinkModel::zero());
        let p0 = ParcelPort::with_config(
            0,
            Arc::new(fabric.port(0)),
            Arc::clone(actions),
            ParcelPortConfig {
                backpressure_watermark: Some(watermark),
                backpressure_block_us: 200,
                ..ParcelPortConfig::default()
            },
        );
        p0.set_spawner(inline_spawner());
        (p0, fabric)
    }

    #[test]
    fn backpressure_sheds_best_effort_per_destination() {
        let actions = ActionRegistry::new();
        let be = actions.register_with_class(
            "be",
            DeliveryClass::BestEffort,
            Arc::new(|_| Ok(Bytes::new())),
        );
        let (p0, _fabric) = watermarked_port(2, &actions);
        p0.set_action_class(be, DeliveryClass::BestEffort);
        for _ in 0..6 {
            p0.send_parcel(plain_parcel(1, be, Bytes::new()));
        }
        // dst 1 capped at the watermark, overflow shed and accounted.
        assert_eq!(p0.stats().backpressure_events.load(Ordering::SeqCst), 4);
        assert_eq!(p0.stats().backpressure_shed.load(Ordering::SeqCst), 4);
        assert_eq!(p0.egress_backlog(), 2);
        // A different destination is unaffected by dst 1's backlog.
        p0.send_parcel(plain_parcel(2, be, Bytes::new()));
        assert_eq!(p0.stats().backpressure_shed.load(Ordering::SeqCst), 4);
        assert_eq!(p0.egress_backlog(), 3);
        // Exactness: sent == queued + shed, and the per-destination
        // breakdown attributes every shed to the saturated pair.
        assert_eq!(
            p0.stats().parcels_sent.load(Ordering::SeqCst),
            p0.egress_backlog() as u64 + p0.stats().backpressure_shed.load(Ordering::SeqCst)
        );
        assert_eq!(p0.stats().sheds_to(1), 4);
        assert_eq!(p0.stats().sheds_to(2), 0);
    }

    #[test]
    fn backpressure_blocks_lossless_briefly_but_never_sheds() {
        let actions = ActionRegistry::new();
        let ll = actions.register("ll", Arc::new(|_| Ok(Bytes::new())));
        let (p0, _fabric) = watermarked_port(1, &actions);
        for _ in 0..4 {
            p0.send_parcel(plain_parcel(1, ll, Bytes::new()));
        }
        // All four queued: Lossless is delayed, never dropped.
        assert_eq!(p0.egress_backlog(), 4);
        assert_eq!(p0.stats().backpressure_events.load(Ordering::SeqCst), 3);
        assert_eq!(p0.stats().backpressure_shed.load(Ordering::SeqCst), 0);
        assert!(
            p0.stats().backpressure_blocked_ns.load(Ordering::SeqCst) > 0,
            "watermark hits must account blocked time"
        );
    }

    #[test]
    fn backpressure_disabled_by_default() {
        let (p0, _p1, actions) = two_ports();
        let act = actions.register("plain2", Arc::new(|_| Ok(Bytes::new())));
        for _ in 0..100 {
            p0.send_parcel(plain_parcel(1, act, Bytes::new()));
        }
        assert_eq!(p0.stats().backpressure_events.load(Ordering::SeqCst), 0);
        assert_eq!(p0.egress_backlog(), 100);
    }
}
