//! Recycled parcel batches: the allocation-free currency of the send path.
//!
//! Every hop of the egress pipeline used to move parcels in a fresh
//! `Vec<Parcel>` — one allocation per *send* for unintercepted parcels and
//! one per *flush* for coalesced batches. [`ParcelBatch`] carries the same
//! payload but returns its backing `Vec` to a [`BufferPool`] on drop, so
//! in steady state the pipeline cycles a handful of buffers and the
//! allocator is never called.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::parcel::Parcel;

/// Buffer slots per pool; beyond this, drops free instead of recycling.
const POOL_CAP: usize = 4;

/// One pooled buffer behind a try-lock: a single uncontended CAS to take
/// or deposit, and contention never blocks (callers fall through to the
/// next slot or to the allocator).
#[derive(Default)]
struct Slot {
    busy: AtomicBool,
    /// Invariant: accessed only between a successful `busy` CAS
    /// (false → true, Acquire) and the releasing store back to false.
    /// `capacity() == 0` means the slot is vacant.
    buf: UnsafeCell<Vec<Parcel>>,
}

/// A bounded pool of `Vec<Parcel>` buffers recycled by [`ParcelBatch`].
///
/// Lock-free in the uncontended case: the single-parcel send fast path
/// pays one CAS to draw a buffer and one to return it, instead of a
/// malloc/free pair.
#[derive(Default)]
pub struct BufferPool {
    slots: [Slot; POOL_CAP],
}

// SAFETY: each slot's Vec is touched only inside its busy window (see
// Slot::buf invariant), which the Acquire/Release pair orders.
unsafe impl Send for BufferPool {}
unsafe impl Sync for BufferPool {}

impl BufferPool {
    /// New empty pool.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A cleared buffer with at least `capacity` reserved, reusing a spare
    /// when one is available.
    pub fn take(&self, capacity: usize) -> Vec<Parcel> {
        for slot in &self.slots {
            if slot
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: we hold the busy flag.
                let buf = unsafe { std::mem::take(&mut *slot.buf.get()) };
                slot.busy.store(false, Ordering::Release);
                if buf.capacity() > 0 {
                    debug_assert!(buf.is_empty());
                    let mut buf = buf;
                    if buf.capacity() < capacity {
                        buf.reserve(capacity - buf.len());
                    }
                    return buf;
                }
            }
        }
        Vec::with_capacity(capacity)
    }

    /// Return a buffer for reuse (cleared here). Full pools drop it.
    pub fn put(&self, mut buf: Vec<Parcel>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        for slot in &self.slots {
            if slot
                .busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: we hold the busy flag.
                let vacant = unsafe { (*slot.buf.get()).capacity() == 0 };
                if vacant {
                    unsafe { *slot.buf.get() = buf };
                    slot.busy.store(false, Ordering::Release);
                    return;
                }
                slot.busy.store(false, Ordering::Release);
            }
        }
        // Every slot occupied (or momentarily busy): let the buffer drop.
    }

    /// Number of spare buffers currently pooled.
    pub fn spares(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| {
                while slot
                    .busy
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
                {
                    std::hint::spin_loop();
                }
                // SAFETY: we hold the busy flag.
                let occupied = unsafe { (*slot.buf.get()).capacity() > 0 };
                slot.busy.store(false, Ordering::Release);
                occupied
            })
            .count()
    }
}

/// An owned batch of parcels whose backing buffer (if any) returns to
/// its [`BufferPool`] when dropped.
///
/// Dereferences to `[Parcel]` for reading; construction goes through
/// [`ParcelBatch::single`] (parcel stored inline — no buffer at all, the
/// unintercepted-send fast path), [`ParcelBatch::from_pool`] (recycled
/// buffer), or `From<Vec<Parcel>>` (plain buffer, for tests and one-off
/// callers).
pub struct ParcelBatch {
    repr: Repr,
}

enum Repr {
    /// One parcel stored inline. Nothing to allocate, pool, or free.
    Inline(Parcel),
    /// Vec-backed batch; the buffer goes back to `home` (when set) on
    /// drop.
    Buffer {
        parcels: Vec<Parcel>,
        home: Option<Arc<BufferPool>>,
    },
    /// Contents already moved out (`into_vec` / `drain_each` / drop).
    Spent,
}

impl ParcelBatch {
    /// A one-parcel batch with the parcel stored inline.
    #[inline]
    pub fn single(parcel: Parcel) -> Self {
        ParcelBatch {
            repr: Repr::Inline(parcel),
        }
    }

    /// Wrap a buffer that should be returned to `pool` on drop.
    pub fn from_pool(parcels: Vec<Parcel>, pool: &Arc<BufferPool>) -> Self {
        ParcelBatch {
            repr: Repr::Buffer {
                parcels,
                home: Some(Arc::clone(pool)),
            },
        }
    }

    /// The parcels in the batch.
    #[inline]
    pub fn parcels(&self) -> &[Parcel] {
        match &self.repr {
            Repr::Inline(p) => std::slice::from_ref(p),
            Repr::Buffer { parcels, .. } => parcels,
            Repr::Spent => &[],
        }
    }

    /// Number of parcels.
    #[inline]
    pub fn len(&self) -> usize {
        self.parcels().len()
    }

    /// Whether the batch is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parcels().is_empty()
    }

    /// Detach the parcels as an owned `Vec`, bypassing recycling (for
    /// consumers that need `Vec<Parcel>`, e.g. test capture).
    pub fn into_vec(mut self) -> Vec<Parcel> {
        match std::mem::replace(&mut self.repr, Repr::Spent) {
            Repr::Inline(p) => vec![p],
            Repr::Buffer { parcels, .. } => parcels,
            Repr::Spent => Vec::new(),
        }
    }

    /// Iterate owned parcels, returning the spent buffer (if any) to its
    /// pool.
    pub fn drain_each(mut self, mut f: impl FnMut(Parcel)) {
        match std::mem::replace(&mut self.repr, Repr::Spent) {
            Repr::Inline(p) => f(p),
            Repr::Buffer { mut parcels, home } => {
                for p in parcels.drain(..) {
                    f(p);
                }
                if let Some(home) = home {
                    home.put(parcels);
                }
            }
            Repr::Spent => {}
        }
    }
}

impl From<Vec<Parcel>> for ParcelBatch {
    fn from(parcels: Vec<Parcel>) -> Self {
        ParcelBatch {
            repr: Repr::Buffer {
                parcels,
                home: None,
            },
        }
    }
}

impl std::ops::Deref for ParcelBatch {
    type Target = [Parcel];
    fn deref(&self) -> &[Parcel] {
        self.parcels()
    }
}

impl std::fmt::Debug for ParcelBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pooled = matches!(&self.repr, Repr::Buffer { home: Some(_), .. });
        f.debug_struct("ParcelBatch")
            .field("len", &self.len())
            .field("pooled", &pooled)
            .finish()
    }
}

impl Drop for ParcelBatch {
    fn drop(&mut self) {
        if let Repr::Buffer {
            parcels,
            home: Some(home),
        } = std::mem::replace(&mut self.repr, Repr::Spent)
        {
            home.put(parcels);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rpx_agas::Gid;

    fn parcel(id: u64) -> Parcel {
        Parcel {
            id,
            src_locality: 0,
            dest_locality: 1,
            dest_object: Gid::INVALID,
            action: crate::action::ActionId(0),
            args: Bytes::new(),
            continuation: Gid::INVALID,
        }
    }

    #[test]
    fn batch_drop_returns_buffer_to_pool() {
        let pool = BufferPool::new();
        {
            let mut buf = pool.take(1);
            buf.push(parcel(1));
            let b = ParcelBatch::from_pool(buf, &pool);
            assert_eq!(b.len(), 1);
            assert_eq!(pool.spares(), 0);
        }
        assert_eq!(pool.spares(), 1);
        // The recycled buffer is reused, not re-allocated.
        let mut buf = pool.take(1);
        buf.push(parcel(2));
        let b = ParcelBatch::from_pool(buf, &pool);
        assert_eq!(pool.spares(), 0);
        drop(b);
        assert_eq!(pool.spares(), 1);
    }

    #[test]
    fn single_is_inline_and_touches_no_pool() {
        let b = ParcelBatch::single(parcel(7));
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].id, 7);
        let mut seen = Vec::new();
        b.drain_each(|p| seen.push(p.id));
        assert_eq!(seen, vec![7]);
    }

    #[test]
    fn take_presizes_and_reuses_capacity() {
        let pool = BufferPool::new();
        let mut buf = pool.take(16);
        assert!(buf.capacity() >= 16);
        buf.push(parcel(1));
        pool.put(buf);
        let again = pool.take(8);
        assert!(again.is_empty());
        assert!(again.capacity() >= 16);
    }

    #[test]
    fn into_vec_bypasses_recycling() {
        let pool = BufferPool::new();
        let mut buf = pool.take(1);
        buf.push(parcel(3));
        let b = ParcelBatch::from_pool(buf, &pool);
        let v = b.into_vec();
        assert_eq!(v.len(), 1);
        assert_eq!(pool.spares(), 0);
    }

    #[test]
    fn drain_each_yields_all_and_recycles() {
        let pool = BufferPool::new();
        let mut buf = pool.take(3);
        buf.extend([parcel(1), parcel(2), parcel(3)]);
        let b = ParcelBatch::from_pool(buf, &pool);
        let mut ids = Vec::new();
        b.drain_each(|p| ids.push(p.id));
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(pool.spares(), 1);
    }

    #[test]
    fn pool_is_bounded() {
        let pool = BufferPool::new();
        for _ in 0..(POOL_CAP + 10) {
            pool.put(Vec::with_capacity(4));
        }
        assert_eq!(pool.spares(), POOL_CAP);
        // Zero-capacity buffers are not worth pooling.
        pool.take(0);
        for _ in 0..POOL_CAP {
            pool.take(0);
        }
        pool.put(Vec::new());
        assert_eq!(pool.spares(), 0);
    }
}
