//! Action registration and dispatch.
//!
//! An *action* is a function that may be invoked remotely (HPX's
//! `HPX_PLAIN_ACTION`). Actions are registered by name on every locality
//! (in our in-process cluster, once in a shared registry) and addressed on
//! the wire by their dense [`ActionId`]. Handlers at this layer are
//! byte-level: argument decoding and result encoding are done by the typed
//! wrappers in the `rpx` core crate.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use rpx_serialize::WireError;

/// Dense identifier of a registered action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u32);

/// A byte-level action handler: decodes its arguments from the payload,
/// runs, and returns the encoded result.
pub type RawHandler = Arc<dyn Fn(Bytes) -> Result<Bytes, WireError> + Send + Sync>;

struct Entry {
    name: String,
    handler: RawHandler,
}

/// The table of registered actions, shared by all localities.
#[derive(Default)]
pub struct ActionRegistry {
    entries: RwLock<Vec<Entry>>,
    by_name: RwLock<HashMap<String, ActionId>>,
}

impl ActionRegistry {
    /// New empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Register `handler` under `name`, returning its id.
    ///
    /// # Panics
    /// Panics if the name is already registered — duplicate action names
    /// are a programming error, as in HPX.
    pub fn register(&self, name: &str, handler: RawHandler) -> ActionId {
        let mut by_name = self.by_name.write();
        assert!(
            !by_name.contains_key(name),
            "action '{name}' registered twice"
        );
        let mut entries = self.entries.write();
        let id = ActionId(entries.len() as u32);
        entries.push(Entry {
            name: name.to_string(),
            handler,
        });
        by_name.insert(name.to_string(), id);
        id
    }

    /// Look up an action id by name.
    pub fn lookup(&self, name: &str) -> Option<ActionId> {
        self.by_name.read().get(name).copied()
    }

    /// The name of an action.
    pub fn name(&self, id: ActionId) -> Option<String> {
        self.entries.read().get(id.0 as usize).map(|e| e.name.clone())
    }

    /// The handler of an action.
    pub fn handler(&self, id: ActionId) -> Option<RawHandler> {
        self.entries
            .read()
            .get(id.0 as usize)
            .map(|e| Arc::clone(&e.handler))
    }

    /// Number of registered actions.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpx_serialize::{from_bytes, to_bytes};

    fn echo_handler() -> RawHandler {
        Arc::new(|args| Ok(args))
    }

    #[test]
    fn register_and_dispatch() {
        let reg = ActionRegistry::new();
        let id = reg.register("double", Arc::new(|args| {
            let v: u64 = from_bytes(args)?;
            Ok(to_bytes(&(v * 2)))
        }));
        assert_eq!(reg.lookup("double"), Some(id));
        assert_eq!(reg.name(id).as_deref(), Some("double"));
        let out = reg.handler(id).unwrap()(to_bytes(&21u64)).unwrap();
        assert_eq!(from_bytes::<u64>(out).unwrap(), 42);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let reg = ActionRegistry::new();
        let a = reg.register("a", echo_handler());
        let b = reg.register("b", echo_handler());
        assert_eq!(a, ActionId(0));
        assert_eq!(b, ActionId(1));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn unknown_lookups_return_none() {
        let reg = ActionRegistry::new();
        assert_eq!(reg.lookup("missing"), None);
        assert!(reg.name(ActionId(5)).is_none());
        assert!(reg.handler(ActionId(5)).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let reg = ActionRegistry::new();
        reg.register("x", echo_handler());
        reg.register("x", echo_handler());
    }

    #[test]
    fn handler_errors_propagate() {
        let reg = ActionRegistry::new();
        let id = reg.register("needs_u64", Arc::new(|args| {
            let v: u64 = from_bytes(args)?;
            Ok(to_bytes(&v))
        }));
        let err = reg.handler(id).unwrap()(Bytes::new());
        assert!(err.is_err());
    }
}
