//! Action registration and dispatch.
//!
//! An *action* is a function that may be invoked remotely (HPX's
//! `HPX_PLAIN_ACTION`). Actions are registered by name on every locality
//! (in our in-process cluster, once in a shared registry) and addressed on
//! the wire by their dense [`ActionId`]. Handlers at this layer are
//! byte-level: argument decoding and result encoding are done by the typed
//! wrappers in the `rpx` core crate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rpx_net::DeliveryClass;
use rpx_serialize::WireError;
use rpx_util::SlotTable;

/// Dense identifier of a registered action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u32);

/// A byte-level action handler: decodes its arguments from the payload,
/// runs, and returns the encoded result.
pub type RawHandler = Arc<dyn Fn(Bytes) -> Result<Bytes, WireError> + Send + Sync>;

/// Registration-time metadata (cold; mutex-protected).
#[derive(Default)]
struct Meta {
    names: Vec<String>,
    classes: Vec<DeliveryClass>,
    by_name: HashMap<String, ActionId>,
}

/// The table of registered actions, shared by all localities.
///
/// `handler` sits on the receive path of every parcel, so dispatch reads
/// come from a lock-free [`SlotTable`]; names and the by-name index are
/// registration-time-only and stay behind a mutex.
#[derive(Default)]
pub struct ActionRegistry {
    handlers: SlotTable<dyn Fn(Bytes) -> Result<Bytes, WireError> + Send + Sync>,
    meta: Mutex<Meta>,
    count: AtomicUsize,
}

impl ActionRegistry {
    /// New empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Register `handler` under `name` with the default
    /// [`DeliveryClass::Lossless`] contract, returning its id.
    ///
    /// # Panics
    /// Panics if the name is already registered — duplicate action names
    /// are a programming error, as in HPX.
    pub fn register(&self, name: &str, handler: RawHandler) -> ActionId {
        self.register_with_class(name, DeliveryClass::Lossless, handler)
    }

    /// Register `handler` under `name` with an explicit delivery class.
    ///
    /// The class is part of the registration contract: it participates
    /// in [`ActionRegistry::order_hash`], so ranks disagreeing on an
    /// action's class are detected at boot exactly like ranks
    /// disagreeing on registration order.
    ///
    /// # Panics
    /// Panics if the name is already registered.
    pub fn register_with_class(
        &self,
        name: &str,
        class: DeliveryClass,
        handler: RawHandler,
    ) -> ActionId {
        let mut meta = self.meta.lock();
        assert!(
            !meta.by_name.contains_key(name),
            "action '{name}' registered twice"
        );
        let id = ActionId(meta.names.len() as u32);
        meta.names.push(name.to_string());
        meta.classes.push(class);
        meta.by_name.insert(name.to_string(), id);
        self.handlers.set(id.0 as usize, handler);
        self.count.fetch_add(1, Ordering::Release);
        id
    }

    /// Look up an action id by name.
    pub fn lookup(&self, name: &str) -> Option<ActionId> {
        self.meta.lock().by_name.get(name).copied()
    }

    /// The delivery class an action was registered under.
    pub fn class(&self, id: ActionId) -> Option<DeliveryClass> {
        self.meta.lock().classes.get(id.0 as usize).copied()
    }

    /// The name of an action.
    pub fn name(&self, id: ActionId) -> Option<String> {
        self.meta.lock().names.get(id.0 as usize).cloned()
    }

    /// The handler of an action (lock-free; hot on the receive path).
    #[inline]
    pub fn handler(&self, id: ActionId) -> Option<RawHandler> {
        self.handlers.get(id.0 as usize)
    }

    /// Number of registered actions.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// FNV-1a hash over the registered names *in registration order*,
    /// each folded with its delivery class.
    ///
    /// Action ids are dense registration indices, so two processes agree
    /// on every id if and only if their order hashes agree — this is the
    /// value ranks exchange at boot to detect registration skew before
    /// any parcel is dispatched against a wrong handler. Folding the
    /// class in extends that contract: ranks must also agree on each
    /// action's delivery class, or one side would drop/sequence traffic
    /// the other considers reliable.
    pub fn order_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let meta = self.meta.lock();
        let mut h = FNV_OFFSET;
        for (name, class) in meta.names.iter().zip(&meta.classes) {
            for b in name.as_bytes() {
                h = (h ^ *b as u64).wrapping_mul(FNV_PRIME);
            }
            // Separator so ["ab","c"] and ["a","bc"] differ.
            h = (h ^ 0xff).wrapping_mul(FNV_PRIME);
            h = (h ^ *class as u64).wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Whether no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpx_serialize::{from_bytes, to_bytes};

    fn echo_handler() -> RawHandler {
        Arc::new(Ok)
    }

    #[test]
    fn register_and_dispatch() {
        let reg = ActionRegistry::new();
        let id = reg.register(
            "double",
            Arc::new(|args| {
                let v: u64 = from_bytes(args)?;
                Ok(to_bytes(&(v * 2)))
            }),
        );
        assert_eq!(reg.lookup("double"), Some(id));
        assert_eq!(reg.name(id).as_deref(), Some("double"));
        let out = reg.handler(id).unwrap()(to_bytes(&21u64)).unwrap();
        assert_eq!(from_bytes::<u64>(out).unwrap(), 42);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let reg = ActionRegistry::new();
        let a = reg.register("a", echo_handler());
        let b = reg.register("b", echo_handler());
        assert_eq!(a, ActionId(0));
        assert_eq!(b, ActionId(1));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn order_hash_detects_registration_skew() {
        let a = ActionRegistry::new();
        a.register("toy::get", echo_handler());
        a.register("toy::put", echo_handler());
        let b = ActionRegistry::new();
        b.register("toy::get", echo_handler());
        b.register("toy::put", echo_handler());
        assert_eq!(a.order_hash(), b.order_hash(), "same order, same hash");

        let c = ActionRegistry::new();
        c.register("toy::put", echo_handler());
        c.register("toy::get", echo_handler());
        assert_ne!(a.order_hash(), c.order_hash(), "order matters");

        let d = ActionRegistry::new();
        d.register("toy::get", echo_handler());
        assert_ne!(a.order_hash(), d.order_hash(), "count matters");

        // Name-boundary ambiguity is broken by the separator byte.
        let e = ActionRegistry::new();
        e.register("ab", echo_handler());
        e.register("c", echo_handler());
        let f = ActionRegistry::new();
        f.register("a", echo_handler());
        f.register("bc", echo_handler());
        assert_ne!(e.order_hash(), f.order_hash());
    }

    #[test]
    fn class_is_recorded_and_defaults_to_lossless() {
        let reg = ActionRegistry::new();
        let a = reg.register("plain", echo_handler());
        let b = reg.register_with_class("be", DeliveryClass::BestEffort, echo_handler());
        let c = reg.register_with_class("co", DeliveryClass::Coalesce, echo_handler());
        assert_eq!(reg.class(a), Some(DeliveryClass::Lossless));
        assert_eq!(reg.class(b), Some(DeliveryClass::BestEffort));
        assert_eq!(reg.class(c), Some(DeliveryClass::Coalesce));
        assert_eq!(reg.class(ActionId(9)), None);
    }

    #[test]
    fn order_hash_detects_class_skew() {
        let a = ActionRegistry::new();
        a.register_with_class("sync", DeliveryClass::Coalesce, echo_handler());
        let b = ActionRegistry::new();
        b.register_with_class("sync", DeliveryClass::Coalesce, echo_handler());
        assert_eq!(a.order_hash(), b.order_hash(), "same class, same hash");

        let c = ActionRegistry::new();
        c.register("sync", echo_handler());
        assert_ne!(a.order_hash(), c.order_hash(), "class matters");
    }

    #[test]
    fn unknown_lookups_return_none() {
        let reg = ActionRegistry::new();
        assert_eq!(reg.lookup("missing"), None);
        assert!(reg.name(ActionId(5)).is_none());
        assert!(reg.handler(ActionId(5)).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_name_panics() {
        let reg = ActionRegistry::new();
        reg.register("x", echo_handler());
        reg.register("x", echo_handler());
    }

    #[test]
    fn handler_errors_propagate() {
        let reg = ActionRegistry::new();
        let id = reg.register(
            "needs_u64",
            Arc::new(|args| {
                let v: u64 = from_bytes(args)?;
                Ok(to_bytes(&v))
            }),
        );
        let err = reg.handler(id).unwrap()(Bytes::new());
        assert!(err.is_err());
    }
}
