//! The parcel: RPX's active message.

use bytes::Bytes;
use rpx_agas::Gid;
use rpx_serialize::{ArchiveReader, ArchiveWriter, WireError};

use crate::action::ActionId;

/// An active message (HPX Fig. 3: destination, action, arguments,
/// optional continuation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parcel {
    /// Process-unique parcel id (diagnostics, dedup checks in tests).
    pub id: u64,
    /// Locality that created the parcel.
    pub src_locality: u32,
    /// Locality the action executes on.
    pub dest_locality: u32,
    /// Target object, or [`Gid::INVALID`] for plain (locality-targeted)
    /// actions.
    pub dest_object: Gid,
    /// The action to execute.
    pub action: ActionId,
    /// Encoded action arguments.
    pub args: Bytes,
    /// LCO to receive the action's result, or [`Gid::INVALID`] for
    /// fire-and-forget parcels.
    pub continuation: Gid,
}

impl Parcel {
    /// Encode into an archive (used for both single-parcel and coalesced
    /// messages).
    pub fn encode(&self, w: &mut ArchiveWriter) {
        w.put_varint(self.id);
        w.put_varint(u64::from(self.src_locality));
        w.put_varint(u64::from(self.dest_locality));
        w.put_u64_le(self.dest_object.sequence());
        w.put_u32_le(self.dest_object.birth_locality());
        w.put_varint(u64::from(self.action.0));
        w.put_bytes(&self.args);
        w.put_u64_le(self.continuation.sequence());
        w.put_u32_le(self.continuation.birth_locality());
    }

    /// Decode from an archive.
    pub fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        let id = r.get_varint()?;
        let src_locality = u32::try_from(r.get_varint()?).map_err(|_| WireError::VarintOverflow)?;
        let dest_locality =
            u32::try_from(r.get_varint()?).map_err(|_| WireError::VarintOverflow)?;
        let obj_seq = r.get_u64_le()?;
        let obj_loc = r.get_u32_le()?;
        let action =
            ActionId(u32::try_from(r.get_varint()?).map_err(|_| WireError::VarintOverflow)?);
        let args = r.get_bytes()?;
        let cont_seq = r.get_u64_le()?;
        let cont_loc = r.get_u32_le()?;
        Ok(Parcel {
            id,
            src_locality,
            dest_locality,
            dest_object: Gid::from_parts(obj_loc, obj_seq),
            action,
            args,
            continuation: Gid::from_parts(cont_loc, cont_seq),
        })
    }

    /// Encode a batch of parcels as a coalesced-message payload
    /// (count-prefixed).
    pub fn encode_batch(parcels: &[Parcel]) -> Bytes {
        let mut w =
            ArchiveWriter::pooled(parcels.iter().map(|p| p.args.len() + 48).sum::<usize>() + 4);
        w.put_varint(parcels.len() as u64);
        for p in parcels {
            p.encode(&mut w);
        }
        w.finish()
    }

    /// Decode a coalesced-message payload.
    pub fn decode_batch(payload: Bytes) -> Result<Vec<Parcel>, WireError> {
        let mut r = ArchiveReader::new(payload);
        let count = r.get_varint()?;
        // Defensive bound: each parcel needs at least ~27 bytes.
        if count > (r.remaining() as u64) {
            return Err(WireError::LengthTooLarge {
                len: count,
                limit: r.remaining() as u64,
            });
        }
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            out.push(Parcel::decode(&mut r)?);
        }
        r.expect_exhausted()?;
        Ok(out)
    }

    /// Approximate wire size of this parcel in bytes.
    pub fn wire_size(&self) -> usize {
        // Fixed fields ≤ 40 bytes + args and its ≤5-byte length varint.
        40 + self.args.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64) -> Parcel {
        Parcel {
            id,
            src_locality: 0,
            dest_locality: 1,
            dest_object: Gid::from_parts(1, 77),
            action: ActionId(3),
            args: Bytes::from_static(b"arguments"),
            continuation: Gid::from_parts(0, 42),
        }
    }

    #[test]
    fn single_roundtrip() {
        let p = sample(9);
        let mut w = ArchiveWriter::new();
        p.encode(&mut w);
        let mut r = ArchiveReader::new(w.finish());
        let back = Parcel::decode(&mut r).unwrap();
        assert_eq!(back, p);
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn fire_and_forget_has_invalid_continuation() {
        let mut p = sample(1);
        p.continuation = Gid::INVALID;
        let mut w = ArchiveWriter::new();
        p.encode(&mut w);
        let mut r = ArchiveReader::new(w.finish());
        let back = Parcel::decode(&mut r).unwrap();
        assert!(!back.continuation.is_valid());
    }

    #[test]
    fn batch_roundtrip_preserves_order() {
        let parcels: Vec<Parcel> = (0..17).map(sample).collect();
        let payload = Parcel::encode_batch(&parcels);
        let back = Parcel::decode_batch(payload).unwrap();
        assert_eq!(back, parcels);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let payload = Parcel::encode_batch(&[]);
        assert_eq!(Parcel::decode_batch(payload).unwrap(), Vec::new());
    }

    #[test]
    fn corrupt_batch_fails_cleanly() {
        let parcels: Vec<Parcel> = (0..3).map(sample).collect();
        let payload = Parcel::encode_batch(&parcels);
        // Truncate mid-parcel.
        let truncated = payload.slice(0..payload.len() - 5);
        assert!(Parcel::decode_batch(truncated).is_err());
        // Hostile count.
        let mut w = ArchiveWriter::new();
        w.put_varint(1 << 40);
        assert!(Parcel::decode_batch(w.finish()).is_err());
    }

    #[test]
    fn batch_amortises_framing() {
        // One coalesced payload of k parcels is much smaller than k
        // single-parcel messages' worth of payloads plus per-message
        // overhead would imply — and exactly concatenative in content.
        let parcels: Vec<Parcel> = (0..10).map(sample).collect();
        let batch = Parcel::encode_batch(&parcels);
        let mut w = ArchiveWriter::new();
        parcels[0].encode(&mut w);
        let single = w.finish();
        assert!(batch.len() <= single.len() * 10 + 2);
        assert!(batch.len() >= single.len() * 10 - 10);
    }

    #[test]
    fn wire_size_is_a_sane_upper_bound_indicator() {
        let p = sample(1);
        let mut w = ArchiveWriter::new();
        p.encode(&mut w);
        assert!(w.len() <= p.wire_size());
    }
}
