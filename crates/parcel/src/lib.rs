//! # rpx-parcel
//!
//! The **parcel subsystem**: RPX's active-message layer.
//!
//! A parcel is HPX's form of active message (§II-A, Fig. 3 of the paper):
//! it names a *destination*, an *action* (the function to run there), the
//! *arguments*, and an optional *continuation* (work triggered by the
//! result — in RPX, completion of the caller's future). This crate
//! provides:
//!
//! * [`Parcel`] — the wire-encodable active message ([`parcel`]),
//! * [`ActionRegistry`] — named, registered remote actions dispatching to
//!   byte-level handlers ([`action`]),
//! * [`ParcelPort`] — the per-locality send/receive engine gluing parcels
//!   to the network fabric ([`port`]). The send path is *interceptable*
//!   per action, which is exactly where the coalescing plug-in of
//!   `rpx-coalesce` hooks in — mirroring how the paper implements
//!   coalescing as an HPX plug-in rather than core functionality.
//!
//! Serialization of parcels into messages and decoding of received
//! messages back into tasks happens inside the port's pump, which the
//! runtime registers as scheduler *background work* — so the cost of this
//! processing lands in `/threads/background-work` (Eq. 3), the quantity
//! the paper's network-overhead metric is built on.

#![warn(missing_docs)]

pub mod action;
pub mod batch;
pub mod egress;
pub mod parcel;
pub mod port;

pub use action::{ActionId, ActionRegistry, RawHandler};
pub use batch::{BufferPool, ParcelBatch};
pub use egress::EgressQueue;
pub use parcel::Parcel;
pub use port::{
    BatchTaskSpawner, ParcelInterceptor, ParcelPort, ParcelPortConfig, ParcelPortStats, SendPath,
    TaskFn, TaskSpawner,
};
pub use rpx_net::DeliveryClass;
