//! Stress test for the lock-free interceptor slot table: concurrent
//! `set_interceptor` / `clear_interceptor` racing `send_parcel` from four
//! threads must never drop, duplicate, or misroute a parcel.
//!
//! Every parcel either reaches its destination's action handler (through
//! egress → fabric → receive) or is held by the interceptor that was
//! installed at the instant it was routed; the test drains both sides and
//! checks exact conservation of sender-chosen uids, and that per-locality
//! receive counts match the destinations the uids encode.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use rpx_agas::Gid;
use rpx_net::{Fabric, LinkModel};
use rpx_parcel::{ActionId, ActionRegistry, Parcel, ParcelInterceptor, ParcelPort, TaskSpawner};
use rpx_serialize::{from_bytes, to_bytes};

/// An interceptor that simply holds everything submitted to it.
struct Capture {
    held: Mutex<Vec<Parcel>>,
}

impl ParcelInterceptor for Capture {
    fn submit(&self, parcel: Parcel) {
        self.held.lock().push(parcel);
    }
    fn flush(&self) {}
}

fn inline_spawner() -> TaskSpawner {
    Arc::new(|f| f())
}

/// Payload word: sender-chosen uid in the high bits, intended destination
/// locality in the low byte.
fn word(uid: u64, dst: u32) -> u64 {
    (uid << 8) | u64::from(dst)
}

fn parcel(dst: u32, action: ActionId, uid: u64) -> Parcel {
    Parcel {
        id: 0,
        src_locality: 0,
        dest_locality: dst,
        dest_object: Gid::INVALID,
        action,
        args: to_bytes(&word(uid, dst)),
        continuation: Gid::INVALID,
    }
}

#[test]
fn interceptor_churn_never_loses_or_duplicates_parcels() {
    const SENDERS: u64 = 4;
    const PER_SENDER: u64 = 2_000;
    const TOTAL: u64 = SENDERS * PER_SENDER;

    let fabric = Fabric::new(3, LinkModel::zero());
    let actions = ActionRegistry::new();
    let delivered: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let act = {
        let delivered = Arc::clone(&delivered);
        actions.register(
            "tally",
            Arc::new(move |args: Bytes| {
                delivered.lock().push(from_bytes(args)?);
                Ok(Bytes::new())
            }),
        )
    };

    let p0 = ParcelPort::new(0, Arc::new(fabric.port(0)), Arc::clone(&actions));
    let p1 = ParcelPort::new(1, Arc::new(fabric.port(1)), Arc::clone(&actions));
    let p2 = ParcelPort::new(2, Arc::new(fabric.port(2)), Arc::clone(&actions));
    for p in [&p0, &p1, &p2] {
        p.set_spawner(inline_spawner());
    }

    let cap = Arc::new(Capture {
        held: Mutex::new(Vec::new()),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let sent = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Toggler: installs and removes the interceptor as fast as it can,
        // so senders race against both states and the transitions.
        {
            let p0 = Arc::clone(&p0);
            let cap = Arc::clone(&cap);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    p0.set_interceptor(act, Arc::clone(&cap) as Arc<dyn ParcelInterceptor>);
                    p0.clear_interceptor(act);
                }
            });
        }
        // Pumper: keeps egress encoding and the fabric moving while the
        // senders run, so the race also covers concurrent drains.
        {
            let p0 = Arc::clone(&p0);
            let p1 = Arc::clone(&p1);
            let p2 = Arc::clone(&p2);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    p0.pump();
                    p1.pump();
                    p2.pump();
                }
            });
        }
        // Four sender threads with disjoint uid ranges, alternating the
        // destination between localities 1 and 2.
        for t in 0..SENDERS {
            let p0 = Arc::clone(&p0);
            let sent = Arc::clone(&sent);
            s.spawn(move || {
                for i in 0..PER_SENDER {
                    let uid = t * PER_SENDER + i;
                    p0.send_parcel(parcel(1 + (uid % 2) as u32, act, uid));
                    sent.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        let deadline = Instant::now() + Duration::from_secs(30);
        while sent.load(Ordering::Relaxed) < TOTAL && Instant::now() < deadline {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(sent.load(Ordering::Relaxed), TOTAL, "senders stalled");

    // Drain: whatever the interceptor holds stays held (Capture::flush is
    // a no-op); everything else must reach its destination handler.
    p0.clear_interceptor(act);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        p0.pump();
        p1.pump();
        p2.pump();
        let captured = cap.held.lock().len() as u64;
        let delivered_n = delivered.lock().len() as u64;
        if captured + delivered_n >= TOTAL {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "drain timed out: captured={captured} delivered={delivered_n} total={TOTAL}"
        );
    }

    // Conservation: every uid accounted for exactly once across capture
    // and delivery — no drops, no duplicates.
    let mut seen = HashSet::new();
    for p in cap.held.lock().iter() {
        let w: u64 = from_bytes(p.args.clone()).unwrap();
        assert!(seen.insert(w >> 8), "uid {} duplicated (captured)", w >> 8);
    }
    let delivered = delivered.lock();
    for &w in delivered.iter() {
        assert!(seen.insert(w >> 8), "uid {} duplicated (delivered)", w >> 8);
    }
    assert_eq!(seen.len() as u64, TOTAL, "parcels lost");

    // Misrouting: each locality must have received exactly the parcels
    // whose payload names it as the destination.
    for (port, loc) in [(&p1, 1u64), (&p2, 2u64)] {
        let expected = delivered.iter().filter(|&&w| w & 0xff == loc).count() as u64;
        assert_eq!(
            port.stats().parcels_received.load(Ordering::Relaxed),
            expected,
            "locality {loc} received a parcel addressed elsewhere"
        );
    }
}
