//! Reliable delivery underneath the parcel layer, over the real TCP
//! loopback backend: frames killed on the wire are retransmitted, and a
//! retransmitted (or wire-duplicated) frame must spawn its task exactly
//! once — duplicate suppression happens below the parcel layer, so the
//! spawner is never invoked twice for the same parcel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use rpx_agas::Gid;
use rpx_net::{
    FaultPlan, ReliabilityConfig, ReliableTransport, TcpTransport, Transport, TransportPort,
};
use rpx_parcel::{ActionRegistry, Parcel, ParcelPort, TaskSpawner};
use rpx_serialize::{from_bytes, to_bytes};

/// A spawner that counts every task handed to it before running it
/// inline. Each received parcel spawns exactly one task, so the count is
/// the ground truth for double-spawn detection.
fn counting_spawner(count: Arc<AtomicU64>) -> TaskSpawner {
    Arc::new(move |f| {
        count.fetch_add(1, Ordering::SeqCst);
        f()
    })
}

fn plain_parcel(dst: u32, action: rpx_parcel::ActionId, args: Bytes) -> Parcel {
    Parcel {
        id: 0,
        src_locality: 0,
        dest_locality: dst,
        dest_object: Gid::INVALID,
        action,
        args,
        continuation: Gid::INVALID,
    }
}

#[test]
fn killed_then_retried_frame_does_not_double_spawn() {
    let tcp = TcpTransport::new(2).expect("loopback listeners");
    let reliable = ReliableTransport::new(
        tcp,
        ReliabilityConfig {
            rto_initial: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let net0: Arc<dyn TransportPort> = reliable.port(0);
    let net1: Arc<dyn TransportPort> = reliable.port(1);

    // Kill every 2nd frame leaving locality 0 (originals *and*
    // retransmits are subject to the plan) and duplicate every 3rd that
    // survives — both the killed-then-retried and the ack-crossed-
    // duplicate paths are exercised.
    let mut plan = FaultPlan::default();
    plan.drop_every = Some(2);
    plan.duplicate_every = Some(3);
    let plan = Arc::new(plan);
    net0.set_fault_plan(Some(Arc::clone(&plan)));

    let actions = ActionRegistry::new();
    let p0 = ParcelPort::new(0, Arc::clone(&net0), Arc::clone(&actions));
    let p1 = ParcelPort::new(1, Arc::clone(&net1), Arc::clone(&actions));

    let spawns = Arc::new(AtomicU64::new(0));
    p0.set_spawner(counting_spawner(Arc::new(AtomicU64::new(0))));
    p1.set_spawner(counting_spawner(Arc::clone(&spawns)));

    let hits = Arc::new(AtomicU64::new(0));
    let h = Arc::clone(&hits);
    let act = actions.register(
        "reliable::bump",
        Arc::new(move |args| {
            let _: u64 = from_bytes(args)?;
            h.fetch_add(1, Ordering::SeqCst);
            Ok(Bytes::new())
        }),
    );

    const N: u64 = 40;
    for i in 0..N {
        p0.send_parcel(plain_parcel(1, act, to_bytes(&i)));
    }

    let deadline = Instant::now() + Duration::from_secs(20);
    while hits.load(Ordering::SeqCst) < N || net0.outbound_backlog() > 0 {
        p0.pump();
        p1.pump();
        assert!(
            Instant::now() < deadline,
            "stalled: {} hits, backlog {}",
            hits.load(Ordering::SeqCst),
            net0.outbound_backlog()
        );
    }
    // Drain any wire-duplicated stragglers, then re-check: suppression
    // must have kept them below the parcel layer.
    let settle = Instant::now() + Duration::from_secs(20);
    while (net0.outbound_backlog() > 0 || net1.outbound_backlog() > 0) && Instant::now() < settle {
        p0.pump();
        p1.pump();
    }

    assert!(plan.dropped() > 0, "the plan never killed a frame");
    assert!(
        net0.stats().retransmits.load(Ordering::SeqCst) > 0,
        "killed frames were never retried"
    );
    assert_eq!(hits.load(Ordering::SeqCst), N, "lost or duplicated action");
    assert_eq!(spawns.load(Ordering::SeqCst), N, "double-spawned a task");
    assert_eq!(
        p1.stats().parcels_received.load(Ordering::SeqCst),
        N,
        "parcel layer saw a duplicate frame"
    );
    assert_eq!(
        net0.stats().delivery_failures.load(Ordering::SeqCst),
        0,
        "intermittent drops must never exhaust the retry budget"
    );
}
