//! # rpx-serialize
//!
//! Compact binary serialization for RPX parcels.
//!
//! To transmit a parcel over the network HPX serialises it into a stream of
//! bytes and reconstructs it on the receiving side (§II-A of the paper).
//! That (de)serialization work is a real part of the per-message overhead
//! the coalescing optimisation amortises, so RPX performs it for real
//! rather than passing pointers around, even though all localities live in
//! one process.
//!
//! The format is a simple, non-self-describing little-endian binary
//! archive:
//!
//! * unsigned integers: LEB128 varints,
//! * signed integers: zigzag + varint,
//! * `f32`/`f64`: raw little-endian bits,
//! * sequences (`Vec`, `String`, byte slices): varint length prefix,
//! * `Option`: 1-byte discriminant,
//! * tuples/structs: field concatenation.
//!
//! [`ArchiveWriter`] and [`ArchiveReader`] implement the encoding;
//! the [`Wire`] trait makes types serializable. Readers bound-check every
//! access and fail with typed [`WireError`]s — a malformed message must
//! never panic the runtime.

#![warn(missing_docs)]

pub mod error;
pub mod reader;
pub mod wire;
pub mod writer;

pub use error::WireError;
pub use reader::ArchiveReader;
pub use wire::{from_bytes, to_bytes, Wire};
pub use writer::ArchiveWriter;
