//! Serialization errors.

use std::fmt;

/// Errors produced while decoding an archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The reader ran out of bytes.
    UnexpectedEof {
        /// Bytes requested.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A varint used more than 10 bytes (would overflow `u64`).
    VarintOverflow,
    /// A length prefix exceeded the configured sanity limit.
    LengthTooLarge {
        /// The decoded length.
        len: u64,
        /// The limit in force.
        limit: u64,
    },
    /// An enum/option discriminant byte had an invalid value.
    BadDiscriminant(u8),
    /// A `String` payload was not valid UTF-8.
    InvalidUtf8,
    /// The archive had trailing bytes after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of archive: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::LengthTooLarge { len, limit } => {
                write!(f, "length prefix {len} exceeds limit {limit}")
            }
            WireError::BadDiscriminant(d) => write!(f, "invalid discriminant byte {d}"),
            WireError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}
