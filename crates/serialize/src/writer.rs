//! The archive encoder.

use bytes::{BufMut, Bytes, BytesMut};

/// Encodes values into a growable byte buffer.
///
/// The writer is infallible: all methods append to an in-memory buffer.
#[derive(Debug, Default)]
pub struct ArchiveWriter {
    buf: BytesMut,
}

impl ArchiveWriter {
    /// New empty writer.
    pub fn new() -> Self {
        ArchiveWriter {
            buf: BytesMut::new(),
        }
    }

    /// New writer with `cap` bytes of pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ArchiveWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Append a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Append a zigzag-encoded signed varint.
    pub fn put_varint_signed(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Append a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a little-endian `u32` (fixed width, used in message headers).
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a little-endian `u64` (fixed width).
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append an `f64` as its little-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Append an `f32` as its little-endian bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.put_u32_le(v.to_bits());
    }

    /// Append raw bytes *without* a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Append length-prefixed bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.put_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, yielding the immutable encoded buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_small_values_are_one_byte() {
        for v in [0u64, 1, 127] {
            let mut w = ArchiveWriter::new();
            w.put_varint(v);
            assert_eq!(w.len(), 1, "value {v}");
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut w = ArchiveWriter::new();
        w.put_varint(128);
        assert_eq!(w.finish().as_ref(), &[0x80, 0x01]);
        let mut w = ArchiveWriter::new();
        w.put_varint(u64::MAX);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn zigzag_signed() {
        let cases: &[(i64, u64)] = &[(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)];
        for &(signed, unsigned) in cases {
            let mut ws = ArchiveWriter::new();
            ws.put_varint_signed(signed);
            let mut wu = ArchiveWriter::new();
            wu.put_varint(unsigned);
            assert_eq!(ws.finish(), wu.finish(), "zigzag({signed})");
        }
    }

    #[test]
    fn length_prefixed_bytes() {
        let mut w = ArchiveWriter::new();
        w.put_bytes(b"abc");
        assert_eq!(w.finish().as_ref(), &[3, b'a', b'b', b'c']);
    }

    #[test]
    fn fixed_width_encodings() {
        let mut w = ArchiveWriter::new();
        w.put_u32_le(0x0102_0304);
        w.put_u64_le(0x1122_3344_5566_7788);
        w.put_f64(1.5);
        let b = w.finish();
        assert_eq!(&b[..4], &[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(b.len(), 4 + 8 + 8);
        assert_eq!(
            f64::from_bits(u64::from_le_bytes(b[12..20].try_into().unwrap())),
            1.5
        );
    }

    #[test]
    fn capacity_and_len() {
        let mut w = ArchiveWriter::with_capacity(64);
        assert!(w.is_empty());
        w.put_u8(1);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }
}
