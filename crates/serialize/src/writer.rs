//! The archive encoder.

use std::cell::RefCell;

use bytes::{BufMut, Bytes, BytesMut};

/// Block size of the per-thread scratch buffer backing pooled writers.
/// Each [`ArchiveWriter::pooled`] encode carves its output from the
/// current block zero-copy (`split().freeze()`); a fresh block is
/// allocated only when the current one is exhausted, so steady-state
/// encoding costs one allocation per ~64 KiB of encoded traffic instead
/// of one per message.
const SCRATCH_BLOCK: usize = 64 * 1024;

/// Minimum writable window a pooled writer starts with even when the
/// caller passes no capacity hint, so typical small messages encode
/// without any mid-encode growth.
const MIN_WINDOW: usize = 1024;

thread_local! {
    /// The thread's scratch buffer; taken by a pooled writer for the
    /// duration of an encode and put back by `finish`.
    static SCRATCH: RefCell<BytesMut> = const { RefCell::new(BytesMut::new()) };
}

/// Encodes values into a growable byte buffer.
///
/// The writer is infallible: all methods append to an in-memory buffer.
#[derive(Debug, Default)]
pub struct ArchiveWriter {
    buf: BytesMut,
    /// Whether `buf` was borrowed from the thread-local scratch pool and
    /// should return there on `finish`.
    pooled: bool,
}

impl ArchiveWriter {
    /// New empty writer.
    pub fn new() -> Self {
        ArchiveWriter {
            buf: BytesMut::new(),
            pooled: false,
        }
    }

    /// New writer with `cap` bytes of pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ArchiveWriter {
            buf: BytesMut::with_capacity(cap),
            pooled: false,
        }
    }

    /// New writer carving at least `cap` bytes out of the thread-local
    /// scratch block — the allocation-free fast path for hot encoders.
    ///
    /// Nested pooled writers on one thread are correct (the inner one
    /// falls back to a fresh buffer); the scratch returns to the pool on
    /// `finish`.
    pub fn pooled(cap: usize) -> Self {
        let mut buf = SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        if buf.capacity() < cap.max(MIN_WINDOW) {
            // Exhausted (or too-small) block: start a fresh one rather
            // than growing the old, which would copy and would keep the
            // block alive. The spent block is freed once its outstanding
            // frozen views drop; block size stays bounded.
            buf = BytesMut::with_capacity(cap.max(SCRATCH_BLOCK));
        }
        ArchiveWriter { buf, pooled: true }
    }

    /// Append a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Append a zigzag-encoded signed varint.
    pub fn put_varint_signed(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Append a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a little-endian `u32` (fixed width, used in message headers).
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Append a little-endian `u64` (fixed width).
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append an `f64` as its little-endian bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Append an `f32` as its little-endian bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.put_u32_le(v.to_bits());
    }

    /// Append raw bytes *without* a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Append length-prefixed bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.put_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, yielding the immutable encoded buffer.
    ///
    /// Pooled writers split the written prefix off zero-copy and hand the
    /// remaining scratch capacity back to the thread-local pool.
    pub fn finish(mut self) -> Bytes {
        if self.pooled {
            let out = self.buf.split().freeze();
            SCRATCH.with(|s| {
                let mut scratch = s.borrow_mut();
                // Last-writer-wins if encodes nested; losing a spare
                // buffer is harmless.
                *scratch = std::mem::take(&mut self.buf);
            });
            out
        } else {
            self.buf.freeze()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_small_values_are_one_byte() {
        for v in [0u64, 1, 127] {
            let mut w = ArchiveWriter::new();
            w.put_varint(v);
            assert_eq!(w.len(), 1, "value {v}");
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut w = ArchiveWriter::new();
        w.put_varint(128);
        assert_eq!(w.finish().as_ref(), &[0x80, 0x01]);
        let mut w = ArchiveWriter::new();
        w.put_varint(u64::MAX);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn zigzag_signed() {
        let cases: &[(i64, u64)] = &[(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)];
        for &(signed, unsigned) in cases {
            let mut ws = ArchiveWriter::new();
            ws.put_varint_signed(signed);
            let mut wu = ArchiveWriter::new();
            wu.put_varint(unsigned);
            assert_eq!(ws.finish(), wu.finish(), "zigzag({signed})");
        }
    }

    #[test]
    fn length_prefixed_bytes() {
        let mut w = ArchiveWriter::new();
        w.put_bytes(b"abc");
        assert_eq!(w.finish().as_ref(), &[3, b'a', b'b', b'c']);
    }

    #[test]
    fn fixed_width_encodings() {
        let mut w = ArchiveWriter::new();
        w.put_u32_le(0x0102_0304);
        w.put_u64_le(0x1122_3344_5566_7788);
        w.put_f64(1.5);
        let b = w.finish();
        assert_eq!(&b[..4], &[0x04, 0x03, 0x02, 0x01]);
        assert_eq!(b.len(), 4 + 8 + 8);
        assert_eq!(
            f64::from_bits(u64::from_le_bytes(b[12..20].try_into().unwrap())),
            1.5
        );
    }

    #[test]
    fn capacity_and_len() {
        let mut w = ArchiveWriter::with_capacity(64);
        assert!(w.is_empty());
        w.put_u8(1);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn pooled_writer_matches_plain_output() {
        let mut plain = ArchiveWriter::new();
        let mut pooled = ArchiveWriter::pooled(32);
        for w in [&mut plain, &mut pooled] {
            w.put_varint(300);
            w.put_bytes(b"payload");
            w.put_f64(2.5);
        }
        assert_eq!(plain.finish(), pooled.finish());
    }

    #[test]
    fn sequential_pooled_encodes_share_the_scratch_block() {
        // Two back-to-back pooled encodes must not corrupt each other
        // even though they reuse one underlying block.
        let mut w1 = ArchiveWriter::pooled(8);
        w1.put_u32_le(0xAAAA_AAAA);
        let a = w1.finish();
        let mut w2 = ArchiveWriter::pooled(8);
        w2.put_u32_le(0xBBBB_BBBB);
        let b = w2.finish();
        assert_eq!(a.as_ref(), &[0xAA; 4]);
        assert_eq!(b.as_ref(), &[0xBB; 4]);
    }

    #[test]
    fn nested_pooled_writers_are_correct() {
        let mut outer = ArchiveWriter::pooled(16);
        outer.put_u8(1);
        let mut inner = ArchiveWriter::pooled(16);
        inner.put_u8(2);
        assert_eq!(inner.finish().as_ref(), &[2]);
        outer.put_u8(3);
        assert_eq!(outer.finish().as_ref(), &[1, 3]);
    }

    #[test]
    fn pooled_survives_many_block_rollovers() {
        let payload = [7u8; 1024];
        for _ in 0..(4 * super::SCRATCH_BLOCK / payload.len()) {
            let mut w = ArchiveWriter::pooled(payload.len());
            w.put_raw(&payload);
            let out = w.finish();
            assert_eq!(out.len(), payload.len());
            assert!(out.iter().all(|&b| b == 7));
        }
    }
}
