//! The [`Wire`] trait: types that can cross the fabric.
//!
//! Action arguments and results implement `Wire`; the parcel subsystem
//! serialises them on send and reconstructs them on receive, exactly like
//! HPX's serialization layer (§II-A). Implementations are provided for the
//! primitives, tuples, `Vec`, `String`, `Option` and
//! [`rpx_util::Complex64`] — everything the paper's two applications need.

use bytes::Bytes;
use rpx_util::Complex64;

use crate::error::WireError;
use crate::reader::ArchiveReader;
use crate::writer::ArchiveWriter;

/// A type with a binary wire representation.
pub trait Wire: Sized {
    /// Append `self` to the archive.
    fn encode(&self, w: &mut ArchiveWriter);
    /// Decode an instance from the archive.
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError>;
}

/// Serialize a value into a fresh buffer (drawn from the thread-local
/// encoder scratch pool — no allocation in steady state).
pub fn to_bytes<T: Wire>(value: &T) -> Bytes {
    let mut w = ArchiveWriter::pooled(0);
    value.encode(&mut w);
    w.finish()
}

/// Deserialize a value, requiring the buffer to be fully consumed.
pub fn from_bytes<T: Wire>(bytes: Bytes) -> Result<T, WireError> {
    let mut r = ArchiveReader::new(bytes);
    let v = T::decode(&mut r)?;
    r.expect_exhausted()?;
    Ok(v)
}

impl Wire for () {
    fn encode(&self, _w: &mut ArchiveWriter) {}
    fn decode(_r: &mut ArchiveReader) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

impl Wire for u8 {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_u8(*self);
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        r.get_u8()
    }
}

macro_rules! impl_wire_unsigned {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, w: &mut ArchiveWriter) {
                w.put_varint(u64::from(*self));
            }
            fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
                let v = r.get_varint()?;
                <$t>::try_from(v).map_err(|_| WireError::VarintOverflow)
            }
        }
    )*};
}
impl_wire_unsigned!(u16, u32);

impl Wire for u64 {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_varint(*self);
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        r.get_varint()
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_varint(*self as u64);
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        let v = r.get_varint()?;
        usize::try_from(v).map_err(|_| WireError::VarintOverflow)
    }
}

macro_rules! impl_wire_signed {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, w: &mut ArchiveWriter) {
                w.put_varint_signed(i64::from(*self));
            }
            fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
                let v = r.get_varint_signed()?;
                <$t>::try_from(v).map_err(|_| WireError::VarintOverflow)
            }
        }
    )*};
}
impl_wire_signed!(i8, i16, i32);

impl Wire for i64 {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_varint_signed(*self);
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        r.get_varint_signed()
    }
}

impl Wire for f32 {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_f32(*self);
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        r.get_f32()
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        r.get_f64()
    }
}

impl Wire for Complex64 {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_f64(self.re);
        w.put_f64(self.im);
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        Ok(Complex64::new(r.get_f64()?, r.get_f64()?))
    }
}

impl Wire for String {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        r.get_str()
    }
}

impl Wire for Bytes {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_bytes(self);
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        r.get_bytes()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut ArchiveWriter) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        let len = r.get_varint()?;
        // Conservative pre-allocation guard: never reserve more slots than
        // remaining bytes (every element takes at least one byte).
        if len as usize > r.remaining().max(1) * 8 {
            return Err(WireError::LengthTooLarge {
                len,
                limit: (r.remaining() * 8) as u64,
            });
        }
        let mut out = Vec::with_capacity((len as usize).min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut ArchiveWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, w: &mut ArchiveWriter) {
                $(self.$idx.encode(w);)+
            }
            fn decode(r: &mut ArchiveReader) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}
impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(());
        roundtrip(true);
        roundtrip(false);
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(12345u16);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(-1i8);
        roundtrip(i16::MIN);
        roundtrip(i32::MIN);
        roundtrip(i64::MIN);
        roundtrip(1.5f32);
        roundtrip(-2.75f64);
    }

    #[test]
    fn complex_roundtrip() {
        roundtrip(Complex64::new(13.3, -23.8));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("hello world"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(42i64));
        roundtrip(Option::<i64>::None);
        roundtrip(vec![Complex64::new(1.0, 2.0); 100]);
        roundtrip(Bytes::from_static(b"raw"));
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((1u32,));
        roundtrip((1u32, String::from("x")));
        roundtrip((1u32, 2.5f64, vec![1u8, 2]));
        roundtrip((1u8, 2u16, 3u32, 4u64));
        roundtrip((1u8, 2u16, 3u32, 4u64, Complex64::I));
    }

    #[test]
    fn bool_bad_discriminant() {
        let r: Result<bool, _> = from_bytes(Bytes::from_static(&[2]));
        assert_eq!(r, Err(WireError::BadDiscriminant(2)));
        let r: Result<Option<u8>, _> = from_bytes(Bytes::from_static(&[9]));
        assert_eq!(r, Err(WireError::BadDiscriminant(9)));
    }

    #[test]
    fn narrowing_overflow_detected() {
        let bytes = to_bytes(&u64::MAX);
        let r: Result<u32, _> = from_bytes(bytes);
        assert_eq!(r, Err(WireError::VarintOverflow));
        let bytes = to_bytes(&i64::MIN);
        let r: Result<i32, _> = from_bytes(bytes);
        assert_eq!(r, Err(WireError::VarintOverflow));
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut w = ArchiveWriter::new();
        w.put_varint(5);
        w.put_u8(0xaa);
        let r: Result<u64, _> = from_bytes(w.finish());
        assert_eq!(r, Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_vec_length_rejected() {
        // Vec<u64> claiming 2^40 elements in a 3-byte buffer.
        let mut w = ArchiveWriter::new();
        w.put_varint(1 << 40);
        let r: Result<Vec<u64>, _> = from_bytes(w.finish());
        assert!(r.is_err());
    }

    #[test]
    fn toy_payload_size() {
        // The toy application sends a single complex double per parcel:
        // 16 bytes on the wire, no framing overhead at this layer.
        assert_eq!(to_bytes(&Complex64::new(13.3, -23.8)).len(), 16);
    }

    #[test]
    fn parquet_payload_size() {
        // A Parquet rotation parcel carries Nc complex doubles.
        let nc = 32;
        let payload = vec![Complex64::ZERO; nc];
        let bytes = to_bytes(&payload);
        assert_eq!(bytes.len(), 1 + nc * 16); // 1-byte varint length for 32
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn u64_roundtrips(v in any::<u64>()) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<u64>(b).unwrap(), v);
        }

        #[test]
        fn i64_roundtrips(v in any::<i64>()) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<i64>(b).unwrap(), v);
        }

        #[test]
        fn f64_roundtrips_bitwise(v in any::<f64>()) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<f64>(b).unwrap().to_bits(), v.to_bits());
        }

        #[test]
        fn strings_roundtrip(s in ".*") {
            let b = to_bytes(&s);
            prop_assert_eq!(from_bytes::<String>(b).unwrap(), s);
        }

        #[test]
        fn vec_of_complex_roundtrips(v in proptest::collection::vec((any::<f64>(), any::<f64>()), 0..64)) {
            let v: Vec<Complex64> = v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect();
            let b = to_bytes(&v);
            let back = from_bytes::<Vec<Complex64>>(b).unwrap();
            prop_assert_eq!(back.len(), v.len());
            for (a, b) in back.iter().zip(&v) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }

        #[test]
        fn arbitrary_bytes_never_panic_decoding(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding must fail cleanly, never panic, on arbitrary input.
            let _ = from_bytes::<Vec<u64>>(Bytes::from(data.clone()));
            let _ = from_bytes::<String>(Bytes::from(data.clone()));
            let _ = from_bytes::<(u32, Option<Complex64>)>(Bytes::from(data));
        }

        #[test]
        fn nested_tuple_roundtrips(a in any::<u32>(), b in any::<i32>(), s in ".{0,16}", o in proptest::option::of(any::<u64>())) {
            let v = (a, b, s.clone(), o);
            let bytes = to_bytes(&v);
            let back: (u32, i32, String, Option<u64>) = from_bytes(bytes).unwrap();
            prop_assert_eq!(back, v);
        }
    }
}
