//! The archive decoder.

use bytes::Bytes;

use crate::error::WireError;

/// Sanity limit on decoded length prefixes (256 MiB).
///
/// A corrupted length prefix must not cause a multi-gigabyte allocation;
/// real parcels are at most a few megabytes even at Parquet scale.
pub const MAX_LENGTH: u64 = 256 * 1024 * 1024;

/// Decodes values from a byte buffer with bounds checking.
#[derive(Debug, Clone)]
pub struct ArchiveReader {
    buf: Bytes,
    pos: usize,
}

impl ArchiveReader {
    /// Read from an owned buffer.
    pub fn new(buf: Bytes) -> Self {
        ArchiveReader { buf, pos: 0 }
    }

    /// Read from a byte slice (copies).
    pub fn from_slice(buf: &[u8]) -> Self {
        ArchiveReader {
            buf: Bytes::copy_from_slice(buf),
            pos: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless the archive was fully consumed.
    pub fn expect_exhausted(&self) -> Result<(), WireError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, WireError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Read a zigzag-encoded signed varint.
    pub fn get_varint_signed(&mut self) -> Result<i64, WireError> {
        let v = self.get_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Read a fixed-width little-endian `u32`.
    pub fn get_u32_le(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a fixed-width little-endian `u64`.
    pub fn get_u64_le(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64` from its little-endian bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64_le()?))
    }

    /// Read an `f32` from its little-endian bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.get_u32_le()?))
    }

    /// Read a length prefix, enforcing [`MAX_LENGTH`] and the remaining
    /// buffer size.
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let len = self.get_varint()?;
        if len > MAX_LENGTH {
            return Err(WireError::LengthTooLarge {
                len,
                limit: MAX_LENGTH,
            });
        }
        // A length can never legitimately exceed what is left in the buffer;
        // catching it here turns huge bogus allocations into clean errors.
        if len as usize > self.remaining() {
            return Err(WireError::UnexpectedEof {
                needed: len as usize,
                remaining: self.remaining(),
            });
        }
        Ok(len as usize)
    }

    /// Read length-prefixed bytes as a zero-copy slice of the archive.
    pub fn get_bytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.get_len()?;
        let start = self.pos;
        self.pos += len;
        Ok(self.buf.slice(start..start + len))
    }

    /// Read `n` raw bytes (no length prefix) as a zero-copy slice.
    pub fn get_raw(&mut self, n: usize) -> Result<Bytes, WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let start = self.pos;
        self.pos += n;
        Ok(self.buf.slice(start..start + n))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ArchiveWriter;

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 16384, u32::MAX as u64, u64::MAX];
        let mut w = ArchiveWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let mut r = ArchiveReader::new(w.finish());
        for &v in &values {
            assert_eq!(r.get_varint().unwrap(), v);
        }
        assert!(r.is_exhausted());
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn signed_varint_roundtrip() {
        let values = [0i64, -1, 1, i64::MIN, i64::MAX, -123456, 123456];
        let mut w = ArchiveWriter::new();
        for &v in &values {
            w.put_varint_signed(v);
        }
        let mut r = ArchiveReader::new(w.finish());
        for &v in &values {
            assert_eq!(r.get_varint_signed().unwrap(), v);
        }
    }

    #[test]
    fn eof_is_detected() {
        let mut r = ArchiveReader::from_slice(&[1, 2]);
        assert!(r.get_u32_le().is_err());
        let mut r = ArchiveReader::from_slice(&[]);
        assert_eq!(
            r.get_u8(),
            Err(WireError::UnexpectedEof {
                needed: 1,
                remaining: 0
            })
        );
    }

    #[test]
    fn varint_overflow_is_detected() {
        // 11 continuation bytes.
        let bytes = [0xffu8; 11];
        let mut r = ArchiveReader::from_slice(&bytes);
        assert_eq!(r.get_varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn truncated_varint_is_eof() {
        let mut r = ArchiveReader::from_slice(&[0x80]);
        assert!(matches!(
            r.get_varint(),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bogus_length_prefix_fails_cleanly() {
        // Length claims 1000 bytes but only 2 follow.
        let mut w = ArchiveWriter::new();
        w.put_varint(1000);
        w.put_raw(&[1, 2]);
        let mut r = ArchiveReader::new(w.finish());
        assert!(matches!(
            r.get_bytes(),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn enormous_length_prefix_is_rejected() {
        let mut w = ArchiveWriter::new();
        w.put_varint(u64::MAX / 2);
        let mut r = ArchiveReader::new(w.finish());
        assert!(matches!(r.get_len(), Err(WireError::LengthTooLarge { .. })));
    }

    #[test]
    fn string_roundtrip_and_invalid_utf8() {
        let mut w = ArchiveWriter::new();
        w.put_str("héllo");
        let mut r = ArchiveReader::new(w.finish());
        assert_eq!(r.get_str().unwrap(), "héllo");

        let mut w = ArchiveWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let mut r = ArchiveReader::new(w.finish());
        assert_eq!(r.get_str(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn zero_copy_bytes_slice() {
        let mut w = ArchiveWriter::new();
        w.put_bytes(b"payload");
        w.put_u8(9);
        let buf = w.finish();
        let mut r = ArchiveReader::new(buf);
        let payload = r.get_bytes().unwrap();
        assert_eq!(payload.as_ref(), b"payload");
        assert_eq!(r.get_u8().unwrap(), 9);
    }

    #[test]
    fn trailing_bytes_reported() {
        let mut r = ArchiveReader::from_slice(&[1, 2, 3]);
        r.get_u8().unwrap();
        assert_eq!(r.expect_exhausted(), Err(WireError::TrailingBytes(2)));
    }

    #[test]
    fn floats_roundtrip_bitwise() {
        let values = [0.0f64, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, f64::NAN];
        let mut w = ArchiveWriter::new();
        for &v in &values {
            w.put_f64(v);
        }
        w.put_f32(2.5);
        let mut r = ArchiveReader::new(w.finish());
        for &v in &values {
            let got = r.get_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
        assert_eq!(r.get_f32().unwrap(), 2.5);
    }

    #[test]
    fn get_raw_without_prefix() {
        let mut r = ArchiveReader::from_slice(b"abcdef");
        assert_eq!(r.get_raw(3).unwrap().as_ref(), b"abc");
        assert_eq!(r.remaining(), 3);
        assert!(r.get_raw(4).is_err());
    }
}
