//! # rpx-agas
//!
//! The **Active Global Address Space** (AGAS) substrate.
//!
//! In HPX, AGAS assigns every object a Global Identifier (GID) that stays
//! valid for the object's lifetime even if it migrates between localities
//! (§II-A of the paper). Parcels address their destination through AGAS,
//! and the parcel subsystem resolves a GID to a locality before choosing a
//! network route.
//!
//! RPX reproduces the parts of AGAS the paper's workloads exercise:
//!
//! * [`Gid`] — 96-bit global ids carrying their *birth* locality plus a
//!   locality-unique sequence number,
//! * [`AgasService`] — the resolution service mapping GIDs to their
//!   *current* locality (they may be re-homed) and symbolic names to GIDs,
//! * [`ObjectRegistry`] — the per-locality table of live objects backing
//!   locally-resolved GIDs (type-erased, downcast on access).
//!
//! Migration mid-flight is not implemented (the paper never moves
//! objects); re-homing is supported through an explicit
//! [`AgasService::rebind`].

#![warn(missing_docs)]

pub mod gid;
pub mod registry;
pub mod service;

pub use gid::Gid;
pub use registry::ObjectRegistry;
pub use service::{AgasError, AgasService};
