//! The AGAS resolution service.
//!
//! One `AgasService` is shared by every locality in the in-process cluster
//! (in HPX, locality 0 hosts the root AGAS service and others cache; since
//! our localities share an address space we keep one authoritative table
//! and model the *cost* of resolution inside the parcel path's background
//! work instead).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::gid::{Gid, GidAllocator};

/// Errors returned by AGAS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgasError {
    /// The GID is not bound to any locality.
    UnknownGid(Gid),
    /// The symbolic name is not registered.
    UnknownSymbol(String),
    /// The symbolic name is already registered.
    SymbolExists(String),
    /// The GID is the invalid sentinel.
    InvalidGid,
}

impl fmt::Display for AgasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgasError::UnknownGid(g) => write!(f, "GID {g} is not bound"),
            AgasError::UnknownSymbol(s) => write!(f, "symbol '{s}' is not registered"),
            AgasError::SymbolExists(s) => write!(f, "symbol '{s}' is already registered"),
            AgasError::InvalidGid => write!(f, "the invalid GID cannot be used"),
        }
    }
}

impl std::error::Error for AgasError {}

struct Tables {
    /// GID → current locality.
    bindings: HashMap<Gid, u32>,
    /// Symbolic name → GID.
    symbols: HashMap<String, Gid>,
}

/// The global address space service shared by all localities.
pub struct AgasService {
    num_localities: u32,
    allocators: Vec<GidAllocator>,
    tables: RwLock<Tables>,
}

impl AgasService {
    /// Create the service for a cluster of `num_localities` localities.
    pub fn new(num_localities: u32) -> Arc<Self> {
        assert!(num_localities > 0, "cluster needs at least one locality");
        Arc::new(AgasService {
            num_localities,
            allocators: (0..num_localities).map(GidAllocator::new).collect(),
            tables: RwLock::new(Tables {
                bindings: HashMap::new(),
                symbols: HashMap::new(),
            }),
        })
    }

    /// Number of localities in the cluster.
    pub fn num_localities(&self) -> u32 {
        self.num_localities
    }

    /// Allocate a GID born on `locality` and bind it there.
    ///
    /// # Panics
    /// Panics if `locality` is out of range.
    pub fn allocate(&self, locality: u32) -> Gid {
        let gid = self.allocators[locality as usize].allocate();
        self.tables.write().bindings.insert(gid, locality);
        gid
    }

    /// Resolve the current locality of `gid`.
    pub fn resolve(&self, gid: Gid) -> Result<u32, AgasError> {
        if !gid.is_valid() {
            return Err(AgasError::InvalidGid);
        }
        self.tables
            .read()
            .bindings
            .get(&gid)
            .copied()
            .ok_or(AgasError::UnknownGid(gid))
    }

    /// Move a binding to a new locality (explicit re-homing).
    pub fn rebind(&self, gid: Gid, locality: u32) -> Result<(), AgasError> {
        assert!(locality < self.num_localities, "locality out of range");
        let mut tables = self.tables.write();
        match tables.bindings.get_mut(&gid) {
            Some(loc) => {
                *loc = locality;
                Ok(())
            }
            None => Err(AgasError::UnknownGid(gid)),
        }
    }

    /// Remove a binding (object destroyed). Also drops any symbols that
    /// pointed at it.
    pub fn unbind(&self, gid: Gid) -> Result<(), AgasError> {
        let mut tables = self.tables.write();
        if tables.bindings.remove(&gid).is_none() {
            return Err(AgasError::UnknownGid(gid));
        }
        tables.symbols.retain(|_, g| *g != gid);
        Ok(())
    }

    /// Register a symbolic name for a GID.
    pub fn register_symbol(&self, name: &str, gid: Gid) -> Result<(), AgasError> {
        if !gid.is_valid() {
            return Err(AgasError::InvalidGid);
        }
        let mut tables = self.tables.write();
        if tables.symbols.contains_key(name) {
            return Err(AgasError::SymbolExists(name.to_string()));
        }
        tables.symbols.insert(name.to_string(), gid);
        Ok(())
    }

    /// Look up a symbolic name.
    pub fn resolve_symbol(&self, name: &str) -> Result<Gid, AgasError> {
        self.tables
            .read()
            .symbols
            .get(name)
            .copied()
            .ok_or_else(|| AgasError::UnknownSymbol(name.to_string()))
    }

    /// Number of live bindings (for diagnostics/tests).
    pub fn bound_count(&self) -> usize {
        self.tables.read().bindings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_binds_to_birth_locality() {
        let agas = AgasService::new(4);
        let g = agas.allocate(2);
        assert_eq!(agas.resolve(g), Ok(2));
        assert_eq!(g.birth_locality(), 2);
        assert_eq!(agas.bound_count(), 1);
    }

    #[test]
    fn rebind_moves_resolution_but_keeps_gid() {
        let agas = AgasService::new(4);
        let g = agas.allocate(0);
        agas.rebind(g, 3).unwrap();
        assert_eq!(agas.resolve(g), Ok(3));
        // Birth locality is unchanged — the GID is stable across moves,
        // which is the AGAS property the paper highlights.
        assert_eq!(g.birth_locality(), 0);
    }

    #[test]
    fn unbind_removes_binding_and_symbols() {
        let agas = AgasService::new(2);
        let g = agas.allocate(1);
        agas.register_symbol("obj", g).unwrap();
        agas.unbind(g).unwrap();
        assert_eq!(agas.resolve(g), Err(AgasError::UnknownGid(g)));
        assert!(matches!(
            agas.resolve_symbol("obj"),
            Err(AgasError::UnknownSymbol(_))
        ));
        assert_eq!(agas.unbind(g), Err(AgasError::UnknownGid(g)));
    }

    #[test]
    fn symbols_resolve_and_reject_duplicates() {
        let agas = AgasService::new(2);
        let g1 = agas.allocate(0);
        let g2 = agas.allocate(1);
        agas.register_symbol("root", g1).unwrap();
        assert_eq!(agas.resolve_symbol("root"), Ok(g1));
        assert_eq!(
            agas.register_symbol("root", g2),
            Err(AgasError::SymbolExists("root".into()))
        );
    }

    #[test]
    fn invalid_gid_is_rejected() {
        let agas = AgasService::new(1);
        assert_eq!(agas.resolve(Gid::INVALID), Err(AgasError::InvalidGid));
        assert_eq!(
            agas.register_symbol("x", Gid::INVALID),
            Err(AgasError::InvalidGid)
        );
    }

    #[test]
    fn unknown_gid_resolution_fails() {
        let agas = AgasService::new(1);
        let foreign = Gid::from_parts(0, 999);
        assert_eq!(agas.resolve(foreign), Err(AgasError::UnknownGid(foreign)));
    }

    #[test]
    fn concurrent_allocation_is_consistent() {
        let agas = AgasService::new(4);
        std::thread::scope(|s| {
            for loc in 0..4u32 {
                let agas = &agas;
                s.spawn(move || {
                    for _ in 0..500 {
                        let g = agas.allocate(loc);
                        assert_eq!(agas.resolve(g), Ok(loc));
                    }
                });
            }
        });
        assert_eq!(agas.bound_count(), 2000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rebind_out_of_range_panics() {
        let agas = AgasService::new(2);
        let g = agas.allocate(0);
        let _ = agas.rebind(g, 5);
    }
}
