//! Per-locality object storage.
//!
//! Objects addressed by GIDs live in their hosting locality's
//! `ObjectRegistry`; the registry is type-erased and access downcasts to
//! the concrete type. The parcel subsystem uses this to deliver
//! component-targeted actions; the LCO table in `rpx` core is a client as
//! well.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::gid::Gid;

/// A type-erased table of live objects on one locality.
#[derive(Default)]
pub struct ObjectRegistry {
    objects: RwLock<HashMap<Gid, Arc<dyn Any + Send + Sync>>>,
}

impl ObjectRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an object under `gid`, returning the previous occupant if
    /// any.
    pub fn insert<T: Any + Send + Sync>(
        &self,
        gid: Gid,
        object: Arc<T>,
    ) -> Option<Arc<dyn Any + Send + Sync>> {
        self.objects.write().insert(gid, object)
    }

    /// Fetch the object under `gid`, downcast to `T`.
    ///
    /// Returns `None` if absent or of a different type.
    pub fn get<T: Any + Send + Sync>(&self, gid: Gid) -> Option<Arc<T>> {
        let any = self.objects.read().get(&gid).cloned()?;
        any.downcast::<T>().ok()
    }

    /// Remove and return the object under `gid` (type-erased).
    pub fn remove(&self, gid: Gid) -> Option<Arc<dyn Any + Send + Sync>> {
        self.objects.write().remove(&gid)
    }

    /// Whether an object is stored under `gid`.
    pub fn contains(&self, gid: Gid) -> bool {
        self.objects.read().contains_key(&gid)
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let reg = ObjectRegistry::new();
        let gid = Gid::from_parts(0, 1);
        reg.insert(gid, Arc::new(42u64));
        assert_eq!(reg.get::<u64>(gid).as_deref(), Some(&42));
        assert!(reg.contains(gid));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn wrong_type_downcast_returns_none() {
        let reg = ObjectRegistry::new();
        let gid = Gid::from_parts(0, 1);
        reg.insert(gid, Arc::new(42u64));
        assert!(reg.get::<String>(gid).is_none());
        // The object is still there.
        assert!(reg.contains(gid));
    }

    #[test]
    fn remove_returns_object() {
        let reg = ObjectRegistry::new();
        let gid = Gid::from_parts(0, 2);
        reg.insert(gid, Arc::new(String::from("x")));
        let removed = reg.remove(gid).unwrap();
        assert_eq!(removed.downcast::<String>().unwrap().as_str(), "x");
        assert!(!reg.contains(gid));
        assert!(reg.remove(gid).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let reg = ObjectRegistry::new();
        let gid = Gid::from_parts(0, 3);
        assert!(reg.insert(gid, Arc::new(1u32)).is_none());
        let prev = reg.insert(gid, Arc::new(2u32)).unwrap();
        assert_eq!(*prev.downcast::<u32>().unwrap(), 1);
        assert_eq!(reg.get::<u32>(gid).as_deref(), Some(&2));
    }

    #[test]
    fn shared_access_from_threads() {
        let reg = Arc::new(ObjectRegistry::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for i in 0..250 {
                        let gid = Gid::from_parts(t as u32, i + 1);
                        reg.insert(gid, Arc::new(t * 1000 + i));
                        assert_eq!(reg.get::<u64>(gid).as_deref(), Some(&(t * 1000 + i)));
                    }
                });
            }
        });
        assert_eq!(reg.len(), 1000);
    }
}
