//! Global identifiers.

use rpx_util::IdAllocator;

/// A global identifier for an RPX object.
///
/// A GID is `(birth locality, sequence)` where the sequence number is
/// unique within the birth locality. The birth locality is only a hint for
/// debugging and initial resolution; the *authoritative* current locality
/// comes from [`crate::AgasService`] (objects can be re-homed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gid {
    birth_locality: u32,
    sequence: u64,
}

impl Gid {
    /// The invalid GID (sequence 0), used as a sentinel.
    pub const INVALID: Gid = Gid {
        birth_locality: 0,
        sequence: 0,
    };

    /// Construct a GID from raw parts.
    pub const fn from_parts(birth_locality: u32, sequence: u64) -> Self {
        Gid {
            birth_locality,
            sequence,
        }
    }

    /// The locality the object was created on.
    pub fn birth_locality(&self) -> u32 {
        self.birth_locality
    }

    /// The locality-unique sequence number.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Whether this is the invalid sentinel.
    pub fn is_valid(&self) -> bool {
        self.sequence != 0
    }

    /// Pack into a `u128` (for wire transmission).
    pub fn pack(&self) -> u128 {
        (u128::from(self.birth_locality) << 64) | u128::from(self.sequence)
    }

    /// Unpack from a `u128`.
    pub fn unpack(v: u128) -> Self {
        Gid {
            birth_locality: (v >> 64) as u32,
            sequence: v as u64,
        }
    }
}

impl std::fmt::Display for Gid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{:#x}.{:#x}}}", self.birth_locality, self.sequence)
    }
}

/// Allocates GIDs born on one locality.
#[derive(Debug)]
pub struct GidAllocator {
    locality: u32,
    sequence: IdAllocator,
}

impl GidAllocator {
    /// Allocator for `locality`.
    pub fn new(locality: u32) -> Self {
        GidAllocator {
            locality,
            sequence: IdAllocator::new(),
        }
    }

    /// Allocate a fresh GID.
    pub fn allocate(&self) -> Gid {
        Gid {
            birth_locality: self.locality,
            sequence: self.sequence.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let g = Gid::from_parts(7, 0xdead_beef_cafe);
        assert_eq!(Gid::unpack(g.pack()), g);
        assert_eq!(g.birth_locality(), 7);
        assert_eq!(g.sequence(), 0xdead_beef_cafe);
    }

    #[test]
    fn invalid_sentinel() {
        assert!(!Gid::INVALID.is_valid());
        assert!(Gid::from_parts(0, 1).is_valid());
        assert_eq!(Gid::unpack(0), Gid::INVALID);
    }

    #[test]
    fn allocator_produces_unique_valid_gids() {
        let a = GidAllocator::new(3);
        let g1 = a.allocate();
        let g2 = a.allocate();
        assert_ne!(g1, g2);
        assert!(g1.is_valid() && g2.is_valid());
        assert_eq!(g1.birth_locality(), 3);
    }

    #[test]
    fn allocators_on_different_localities_never_collide() {
        let a = GidAllocator::new(0);
        let b = GidAllocator::new(1);
        let ga: std::collections::HashSet<Gid> = (0..100).map(|_| a.allocate()).collect();
        let gb: std::collections::HashSet<Gid> = (0..100).map(|_| b.allocate()).collect();
        assert!(ga.is_disjoint(&gb));
    }

    #[test]
    fn display_is_braced_hex() {
        let g = Gid::from_parts(1, 255);
        assert_eq!(g.to_string(), "{0x1.0xff}");
    }
}
