//! Multi-process bootstrap: rank handshake and address-book exchange.
//!
//! A multi-process cluster runs one OS process per locality ("rank").
//! Before any parcel can flow, every rank must (a) own a listening data
//! socket and (b) know the data address of every other rank. This module
//! produces that state — a [`TcpBootstrap`] — through one of three paths:
//!
//! * [`TcpBootstrap::in_process`] — the classic all-in-one mode: bind
//!   `N` loopback listeners in this process. Expressed as a degenerate
//!   address book (every rank is local), so the single-process path is a
//!   special case of the multi-process one, not a parallel code path.
//! * [`TcpBootstrap::address_book`] — a launcher (or operator) hands
//!   every rank the full `rank → address` table up front; each rank just
//!   binds its own assigned address.
//! * [`TcpBootstrap::rendezvous`] — ranks discover each other through
//!   rank 0: every worker binds an ephemeral data listener, rank 0
//!   additionally binds the well-known rendezvous address, workers
//!   connect to it and exchange a small versioned *hello* frame
//!   (`[rank, num_localities, data-addr]`), and rank 0 answers each with
//!   the completed address book once all peers have reported in.
//!
//! ## Handshake frame layout
//!
//! Every bootstrap frame is length-prefixed and versioned:
//!
//! ```text
//! [len u16 LE] [magic u32 = 0x52505842] [version u16] [kind u8] [body …]
//! ```
//!
//! * kind 1 `HELLO`: `[rank u32][num_localities u32][addr][host 16B]`
//! * kind 2 `BOOK`:  `[num_localities u32][(addr + host 16B) × num]`
//!   (index = rank)
//! * kind 3 `ERROR`: `[code u8][msg_len u16][msg utf-8]`
//!
//! where `addr` is `[family u8 (4|6)][ip 4|16 bytes][port u16 LE]` and
//! `host` is the sender's boot-time [`HostId`] — version 2 of the
//! protocol added it so every rank learns which peers share its host
//! (the shared-memory transport keys on this; a v1 peer gets a typed
//! [`BootstrapError::BadVersion`]). Validation failures are answered
//! with an `ERROR` frame (so the losing worker gets a typed
//! [`BootstrapError`], not a bare timeout) and every error path drops
//! its listeners before returning — no leaked sockets.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Magic tag leading every bootstrap frame (`"RPXB"` big-endian).
pub const BOOTSTRAP_MAGIC: u32 = 0x5250_5842;
/// Version of the bootstrap handshake protocol (v2 added per-rank
/// [`HostId`]s to `HELLO` and `BOOK` frames).
pub const BOOTSTRAP_VERSION: u16 = 2;

const KIND_HELLO: u8 = 1;
const KIND_BOOK: u8 = 2;
const KIND_ERROR: u8 = 3;

/// `ERROR`-frame codes (mirrored back as typed [`BootstrapError`]s).
const CODE_MALFORMED: u8 = 1;
const CODE_DUPLICATE_RANK: u8 = 2;
const CODE_SIZE_MISMATCH: u8 = 3;
const CODE_RANK_RANGE: u8 = 4;
const CODE_VERSION: u8 = 5;
const CODE_HOST_SKEW: u8 = 6;

/// Largest bootstrap frame body we accept (a book for 2048 ranks fits
/// with room to spare).
const MAX_BOOTSTRAP_FRAME: usize = 64 * 1024;

/// A 128-bit boot-time host identity, exchanged in `HELLO`/`BOOK`
/// frames so ranks can tell which peers share their machine (and may
/// therefore talk over shared memory instead of TCP).
///
/// On Linux this is the kernel's `boot_id` UUID — identical for every
/// process on the host, regenerated on reboot (so a stale segment from
/// before a reboot can never be mistaken for a live peer's). Elsewhere,
/// or when `/proc` is unavailable, it falls back to a hash of the
/// hostname, which still distinguishes hosts but not boots.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostId([u8; 16]);

impl HostId {
    /// Wire size of a host id in v2 bootstrap frames.
    pub const LEN: usize = 16;

    /// This host's identity (computed once, cached for the process).
    pub fn local() -> HostId {
        static CACHED: OnceLock<HostId> = OnceLock::new();
        *CACHED.get_or_init(HostId::detect)
    }

    fn detect() -> HostId {
        if let Ok(s) = std::fs::read_to_string("/proc/sys/kernel/random/boot_id") {
            let uuid: String = s.trim().chars().filter(|c| *c != '-').collect();
            if let Some(id) = HostId::parse_hex(&uuid) {
                return id;
            }
        }
        // Fallback: FNV-1a of the hostname, tagged so it can never
        // collide with a (random) boot id's distribution by accident.
        let name = std::env::var("HOSTNAME")
            .or_else(|_| std::env::var("COMPUTERNAME"))
            .unwrap_or_default();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(b"rpxhost\0");
        bytes[8..].copy_from_slice(&h.to_le_bytes());
        HostId(bytes)
    }

    /// Build from raw bytes (wire decode).
    pub fn from_bytes(bytes: [u8; 16]) -> HostId {
        HostId(bytes)
    }

    /// The raw bytes (wire encode).
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Render as 32 lowercase hex digits (the launcher's address-book
    /// suffix format, `host:port@<hex>`).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use fmt::Write as _;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Parse 32 hex digits (case-insensitive); `None` on any other
    /// shape.
    pub fn parse_hex(s: &str) -> Option<HostId> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let mut bytes = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            bytes[i] = u8::from_str_radix(std::str::from_utf8(chunk).ok()?, 16).ok()?;
        }
        Some(HostId(bytes))
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostId({})", self.to_hex())
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// How a multi-process cluster discovers its peers at boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootstrapMode {
    /// Workers connect to a rendezvous address served by rank 0 and
    /// exchange hello frames for the address book.
    Rendezvous {
        /// The well-known address rank 0 listens on during boot.
        addr: SocketAddr,
        /// How long to wait for all peers before giving up.
        timeout: Duration,
    },
    /// The launcher provides the complete `rank → data address` table;
    /// each rank binds its own entry. No rendezvous round-trip.
    AddressBook {
        /// Data address of every rank, indexed by rank.
        addrs: Vec<SocketAddr>,
        /// Per-rank host identity where the launcher knows it (`None`
        /// entries fall back to the loopback-address heuristic when
        /// deciding whether two ranks share a host).
        hosts: Vec<Option<HostId>>,
    },
}

/// This process's place in a multi-process cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// This process's rank (also its locality id).
    pub rank: u32,
    /// Total number of ranks in the cluster.
    pub num_localities: u32,
    /// How peers are discovered at boot.
    pub bootstrap: BootstrapMode,
}

impl Topology {
    /// Default time budget for the boot handshake.
    pub const DEFAULT_BOOT_TIMEOUT: Duration = Duration::from_secs(10);

    /// A rendezvous topology with the default boot timeout.
    pub fn rendezvous(rank: u32, num_localities: u32, addr: SocketAddr) -> Self {
        Topology {
            rank,
            num_localities,
            bootstrap: BootstrapMode::Rendezvous {
                addr,
                timeout: Self::DEFAULT_BOOT_TIMEOUT,
            },
        }
    }

    /// An address-book topology (the launcher supplied every address,
    /// but no host identities).
    pub fn address_book(rank: u32, addrs: Vec<SocketAddr>) -> Self {
        let hosts = vec![None; addrs.len()];
        Topology {
            rank,
            num_localities: addrs.len() as u32,
            bootstrap: BootstrapMode::AddressBook { addrs, hosts },
        }
    }

    /// Read the launcher's environment contract:
    ///
    /// * `RPX_RANK`, `RPX_NUM_LOCALITIES` — this process's place;
    /// * `RPX_BOOTSTRAP` — a `host:port` rendezvous address, **or**
    /// * `RPX_ADDRESS_BOOK` — comma-separated `host:port[@hostid]` list
    ///   (index = rank; takes precedence over `RPX_BOOTSTRAP`; the
    ///   optional `@<32 hex>` suffix is the rank's [`HostId`], letting
    ///   the launcher mark which ranks share a machine);
    /// * `RPX_BOOT_TIMEOUT_MS` — optional handshake budget override.
    ///
    /// Returns `Ok(None)` when `RPX_RANK` is unset (all-in-one mode).
    ///
    /// # Errors
    /// [`BootstrapError::Malformed`] when a variable is present but
    /// unparsable, inconsistent (`rank >= num_localities`), or when
    /// neither bootstrap variable is set.
    pub fn from_env() -> Result<Option<Topology>, BootstrapError> {
        let Ok(rank) = std::env::var("RPX_RANK") else {
            return Ok(None);
        };
        let rank: u32 = rank
            .parse()
            .map_err(|_| BootstrapError::Malformed("RPX_RANK is not a u32"))?;
        let num: u32 = std::env::var("RPX_NUM_LOCALITIES")
            .map_err(|_| BootstrapError::Malformed("RPX_RANK set but RPX_NUM_LOCALITIES missing"))?
            .parse()
            .map_err(|_| BootstrapError::Malformed("RPX_NUM_LOCALITIES is not a u32"))?;
        if num == 0 {
            return Err(BootstrapError::Malformed("RPX_NUM_LOCALITIES is zero"));
        }
        if rank >= num {
            return Err(BootstrapError::RankOutOfRange {
                rank,
                num_localities: num,
            });
        }
        let timeout = match std::env::var("RPX_BOOT_TIMEOUT_MS") {
            Ok(ms) => Duration::from_millis(
                ms.parse()
                    .map_err(|_| BootstrapError::Malformed("RPX_BOOT_TIMEOUT_MS is not a u64"))?,
            ),
            Err(_) => Topology::DEFAULT_BOOT_TIMEOUT,
        };
        if let Ok(book) = std::env::var("RPX_ADDRESS_BOOK") {
            let mut addrs = Vec::new();
            let mut hosts = Vec::new();
            for entry in book.split(',') {
                let entry = entry.trim();
                let (addr, host) = match entry.rsplit_once('@') {
                    Some((addr, hex)) => {
                        let host = HostId::parse_hex(hex).ok_or(BootstrapError::Malformed(
                            "RPX_ADDRESS_BOOK has a bad host-id suffix",
                        ))?;
                        (addr, Some(host))
                    }
                    None => (entry, None),
                };
                addrs.push(addr.parse::<SocketAddr>().map_err(|_| {
                    BootstrapError::Malformed("RPX_ADDRESS_BOOK has a bad address")
                })?);
                hosts.push(host);
            }
            if addrs.len() as u32 != num {
                return Err(BootstrapError::ClusterSizeMismatch {
                    ours: num,
                    theirs: addrs.len() as u32,
                });
            }
            return Ok(Some(Topology {
                rank,
                num_localities: num,
                bootstrap: BootstrapMode::AddressBook { addrs, hosts },
            }));
        }
        let addr: SocketAddr = std::env::var("RPX_BOOTSTRAP")
            .map_err(|_| {
                BootstrapError::Malformed("neither RPX_BOOTSTRAP nor RPX_ADDRESS_BOOK set")
            })?
            .parse()
            .map_err(|_| BootstrapError::Malformed("RPX_BOOTSTRAP is not host:port"))?;
        Ok(Some(Topology {
            rank,
            num_localities: num,
            bootstrap: BootstrapMode::Rendezvous { addr, timeout },
        }))
    }
}

/// Typed failures of the boot handshake.
#[derive(Debug)]
pub enum BootstrapError {
    /// Socket-level failure (bind, connect, read, write).
    Io(io::Error),
    /// A frame or environment variable failed to parse.
    Malformed(&'static str),
    /// A peer led with the wrong magic tag — not an rpx bootstrap peer.
    BadMagic(u32),
    /// A peer speaks an incompatible handshake version.
    BadVersion(u16),
    /// Two workers claimed the same rank.
    DuplicateRank(u32),
    /// A peer was launched with a different `num_localities`.
    ClusterSizeMismatch {
        /// Our `num_localities`.
        ours: u32,
        /// The peer's (or book's) `num_localities`.
        theirs: u32,
    },
    /// A rank outside `0..num_localities`.
    RankOutOfRange {
        /// The offending rank.
        rank: u32,
        /// The cluster size it must be below.
        num_localities: u32,
    },
    /// The book's host identity for our own rank disagrees with what
    /// this process measured at boot — the launcher's placement view
    /// has drifted from reality (e.g. a stale book reused after a
    /// reboot or a migration), so same-host negotiation cannot be
    /// trusted.
    HostIdentitySkew {
        /// Our rank, whose book entry is wrong.
        rank: u32,
        /// The identity this process measured.
        ours: HostId,
        /// The identity the book claims for us.
        theirs: HostId,
    },
    /// The handshake did not complete within its time budget.
    Timeout {
        /// How long we waited.
        waited: Duration,
        /// How many peers had not reported in.
        missing: u32,
    },
    /// Rank 0 rejected our hello with an `ERROR` frame.
    Rejected {
        /// The error code from the frame.
        code: u8,
        /// The human-readable message from the frame.
        message: String,
    },
}

impl fmt::Display for BootstrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootstrapError::Io(e) => write!(f, "bootstrap i/o error: {e}"),
            BootstrapError::Malformed(what) => write!(f, "malformed bootstrap input: {what}"),
            BootstrapError::BadMagic(m) => {
                write!(f, "bad bootstrap magic {m:#010x} (not an rpx peer)")
            }
            BootstrapError::BadVersion(v) => write!(
                f,
                "bootstrap protocol version {v} (we speak {BOOTSTRAP_VERSION})"
            ),
            BootstrapError::DuplicateRank(r) => write!(f, "two workers claimed rank {r}"),
            BootstrapError::ClusterSizeMismatch { ours, theirs } => write!(
                f,
                "cluster size mismatch: we were launched with {ours} localities, peer says {theirs}"
            ),
            BootstrapError::RankOutOfRange {
                rank,
                num_localities,
            } => write!(
                f,
                "rank {rank} out of range for {num_localities} localities"
            ),
            BootstrapError::HostIdentitySkew { rank, ours, theirs } => write!(
                f,
                "host identity skew for rank {rank}: measured {ours}, book says {theirs}"
            ),
            BootstrapError::Timeout { waited, missing } => write!(
                f,
                "bootstrap timed out after {waited:?} with {missing} peer(s) missing"
            ),
            BootstrapError::Rejected { code, message } => {
                write!(f, "rendezvous rejected our hello (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for BootstrapError {}

impl From<io::Error> for BootstrapError {
    fn from(e: io::Error) -> Self {
        BootstrapError::Io(e)
    }
}

impl BootstrapError {
    /// The `ERROR`-frame code this error is reported as on the wire.
    fn wire_code(&self) -> u8 {
        match self {
            BootstrapError::Malformed(_) | BootstrapError::BadMagic(_) => CODE_MALFORMED,
            BootstrapError::BadVersion(_) => CODE_VERSION,
            BootstrapError::DuplicateRank(_) => CODE_DUPLICATE_RANK,
            BootstrapError::ClusterSizeMismatch { .. } => CODE_SIZE_MISMATCH,
            BootstrapError::RankOutOfRange { .. } => CODE_RANK_RANGE,
            BootstrapError::HostIdentitySkew { .. } => CODE_HOST_SKEW,
            _ => CODE_MALFORMED,
        }
    }

    /// Reconstruct the typed error a worker should surface for an
    /// `ERROR` frame received from the rendezvous.
    fn from_wire(code: u8, message: String) -> Self {
        BootstrapError::Rejected { code, message }
    }
}

/// The completed bootstrap: every rank's data address, plus the bound
/// listeners for the ranks *this process* hosts.
///
/// Consumed by `TcpTransport::from_bootstrap`, which registers the local
/// listeners with its pump pool and lazily connects outbound using the
/// address book.
#[derive(Debug)]
pub struct TcpBootstrap {
    /// `(rank, bound data listener)` for every locally hosted rank.
    pub(crate) local: Vec<(u32, TcpListener)>,
    /// Data address of every rank, indexed by rank.
    pub(crate) addrs: Vec<SocketAddr>,
    /// Host identity of every rank where known, indexed by rank.
    pub(crate) host_ids: Vec<Option<HostId>>,
}

impl TcpBootstrap {
    /// All-in-one mode: host every rank in this process, each on its own
    /// ephemeral loopback listener. This is the degenerate address book
    /// where all entries are local.
    pub fn in_process(localities: u32) -> io::Result<Self> {
        assert!(localities > 0, "a cluster needs at least one locality");
        let mut local = Vec::with_capacity(localities as usize);
        let mut addrs = Vec::with_capacity(localities as usize);
        for rank in 0..localities {
            let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
            listener.set_nonblocking(true)?;
            addrs.push(listener.local_addr()?);
            local.push((rank, listener));
        }
        let host_ids = vec![Some(HostId::local()); localities as usize];
        Ok(TcpBootstrap {
            local,
            addrs,
            host_ids,
        })
    }

    /// Launcher-provided address book: bind this rank's assigned entry.
    ///
    /// # Errors
    /// [`BootstrapError::RankOutOfRange`] if `rank` has no book entry;
    /// [`BootstrapError::Io`] if the assigned address cannot be bound.
    pub fn address_book(rank: u32, addrs: Vec<SocketAddr>) -> Result<Self, BootstrapError> {
        let hosts = vec![None; addrs.len()];
        TcpBootstrap::address_book_with_hosts(rank, addrs, hosts)
    }

    /// [`TcpBootstrap::address_book`] with the launcher's per-rank host
    /// identities (entries may be `None` when unknown).
    ///
    /// # Errors
    /// As `address_book`, plus [`BootstrapError::HostIdentitySkew`] if
    /// the book claims a host identity for *our* rank that differs from
    /// what this process measures — a launcher whose placement view has
    /// drifted must not let us negotiate shared memory.
    pub fn address_book_with_hosts(
        rank: u32,
        addrs: Vec<SocketAddr>,
        hosts: Vec<Option<HostId>>,
    ) -> Result<Self, BootstrapError> {
        if rank as usize >= addrs.len() {
            return Err(BootstrapError::RankOutOfRange {
                rank,
                num_localities: addrs.len() as u32,
            });
        }
        assert_eq!(addrs.len(), hosts.len(), "book and host table disagree");
        let mut host_ids = hosts;
        match host_ids[rank as usize] {
            Some(claimed) if claimed != HostId::local() => {
                return Err(BootstrapError::HostIdentitySkew {
                    rank,
                    ours: HostId::local(),
                    theirs: claimed,
                });
            }
            _ => host_ids[rank as usize] = Some(HostId::local()),
        }
        let listener = TcpListener::bind(addrs[rank as usize])?;
        listener.set_nonblocking(true)?;
        let mut addrs = addrs;
        // The book may carry port 0 for "any"; record what we really got.
        addrs[rank as usize] = listener.local_addr()?;
        Ok(TcpBootstrap {
            local: vec![(rank, listener)],
            addrs,
            host_ids,
        })
    }

    /// Rendezvous handshake through rank 0 (see module docs).
    ///
    /// Every rank binds an ephemeral data listener first; rank 0 then
    /// serves the rendezvous address, collecting one hello per peer and
    /// answering each with the completed book. All listeners are dropped
    /// on every error path.
    pub fn rendezvous(
        rank: u32,
        num_localities: u32,
        rendezvous: SocketAddr,
        timeout: Duration,
    ) -> Result<Self, BootstrapError> {
        if num_localities == 0 {
            return Err(BootstrapError::Malformed("num_localities is zero"));
        }
        if rank >= num_localities {
            return Err(BootstrapError::RankOutOfRange {
                rank,
                num_localities,
            });
        }
        let data = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
        data.set_nonblocking(true)?;
        let my_addr = data.local_addr()?;
        let deadline = Instant::now() + timeout;
        let book = if rank == 0 {
            serve_rendezvous(my_addr, num_localities, rendezvous, deadline)?
        } else {
            join_rendezvous(rank, num_localities, my_addr, rendezvous, deadline)?
        };
        let (addrs, hosts): (Vec<SocketAddr>, Vec<HostId>) = book.into_iter().unzip();
        Ok(TcpBootstrap {
            local: vec![(rank, data)],
            addrs,
            host_ids: hosts.into_iter().map(Some).collect(),
        })
    }

    /// Number of ranks in the cluster.
    pub fn num_localities(&self) -> u32 {
        self.addrs.len() as u32
    }

    /// The data address of every rank, indexed by rank.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The host identity of every rank where known, indexed by rank.
    pub fn host_ids(&self) -> &[Option<HostId>] {
        &self.host_ids
    }

    /// Whether ranks `a` and `b` are known to share a machine: their
    /// exchanged host identities match, or — when either identity is
    /// unknown — both data addresses are loopback (a remote peer cannot
    /// be reached at a loopback address, so the heuristic never claims
    /// same-host across machines).
    pub fn same_host(&self, a: u32, b: u32) -> bool {
        let (a, b) = (a as usize, b as usize);
        match (self.host_ids.get(a), self.host_ids.get(b)) {
            (Some(Some(ha)), Some(Some(hb))) => ha == hb,
            _ => {
                self.addrs.get(a).is_some_and(|x| x.ip().is_loopback())
                    && self.addrs.get(b).is_some_and(|x| x.ip().is_loopback())
            }
        }
    }

    /// The ranks hosted by this process.
    pub fn hosted(&self) -> Vec<u32> {
        self.local.iter().map(|(r, _)| *r).collect()
    }
}

/// Rank 0's side: accept `num - 1` hellos on the rendezvous listener,
/// validate each, then send everyone the completed book.
fn serve_rendezvous(
    my_addr: SocketAddr,
    num: u32,
    rendezvous: SocketAddr,
    deadline: Instant,
) -> Result<Vec<(SocketAddr, HostId)>, BootstrapError> {
    let start = Instant::now();
    let listener = TcpListener::bind(rendezvous)?;
    listener.set_nonblocking(true)?;
    let mut peers: Vec<Option<(SocketAddr, HostId, TcpStream)>> = (0..num).map(|_| None).collect();
    let mut connected = 0u32;
    while connected + 1 < num {
        let now = Instant::now();
        if now >= deadline {
            return Err(BootstrapError::Timeout {
                waited: now - start,
                missing: num - 1 - connected,
            });
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                match read_hello(&mut stream, deadline) {
                    Ok((peer_rank, peer_num, peer_addr, peer_host)) => {
                        let err = if peer_num != num {
                            Some(BootstrapError::ClusterSizeMismatch {
                                ours: num,
                                theirs: peer_num,
                            })
                        } else if peer_rank == 0 || peer_rank >= num {
                            Some(BootstrapError::RankOutOfRange {
                                rank: peer_rank,
                                num_localities: num,
                            })
                        } else if peers[peer_rank as usize].is_some() {
                            Some(BootstrapError::DuplicateRank(peer_rank))
                        } else {
                            None
                        };
                        if let Some(err) = err {
                            reject_all(&mut peers, &mut stream, &err);
                            return Err(err);
                        }
                        peers[peer_rank as usize] = Some((peer_addr, peer_host, stream));
                        connected += 1;
                    }
                    Err(err) => {
                        // A malformed hello poisons the whole boot: the
                        // cluster cannot form without this peer's rank.
                        reject_all(&mut peers, &mut stream, &err);
                        return Err(err);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e.into()),
        }
    }
    let mut entries: Vec<(SocketAddr, HostId)> = Vec::with_capacity(num as usize);
    entries.push((my_addr, HostId::local()));
    for slot in peers.iter().skip(1) {
        let (addr, host, _) = slot.as_ref().expect("all peers connected");
        entries.push((*addr, *host));
    }
    let book = encode_book(&entries);
    for slot in peers.iter_mut().skip(1) {
        let (_, _, stream) = slot.as_mut().expect("all peers connected");
        stream.set_nonblocking(false).map_err(BootstrapError::Io)?;
        stream.write_all(&book)?;
        stream.flush()?;
    }
    Ok(entries)
}

/// A worker's side: connect to the rendezvous (retrying while rank 0
/// boots), send our hello, and wait for the book (or a typed rejection).
fn join_rendezvous(
    rank: u32,
    num: u32,
    my_addr: SocketAddr,
    rendezvous: SocketAddr,
    deadline: Instant,
) -> Result<Vec<(SocketAddr, HostId)>, BootstrapError> {
    let start = Instant::now();
    let mut stream = loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(BootstrapError::Timeout {
                waited: now - start,
                missing: 1,
            });
        }
        let budget = deadline - now;
        match TcpStream::connect_timeout(&rendezvous, budget.min(Duration::from_millis(250))) {
            Ok(s) => break s,
            // Rank 0 may not have bound the rendezvous yet.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    stream.write_all(&encode_hello(rank, num, my_addr, HostId::local()))?;
    stream.flush()?;
    let frame = read_frame(&mut stream, deadline).map_err(|e| match e {
        // Rank 0 closing without a book (its own boot failed) surfaces
        // as a short read; report it as a timeout-class boot failure.
        BootstrapError::Io(ioe) if ioe.kind() == io::ErrorKind::UnexpectedEof => {
            BootstrapError::Malformed("rendezvous closed before sending the address book")
        }
        other => other,
    })?;
    match frame {
        Frame::Book(entries) => {
            if entries.len() as u32 != num {
                return Err(BootstrapError::ClusterSizeMismatch {
                    ours: num,
                    theirs: entries.len() as u32,
                });
            }
            let (addr, host) = entries[rank as usize];
            if addr != my_addr {
                return Err(BootstrapError::Malformed(
                    "address book disagrees about our own address",
                ));
            }
            if host != HostId::local() {
                return Err(BootstrapError::HostIdentitySkew {
                    rank,
                    ours: HostId::local(),
                    theirs: host,
                });
            }
            Ok(entries)
        }
        Frame::Error { code, message } => Err(BootstrapError::from_wire(code, message)),
        Frame::Hello { .. } => Err(BootstrapError::Malformed(
            "rendezvous answered with a hello frame",
        )),
    }
}

/// Send `err` as an `ERROR` frame to the offending stream and every
/// already-connected peer, so no worker is left waiting for a book that
/// will never come. Best-effort: a dead peer cannot make this worse.
fn reject_all(
    peers: &mut [Option<(SocketAddr, HostId, TcpStream)>],
    offender: &mut TcpStream,
    err: &BootstrapError,
) {
    let frame = encode_error(err.wire_code(), &err.to_string());
    let _ = offender.set_nonblocking(false);
    let _ = offender.write_all(&frame);
    let _ = offender.flush();
    for slot in peers.iter_mut() {
        if let Some((_, _, stream)) = slot.as_mut() {
            let _ = stream.set_nonblocking(false);
            let _ = stream.write_all(&frame);
            let _ = stream.flush();
        }
    }
}

/// A decoded bootstrap frame.
enum Frame {
    Hello {
        rank: u32,
        num: u32,
        addr: SocketAddr,
        host: HostId,
    },
    Book(Vec<(SocketAddr, HostId)>),
    Error {
        code: u8,
        message: String,
    },
}

fn push_addr(out: &mut Vec<u8>, addr: SocketAddr) {
    match addr.ip() {
        IpAddr::V4(ip) => {
            out.push(4);
            out.extend_from_slice(&ip.octets());
        }
        IpAddr::V6(ip) => {
            out.push(6);
            out.extend_from_slice(&ip.octets());
        }
    }
    out.extend_from_slice(&addr.port().to_le_bytes());
}

fn parse_addr(body: &[u8], at: &mut usize) -> Result<SocketAddr, BootstrapError> {
    fn malformed() -> BootstrapError {
        BootstrapError::Malformed("truncated address in bootstrap frame")
    }
    let family = *body.get(*at).ok_or_else(malformed)?;
    *at += 1;
    let ip: IpAddr = match family {
        4 => {
            let bytes: [u8; 4] = body
                .get(*at..*at + 4)
                .ok_or_else(malformed)?
                .try_into()
                .unwrap();
            *at += 4;
            IpAddr::V4(Ipv4Addr::from(bytes))
        }
        6 => {
            let bytes: [u8; 16] = body
                .get(*at..*at + 16)
                .ok_or_else(malformed)?
                .try_into()
                .unwrap();
            *at += 16;
            IpAddr::V6(Ipv6Addr::from(bytes))
        }
        _ => return Err(BootstrapError::Malformed("unknown address family")),
    };
    let port_bytes: [u8; 2] = body
        .get(*at..*at + 2)
        .ok_or_else(malformed)?
        .try_into()
        .unwrap();
    *at += 2;
    Ok(SocketAddr::new(ip, u16::from_le_bytes(port_bytes)))
}

fn frame_header(kind: u8, body_len: usize) -> Vec<u8> {
    let len = (4 + 2 + 1 + body_len) as u16;
    let mut out = Vec::with_capacity(2 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&BOOTSTRAP_MAGIC.to_le_bytes());
    out.extend_from_slice(&BOOTSTRAP_VERSION.to_le_bytes());
    out.push(kind);
    out
}

fn encode_hello(rank: u32, num: u32, addr: SocketAddr, host: HostId) -> Vec<u8> {
    let mut body = Vec::with_capacity(8 + 19 + HostId::LEN);
    body.extend_from_slice(&rank.to_le_bytes());
    body.extend_from_slice(&num.to_le_bytes());
    push_addr(&mut body, addr);
    body.extend_from_slice(host.as_bytes());
    let mut out = frame_header(KIND_HELLO, body.len());
    out.extend_from_slice(&body);
    out
}

fn encode_book(entries: &[(SocketAddr, HostId)]) -> Vec<u8> {
    let mut body = Vec::with_capacity(4 + entries.len() * (19 + HostId::LEN));
    body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (addr, host) in entries {
        push_addr(&mut body, *addr);
        body.extend_from_slice(host.as_bytes());
    }
    let mut out = frame_header(KIND_BOOK, body.len());
    out.extend_from_slice(&body);
    out
}

fn parse_host(body: &[u8], at: &mut usize) -> Result<HostId, BootstrapError> {
    let bytes: [u8; 16] = body
        .get(*at..*at + HostId::LEN)
        .ok_or(BootstrapError::Malformed(
            "truncated host id in bootstrap frame",
        ))?
        .try_into()
        .unwrap();
    *at += HostId::LEN;
    Ok(HostId::from_bytes(bytes))
}

fn encode_error(code: u8, message: &str) -> Vec<u8> {
    let msg = message.as_bytes();
    let msg = &msg[..msg.len().min(512)];
    let mut body = Vec::with_capacity(3 + msg.len());
    body.push(code);
    body.extend_from_slice(&(msg.len() as u16).to_le_bytes());
    body.extend_from_slice(msg);
    let mut out = frame_header(KIND_ERROR, body.len());
    out.extend_from_slice(&body);
    out
}

/// Read exactly `buf.len()` bytes before `deadline` from a stream whose
/// read timeout we keep clamped to the remaining budget.
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<(), BootstrapError> {
    let start = Instant::now();
    let mut at = 0;
    stream.set_nonblocking(false)?;
    while at < buf.len() {
        let now = Instant::now();
        if now >= deadline {
            return Err(BootstrapError::Timeout {
                waited: now - start,
                missing: 1,
            });
        }
        stream.set_read_timeout(Some((deadline - now).min(Duration::from_millis(250))))?;
        match stream.read(&mut buf[at..]) {
            Ok(0) => {
                return Err(BootstrapError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "bootstrap peer closed mid-frame",
                )))
            }
            Ok(n) => at += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read and decode one bootstrap frame.
fn read_frame(stream: &mut TcpStream, deadline: Instant) -> Result<Frame, BootstrapError> {
    let mut len_bytes = [0u8; 2];
    read_exact_deadline(stream, &mut len_bytes, deadline)?;
    let len = u16::from_le_bytes(len_bytes) as usize;
    if !(7..=MAX_BOOTSTRAP_FRAME).contains(&len) {
        return Err(BootstrapError::Malformed("bootstrap frame length"));
    }
    let mut frame = vec![0u8; len];
    read_exact_deadline(stream, &mut frame, deadline)?;
    let magic = u32::from_le_bytes(frame[0..4].try_into().unwrap());
    if magic != BOOTSTRAP_MAGIC {
        return Err(BootstrapError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(frame[4..6].try_into().unwrap());
    if version != BOOTSTRAP_VERSION {
        return Err(BootstrapError::BadVersion(version));
    }
    let kind = frame[6];
    let body = &frame[7..];
    match kind {
        KIND_HELLO => {
            if body.len() < 8 {
                return Err(BootstrapError::Malformed("short hello frame"));
            }
            let rank = u32::from_le_bytes(body[0..4].try_into().unwrap());
            let num = u32::from_le_bytes(body[4..8].try_into().unwrap());
            let mut at = 8;
            let addr = parse_addr(body, &mut at)?;
            let host = parse_host(body, &mut at)?;
            Ok(Frame::Hello {
                rank,
                num,
                addr,
                host,
            })
        }
        KIND_BOOK => {
            if body.len() < 4 {
                return Err(BootstrapError::Malformed("short book frame"));
            }
            let num = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
            // Minimum entry: 1 family + 4 ip + 2 port + 16 host id.
            if num > MAX_BOOTSTRAP_FRAME / (7 + HostId::LEN) {
                return Err(BootstrapError::Malformed("book frame count"));
            }
            let mut at = 4;
            let mut entries = Vec::with_capacity(num);
            for _ in 0..num {
                let addr = parse_addr(body, &mut at)?;
                let host = parse_host(body, &mut at)?;
                entries.push((addr, host));
            }
            Ok(Frame::Book(entries))
        }
        KIND_ERROR => {
            if body.len() < 3 {
                return Err(BootstrapError::Malformed("short error frame"));
            }
            let code = body[0];
            let msg_len = u16::from_le_bytes(body[1..3].try_into().unwrap()) as usize;
            let message = body
                .get(3..3 + msg_len)
                .map(|m| String::from_utf8_lossy(m).into_owned())
                .unwrap_or_default();
            Ok(Frame::Error { code, message })
        }
        _ => Err(BootstrapError::Malformed("unknown bootstrap frame kind")),
    }
}

/// Read a hello (and only a hello) from a freshly accepted stream.
fn read_hello(
    stream: &mut TcpStream,
    deadline: Instant,
) -> Result<(u32, u32, SocketAddr, HostId), BootstrapError> {
    match read_frame(stream, deadline)? {
        Frame::Hello {
            rank,
            num,
            addr,
            host,
        } => Ok((rank, num, addr, host)),
        _ => Err(BootstrapError::Malformed("expected a hello frame")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn free_addr() -> SocketAddr {
        // Bind-then-drop: the port stays free long enough for the test.
        TcpListener::bind((Ipv4Addr::LOCALHOST, 0))
            .unwrap()
            .local_addr()
            .unwrap()
    }

    #[test]
    fn in_process_binds_every_rank_locally() {
        let boot = TcpBootstrap::in_process(3).unwrap();
        assert_eq!(boot.num_localities(), 3);
        assert_eq!(boot.hosted(), vec![0, 1, 2]);
        assert_eq!(boot.addrs().len(), 3);
        for ((rank, listener), addr) in boot.local.iter().zip(boot.addrs()) {
            assert_eq!(listener.local_addr().unwrap(), *addr, "rank {rank}");
        }
    }

    #[test]
    fn address_book_binds_only_our_rank() {
        let a0 = free_addr();
        let a1 = free_addr();
        let boot = TcpBootstrap::address_book(1, vec![a0, a1]).unwrap();
        assert_eq!(boot.hosted(), vec![1]);
        assert_eq!(boot.addrs()[1], a1);
    }

    #[test]
    fn address_book_rejects_out_of_range_rank() {
        let err = TcpBootstrap::address_book(5, vec![free_addr()]).unwrap_err();
        assert!(matches!(
            err,
            BootstrapError::RankOutOfRange {
                rank: 5,
                num_localities: 1
            }
        ));
    }

    #[test]
    fn rendezvous_exchanges_a_consistent_book() {
        let rdv = free_addr();
        let n = 4u32;
        let mut handles = Vec::new();
        for rank in 0..n {
            handles.push(thread::spawn(move || {
                TcpBootstrap::rendezvous(rank, n, rdv, Duration::from_secs(5))
            }));
        }
        let boots: Vec<TcpBootstrap> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        let book = boots[0].addrs().to_vec();
        for boot in &boots {
            assert_eq!(boot.addrs(), &book[..], "all ranks see the same book");
            assert_eq!(boot.local.len(), 1);
            let (rank, listener) = &boot.local[0];
            assert_eq!(listener.local_addr().unwrap(), book[*rank as usize]);
            // v2: every rank learned every peer's host identity, and
            // (being one machine here) they all match ours.
            assert_eq!(boot.host_ids().len(), n as usize);
            for host in boot.host_ids() {
                assert_eq!(*host, Some(HostId::local()));
            }
            assert!(boot.same_host(0, n - 1));
        }
    }

    #[test]
    fn duplicate_rank_is_a_typed_error_on_both_sides() {
        let rdv = free_addr();
        let n = 3u32;
        let rank0 =
            thread::spawn(move || TcpBootstrap::rendezvous(0, n, rdv, Duration::from_secs(5)));
        let w1 = thread::spawn(move || TcpBootstrap::rendezvous(1, n, rdv, Duration::from_secs(5)));
        // Give worker 1 a head start so the duplicate arrives second.
        thread::sleep(Duration::from_millis(150));
        let dup = TcpBootstrap::rendezvous(1, n, rdv, Duration::from_secs(5));
        let r0 = rank0.join().unwrap();
        let r1 = w1.join().unwrap();
        // Rank 0 saw the duplicate and failed its boot...
        assert!(matches!(r0.unwrap_err(), BootstrapError::DuplicateRank(1)));
        // ...and at least one of the two rank-1 claimants was rejected
        // over the wire rather than left hanging.
        let rejected = [&r1, &dup]
            .iter()
            .filter(|r| matches!(r.as_ref().unwrap_err(), BootstrapError::Rejected { code, .. } if *code == CODE_DUPLICATE_RANK))
            .count();
        assert!(rejected >= 1, "duplicate claimants got typed rejections");
        assert!(r1.is_err() && dup.is_err());
    }

    #[test]
    fn cluster_size_mismatch_is_a_typed_error() {
        let rdv = free_addr();
        let rank0 =
            thread::spawn(move || TcpBootstrap::rendezvous(0, 2, rdv, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(50));
        let worker = TcpBootstrap::rendezvous(1, 3, rdv, Duration::from_secs(5));
        let r0 = rank0.join().unwrap();
        assert!(matches!(
            r0.unwrap_err(),
            BootstrapError::ClusterSizeMismatch { ours: 2, theirs: 3 }
        ));
        assert!(matches!(
            worker.unwrap_err(),
            BootstrapError::Rejected { code, .. } if code == CODE_SIZE_MISMATCH
        ));
    }

    #[test]
    fn malformed_hello_is_rejected_without_panicking() {
        let rdv = free_addr();
        let rank0 =
            thread::spawn(move || TcpBootstrap::rendezvous(0, 2, rdv, Duration::from_secs(5)));
        // Connect and send garbage that parses as a plausible frame
        // length but fails the magic check.
        thread::sleep(Duration::from_millis(50));
        let mut s = loop {
            match TcpStream::connect(rdv) {
                Ok(s) => break s,
                Err(_) => thread::sleep(Duration::from_millis(10)),
            }
        };
        s.write_all(&[16, 0]).unwrap(); // len = 16
        s.write_all(&[0xde; 16]).unwrap(); // wrong magic
        let r0 = rank0.join().unwrap();
        assert!(matches!(r0.unwrap_err(), BootstrapError::BadMagic(_)));
        // The rejection came back as an ERROR frame, not a hang.
        let mut reply = Vec::new();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let _ = s.read_to_end(&mut reply);
        assert!(reply.len() >= 2, "got an error frame back");
    }

    #[test]
    fn rendezvous_timeout_is_typed_and_leaks_no_listener() {
        let rdv = free_addr();
        // Rank 0 waits for a peer that never comes.
        let err = TcpBootstrap::rendezvous(0, 2, rdv, Duration::from_millis(200)).unwrap_err();
        assert!(matches!(err, BootstrapError::Timeout { missing: 1, .. }));
        // The rendezvous listener was dropped: we can re-bind it.
        TcpListener::bind(rdv).expect("rendezvous port released");
        // A worker connecting to a rendezvous that never answers also
        // times out (typed), once nothing is listening.
        let err = TcpBootstrap::rendezvous(1, 2, rdv, Duration::from_millis(200)).unwrap_err();
        assert!(matches!(err, BootstrapError::Timeout { .. }));
    }

    #[test]
    fn wrong_version_is_a_typed_error() {
        let rdv = free_addr();
        let rank0 =
            thread::spawn(move || TcpBootstrap::rendezvous(0, 2, rdv, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(50));
        let mut s = loop {
            match TcpStream::connect(rdv) {
                Ok(s) => break s,
                Err(_) => thread::sleep(Duration::from_millis(10)),
            }
        };
        // A hello from the future: right magic, version 99. The buffer
        // starts with the 2-byte length prefix, so version sits at 6..8.
        let mut frame = frame_header(KIND_HELLO, 8 + 7 + HostId::LEN);
        frame[6..8].copy_from_slice(&99u16.to_le_bytes());
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.extend_from_slice(&2u32.to_le_bytes());
        push_addr(&mut frame, free_addr());
        frame.extend_from_slice(HostId::local().as_bytes());
        s.write_all(&frame).unwrap();
        let r0 = rank0.join().unwrap();
        assert!(matches!(r0.unwrap_err(), BootstrapError::BadVersion(99)));
    }

    #[test]
    fn topology_from_env_is_none_without_rank() {
        // Env-var tests share a process; only assert the unset path,
        // which no other test mutates.
        std::env::remove_var("RPX_RANK");
        assert!(Topology::from_env().unwrap().is_none());
    }

    #[test]
    fn frame_roundtrip_hello_book_error() {
        let addr: SocketAddr = "127.0.0.1:9099".parse().unwrap();
        let other = HostId::parse_hex("00112233445566778899aabbccddeeff").unwrap();
        let hello = encode_hello(3, 8, addr, HostId::local());
        let (mut a, mut b) = socket_pair();
        a.write_all(&hello).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        match read_frame(&mut b, deadline).unwrap() {
            Frame::Hello {
                rank,
                num,
                addr: got,
                host,
            } => {
                assert_eq!((rank, num, got), (3, 8, addr));
                assert_eq!(host, HostId::local());
            }
            _ => panic!("expected hello"),
        }
        let entries = vec![
            (addr, HostId::local()),
            ("[::1]:8080".parse().unwrap(), other),
        ];
        a.write_all(&encode_book(&entries)).unwrap();
        match read_frame(&mut b, deadline).unwrap() {
            Frame::Book(got) => assert_eq!(got, entries),
            _ => panic!("expected book"),
        }
        a.write_all(&encode_error(CODE_DUPLICATE_RANK, "rank 3 twice"))
            .unwrap();
        match read_frame(&mut b, deadline).unwrap() {
            Frame::Error { code, message } => {
                assert_eq!(code, CODE_DUPLICATE_RANK);
                assert_eq!(message, "rank 3 twice");
            }
            _ => panic!("expected error"),
        }
    }

    #[test]
    fn host_id_hex_roundtrip_and_stability() {
        let local = HostId::local();
        assert_eq!(HostId::local(), local, "host id is stable in-process");
        let hex = local.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(HostId::parse_hex(&hex), Some(local));
        assert_eq!(HostId::parse_hex("xyz"), None);
        assert_eq!(HostId::parse_hex(&hex[..31]), None);
    }

    #[test]
    fn address_book_host_skew_is_a_typed_error() {
        let wrong = HostId::parse_hex("deadbeefdeadbeefdeadbeefdeadbeef").unwrap();
        assert_ne!(wrong, HostId::local());
        let err = TcpBootstrap::address_book_with_hosts(
            0,
            vec![free_addr(), free_addr()],
            vec![Some(wrong), None],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            BootstrapError::HostIdentitySkew { rank: 0, .. }
        ));
        // A correct (or absent) own entry is fine, and our slot is
        // filled in with the measured identity.
        let boot = TcpBootstrap::address_book_with_hosts(
            0,
            vec![free_addr(), free_addr()],
            vec![None, Some(wrong)],
        )
        .unwrap();
        assert_eq!(boot.host_ids()[0], Some(HostId::local()));
        assert_eq!(boot.host_ids()[1], Some(wrong));
        // Differing known identities ⇒ not same host, even on loopback.
        assert!(!boot.same_host(0, 1));
        assert!(boot.same_host(0, 0));
    }

    #[test]
    fn same_host_falls_back_to_loopback_heuristic() {
        let boot = TcpBootstrap::address_book(0, vec![free_addr(), free_addr()]).unwrap();
        // Rank 1's identity is unknown, but both addresses are
        // loopback, so the pair still negotiates same-host.
        assert_eq!(boot.host_ids()[1], None);
        assert!(boot.same_host(0, 1));
    }

    #[test]
    fn topology_from_env_book_suffix_parses() {
        // Exercise the suffix parser directly rather than through the
        // (process-global) environment.
        let local = HostId::local();
        let entry = format!("127.0.0.1:9099@{local}");
        let (addr, hex) = entry.rsplit_once('@').unwrap();
        assert_eq!(addr.parse::<SocketAddr>().unwrap().port(), 9099);
        assert_eq!(HostId::parse_hex(hex), Some(local));
    }

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }
}
