//! The simulated transport: per-locality ports, cost charging and
//! delayed delivery — the first [`Transport`] implementation.
//!
//! Each locality owns a [`SimPort`]. Sending enqueues onto the sender's
//! outbound queue; scheduler background work drives [`SimPort::pump_send`]
//! (charge sender CPU cost, stamp a delivery deadline `now + latency`,
//! move the message to the destination's in-flight heap) and
//! [`SimPort::pump_recv`] (pop due messages, charge receiver CPU cost,
//! invoke the receive handler). Both pumps are safe to call concurrently
//! from many workers; costs are paid by whichever worker handles the
//! message, exactly as HPX parcelport progress work lands on arbitrary
//! scheduler threads.
//!
//! Messages travel as in-memory structs (no copy on the hot path), but
//! byte counters charge **frame** lengths ([`wire_len`]) and fault
//! injection routes through the shared frame codec, so statistics and
//! corruption behaviour match the TCP backend byte for byte.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use rpx_util::busy_charge;

use crate::fault::{FaultAction, FaultPlan, FaultStage};
use crate::frame::{corrupt_frame, decode_frame, encode_frame, wire_len};
use crate::message::{DeliveryClass, Message};
use crate::model::LinkModel;
use crate::transport::{NotifyFn, ReceiveHandler, Transport, TransportPort};

/// Per-port traffic statistics (relaxed atomics, safe for hot paths).
///
/// Byte counters measure bytes **on the wire** — frame lengths, header
/// included — so the simulated and TCP backends report comparable
/// `/network/*` values.
#[derive(Debug, Default)]
pub struct PortStats {
    /// Messages handed to `send`.
    pub enqueued: AtomicU64,
    /// Messages pushed onto the wire (send cost paid).
    pub sent_messages: AtomicU64,
    /// Frame bytes pushed onto the wire.
    pub sent_bytes: AtomicU64,
    /// Messages delivered to the receive handler (recv cost paid).
    pub received_messages: AtomicU64,
    /// Frame bytes delivered.
    pub received_bytes: AtomicU64,
    /// Frames that arrived corrupted (checksum/framing failure) and were
    /// dropped on the receive side.
    pub decode_failures: AtomicU64,
    /// Sequenced frames re-sent by the reliability sublayer after their
    /// retransmission timeout expired unacked. Incremented by
    /// [`crate::reliability::ReliablePort`]; raw backends never touch it.
    pub retransmits: AtomicU64,
    /// Ack frames sent by the reliability sublayer on behalf of this
    /// port's receive side.
    pub acks_sent: AtomicU64,
    /// Received sequenced frames discarded as duplicates by the
    /// reliability sublayer's receive window (retransmit or injected
    /// duplicate already delivered).
    pub duplicates_suppressed: AtomicU64,
    /// Sequenced frames abandoned after the retransmission give-up
    /// budget was exhausted (each surfaced as a
    /// [`crate::reliability::DeliveryError`]).
    pub delivery_failures: AtomicU64,
    /// Readiness events dispatched for this port's sockets by the
    /// event-loop transport's pump threads ([`crate::TcpTransport`]).
    /// Always zero on the simulated backend.
    pub event_wakeups: AtomicU64,
    /// Vectored reads (`readv`) that moved at least one byte into this
    /// port's receive buffer. `received_messages / readv_batches` is the
    /// frame batching factor of the receive path.
    pub readv_batches: AtomicU64,
    /// Frames fully flushed to the kernel by vectored writes (`writev`)
    /// on this port's outgoing connections.
    pub writev_frames: AtomicU64,
    /// Messages delivered to this port through a same-host shared-memory
    /// ring instead of a socket ([`crate::TcpTransport`] with the shm
    /// backend enabled). Always zero on pure-TCP and simulated runs.
    pub shm_messages: AtomicU64,
    /// Frame bytes delivered through shared-memory rings.
    pub shm_bytes: AtomicU64,
    /// Doorbell readiness events dispatched for this port (a producer
    /// rang because the consumer looked idle, or a consumer rang a
    /// blocked producer back). A low ratio of wakeups to shm messages
    /// means the bounded-spin drain is batching well.
    pub doorbell_wakeups: AtomicU64,
    /// BestEffort-class messages intentionally discarded at this port —
    /// on the send side by a fault plan's wire drop or the parcel layer
    /// shedding load past its BestEffort backlog bound, and on the
    /// receive side when a frame arrives reordered so far behind its
    /// peers that the dedup window can no longer prove it unseen.
    /// At-most-once accounting: summed across both endpoints,
    /// `delivered + best_effort_dropped == sent` holds for BestEffort
    /// traffic under drop/duplicate faults. The counter is conservative:
    /// it never under-reports loss, but under extreme reordering it may
    /// over-report (a wire-duplicate displaced past the dedup window is
    /// discarded as stale even though its twin was delivered). Corrupted
    /// frames are counted as the receiver's `decode_failures` instead.
    pub best_effort_dropped: AtomicU64,
}

struct InFlight {
    deliver_at: Instant,
    seq: u64,
    message: Message,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deliver_at
            .cmp(&other.deliver_at)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Sentinel for [`PortShared::next_due`]: no message in flight.
const NO_DEADLINE: u64 = u64::MAX;

struct PortShared {
    locality: u32,
    outbound_tx: Sender<Message>,
    outbound_rx: Receiver<Message>,
    inflight: Mutex<BinaryHeap<Reverse<InFlight>>>,
    /// Earliest `deliver_at` in `inflight`, as nanoseconds since the
    /// fabric epoch ([`NO_DEADLINE`] when empty). Written only while the
    /// heap lock is held (Release) and read without it (Acquire), so
    /// `pump_recv` can skip the lock entirely when nothing is due — the
    /// common case for background polls on an idle or high-latency port.
    next_due: AtomicU64,
    receiver: RwLock<Option<ReceiveHandler>>,
    notify: RwLock<Option<NotifyFn>>,
    stats: PortStats,
    seq: AtomicU64,
    /// Messages popped from a queue but not yet handed to the next stage
    /// (mid-pump). Needed so quiescence checks do not declare the fabric
    /// idle while a pump thread holds a message.
    ///
    /// Ordering invariant: the gauge is incremented (Acquire) before the
    /// pump releases the queue it popped from and decremented (Release)
    /// only after the message has been handed to the next stage, so a
    /// quiescence check that observes empty queues and a zero gauge
    /// cannot have missed an in-transit message. Acquire/Release suffices
    /// because the gauge never synchronises data of its own — it only
    /// orders against the queue operations around it.
    processing: std::sync::atomic::AtomicUsize,
    /// Optional failure injection applied to outbound messages.
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Outbound messages parked by [`FaultAction::Reorder`], waiting for
    /// later traffic to overtake them. Counted in `outbound_backlog` so
    /// quiescence checks see them.
    reorder: Mutex<FaultStage<Message>>,
}

/// Decrements a processing gauge on drop (panic-safe).
struct ProcessingGuard<'a>(&'a std::sync::atomic::AtomicUsize);

impl<'a> ProcessingGuard<'a> {
    fn enter(gauge: &'a std::sync::atomic::AtomicUsize) -> Self {
        gauge.fetch_add(1, Ordering::Acquire);
        ProcessingGuard(gauge)
    }
}

impl Drop for ProcessingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

impl PortShared {
    fn notify(&self) {
        if let Some(n) = self.notify.read().as_ref() {
            n();
        }
    }
}

/// Shared fabric state: the cost model, the timestamp epoch and every
/// port. Both [`SimTransport`] and each [`SimPort`] hold an `Arc` to it,
/// so ports stay valid however the transport handle is passed around.
struct FabricState {
    model: LinkModel,
    /// Reference instant for `next_due` timestamps; all deadlines are
    /// encoded as nanoseconds since this epoch.
    epoch: Instant,
    ports: Vec<Arc<PortShared>>,
}

impl FabricState {
    /// Nanoseconds from the fabric epoch to `at` (saturating at zero).
    fn epoch_ns(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.epoch)
            .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

/// The simulated software network connecting all localities of a cluster.
pub struct SimTransport {
    state: Arc<FabricState>,
}

/// Historical name of [`SimTransport`], kept for call-site compatibility.
pub type Fabric = SimTransport;

/// Historical name of [`SimPort`], kept for call-site compatibility.
pub type NetPort = SimPort;

impl SimTransport {
    /// Build a fabric for `localities` localities under `model`.
    pub fn new(localities: u32, model: LinkModel) -> Arc<Self> {
        assert!(localities > 0, "fabric needs at least one locality");
        let ports = (0..localities)
            .map(|locality| {
                let (outbound_tx, outbound_rx) = unbounded();
                Arc::new(PortShared {
                    locality,
                    outbound_tx,
                    outbound_rx,
                    inflight: Mutex::new(BinaryHeap::new()),
                    next_due: AtomicU64::new(NO_DEADLINE),
                    receiver: RwLock::new(None),
                    notify: RwLock::new(None),
                    stats: PortStats::default(),
                    seq: AtomicU64::new(0),
                    processing: std::sync::atomic::AtomicUsize::new(0),
                    faults: RwLock::new(None),
                    reorder: Mutex::new(FaultStage::default()),
                })
            })
            .collect();
        Arc::new(SimTransport {
            state: Arc::new(FabricState {
                model,
                epoch: Instant::now(),
                ports,
            }),
        })
    }

    /// The link model in force.
    pub fn model(&self) -> LinkModel {
        self.state.model
    }

    /// Number of localities.
    pub fn localities(&self) -> u32 {
        self.state.ports.len() as u32
    }

    /// The port of `locality`.
    ///
    /// # Panics
    /// Panics if `locality` is out of range.
    pub fn port(&self, locality: u32) -> SimPort {
        assert!(
            (locality as usize) < self.state.ports.len(),
            "locality {locality} out of range"
        );
        SimPort {
            state: Arc::clone(&self.state),
            shared: Arc::clone(&self.state.ports[locality as usize]),
        }
    }
}

impl Transport for SimTransport {
    fn localities(&self) -> u32 {
        SimTransport::localities(self)
    }

    fn port(&self, locality: u32) -> Arc<dyn TransportPort> {
        Arc::new(SimTransport::port(self, locality))
    }
}

/// A locality's endpoint on the simulated fabric.
#[derive(Clone)]
pub struct SimPort {
    state: Arc<FabricState>,
    shared: Arc<PortShared>,
}

/// How many messages one pump call processes before yielding, bounding
/// the latency a single background poll can add to its worker.
const PUMP_BATCH: usize = 8;

impl SimPort {
    /// This port's locality id.
    pub fn locality(&self) -> u32 {
        self.shared.locality
    }

    /// Traffic statistics.
    pub fn stats(&self) -> &PortStats {
        &self.shared.stats
    }

    /// Install the handler invoked (from pump threads) for every delivered
    /// message.
    pub fn set_receiver(&self, handler: ReceiveHandler) {
        *self.shared.receiver.write() = Some(handler);
    }

    /// Install a wake-up hook called whenever traffic lands on this port's
    /// queues (the runtime points this at `Scheduler::notify`).
    pub fn set_notify(&self, notify: NotifyFn) {
        *self.shared.notify.write() = Some(notify);
    }

    /// Install (or clear) a failure-injection plan for this port's
    /// outbound messages. Testing hook: drops/corruption happen after the
    /// send cost has been paid, like a wire fault.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.shared.faults.write() = plan;
    }

    /// Enqueue a message for transmission.
    ///
    /// Cheap: the real send cost is paid later by `pump_send`.
    ///
    /// # Panics
    /// Panics if `message.dst` is out of range or `message.src` does not
    /// match this port.
    pub fn send(&self, message: Message) {
        assert_eq!(message.src, self.shared.locality, "src must be this port");
        assert!(
            (message.dst as usize) < self.state.ports.len(),
            "destination {} out of range",
            message.dst
        );
        self.shared.stats.enqueued.fetch_add(1, Ordering::Relaxed);
        self.shared
            .outbound_tx
            .send(message)
            .expect("outbound channel lives as long as the fabric");
        self.shared.notify();
    }

    /// Put `message` in flight towards its destination after the modelled
    /// delivery delay plus `extra_delay`. Send-side statistics are the
    /// caller's business (reorder-released messages were already
    /// counted).
    fn forward(&self, message: Message, extra_delay: Duration) {
        let dst = Arc::clone(&self.state.ports[message.dst as usize]);
        // Store-and-forward: a message is deliverable only after its
        // last byte has crossed the wire, so delivery lags by the
        // transfer time (and any rendezvous handshake) in addition to
        // propagation latency. This is the physical cost of lumping
        // many parcels into one large message — the first parcel in
        // the batch cannot execute until the whole batch has arrived.
        let deliver_at =
            Instant::now() + self.state.model.delivery_delay(message.len()) + extra_delay;
        let seq = dst.seq.fetch_add(1, Ordering::Relaxed);
        {
            let mut heap = dst.inflight.lock();
            heap.push(Reverse(InFlight {
                deliver_at,
                seq,
                message,
            }));
            // Refresh the lock-free deadline hint from the heap head
            // while still holding the lock, so the hint always equals
            // the true earliest deadline.
            let head = heap.peek().expect("just pushed").0.deliver_at;
            dst.next_due
                .store(self.state.epoch_ns(head), Ordering::Release);
        }
        dst.notify();
    }

    /// Pump outbound messages: pay the sender CPU cost and move messages
    /// into the destination's in-flight heap. Returns `true` if any
    /// message was processed.
    pub fn pump_send(&self) -> bool {
        let mut did_work = false;
        // Release reorder-parked messages that are due (enough later
        // traffic overtook them, or their hold deadline expired so a
        // quiet link cannot strand them). Their costs and statistics
        // were charged when they first passed through the loop below.
        let mut released = Vec::new();
        self.shared.reorder.lock().drain_ready(&mut released);
        for message in released {
            let _guard = ProcessingGuard::enter(&self.shared.processing);
            did_work = true;
            self.forward(message, Duration::ZERO);
        }
        for _ in 0..PUMP_BATCH {
            let Ok(message) = self.shared.outbound_rx.try_recv() else {
                break;
            };
            let _guard = ProcessingGuard::enter(&self.shared.processing);
            did_work = true;
            // The modelled per-message + per-byte cost, paid in real CPU
            // time on this (background-work) thread.
            busy_charge(self.state.model.send_cost(message.len()));
            self.shared
                .stats
                .sent_messages
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .sent_bytes
                .fetch_add(wire_len(&message) as u64, Ordering::Relaxed);
            // Failure injection (tests): the cost is already paid, the
            // wire then loses, mangles, duplicates, delays or reorders
            // the message.
            let plan = self.shared.faults.read().clone();
            let (action, delay, window) = match &plan {
                Some(p) => (p.decide(), p.delay, p.reorder_window.unwrap_or(1)),
                None => (FaultAction::Deliver, Duration::ZERO, 1),
            };
            if action != FaultAction::Reorder {
                // Everything that reaches the wire overtakes whatever is
                // parked for reordering (dropped messages count too —
                // they consumed a wire slot).
                self.shared.reorder.lock().on_pass();
            }
            match action {
                FaultAction::Drop => {
                    if message.class == DeliveryClass::BestEffort {
                        self.shared
                            .stats
                            .best_effort_dropped
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
                FaultAction::Corrupt => {
                    // Route the corruption through the shared frame codec:
                    // the flipped byte fails the destination's checksum,
                    // exactly as it would on the TCP backend, so the frame
                    // is counted as a receive-side decode failure and
                    // dropped.
                    let mut frame = encode_frame(&message);
                    corrupt_frame(&mut frame);
                    match decode_frame(&frame) {
                        Ok((survivor, _)) => self.forward(survivor, Duration::ZERO),
                        Err(_) => {
                            self.state.ports[message.dst as usize]
                                .stats
                                .decode_failures
                                .fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                }
                FaultAction::Duplicate => {
                    self.forward(message.clone(), Duration::ZERO);
                    self.forward(message, Duration::ZERO);
                }
                FaultAction::Delay => self.forward(message, delay),
                FaultAction::Reorder => self.shared.reorder.lock().hold(message, window),
                FaultAction::Deliver => self.forward(message, Duration::ZERO),
            }
        }
        did_work
    }

    /// Pump inbound messages that have cleared their latency: pay the
    /// receiver CPU cost and hand each to the receive handler. Returns
    /// `true` if any message was delivered.
    pub fn pump_recv(&self) -> bool {
        let handler = self.shared.receiver.read().clone();
        let Some(handler) = handler else {
            return false;
        };
        let mut did_work = false;
        for _ in 0..PUMP_BATCH {
            // Lock-free fast path: if the earliest deadline (maintained
            // under the heap lock) has not arrived, skip the lock. The
            // hint is exact, not approximate — every heap mutation
            // refreshes it before releasing the lock — so a stale read
            // can only race with a concurrent pump that will (or already
            // did) deliver the message itself.
            let hint = self.shared.next_due.load(Ordering::Acquire);
            if hint == NO_DEADLINE || hint > self.state.epoch_ns(Instant::now()) {
                break;
            }
            let (message, _guard) = {
                let mut heap = self.shared.inflight.lock();
                match heap.peek() {
                    Some(Reverse(head)) if head.deliver_at <= Instant::now() => {
                        // Take the processing guard while still holding the
                        // heap lock so the message is never unaccounted for.
                        let guard = ProcessingGuard::enter(&self.shared.processing);
                        let message = heap.pop().expect("peeked").0.message;
                        let next = heap.peek().map_or(NO_DEADLINE, |Reverse(head)| {
                            self.state.epoch_ns(head.deliver_at)
                        });
                        self.shared.next_due.store(next, Ordering::Release);
                        (message, guard)
                    }
                    _ => break,
                }
            };
            did_work = true;
            busy_charge(self.state.model.recv_cost());
            self.shared
                .stats
                .received_messages
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .received_bytes
                .fetch_add(wire_len(&message) as u64, Ordering::Relaxed);
            handler(message);
        }
        did_work
    }

    /// Convenience: one full pump pass (send then receive).
    pub fn pump(&self) -> bool {
        let s = self.pump_send();
        let r = self.pump_recv();
        s || r
    }

    /// Messages queued but not yet put on the wire (including any parked
    /// by reorder fault injection).
    pub fn outbound_backlog(&self) -> usize {
        self.shared.outbound_rx.len() + self.shared.reorder.lock().len()
    }

    /// Messages in flight towards this port (latency not yet elapsed or
    /// not yet pumped).
    pub fn inflight_backlog(&self) -> usize {
        self.shared.inflight.lock().len()
    }

    /// Messages currently mid-pump on this port (popped from a queue but
    /// not yet delivered to the next stage).
    pub fn processing(&self) -> usize {
        // Acquire pairs with the guard's Release decrement: a zero read
        // here happens-after the completed handoffs it reflects.
        self.shared.processing.load(Ordering::Acquire)
    }
}

impl TransportPort for SimPort {
    fn locality(&self) -> u32 {
        SimPort::locality(self)
    }
    fn stats(&self) -> &PortStats {
        SimPort::stats(self)
    }
    fn send(&self, message: Message) {
        SimPort::send(self, message)
    }
    fn pump_send(&self) -> bool {
        SimPort::pump_send(self)
    }
    fn pump_recv(&self) -> bool {
        SimPort::pump_recv(self)
    }
    fn set_receiver(&self, handler: ReceiveHandler) {
        SimPort::set_receiver(self, handler)
    }
    fn set_notify(&self, notify: NotifyFn) {
        SimPort::set_notify(self, notify)
    }
    fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        SimPort::set_fault_plan(self, plan)
    }
    fn outbound_backlog(&self) -> usize {
        SimPort::outbound_backlog(self)
    }
    fn inflight_backlog(&self) -> usize {
        SimPort::inflight_backlog(self)
    }
    fn processing(&self) -> usize {
        SimPort::processing(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame_len;
    use crate::message::MessageKind;
    use bytes::Bytes;

    fn msg(src: u32, dst: u32, payload: &'static [u8]) -> Message {
        Message::new(src, dst, MessageKind::Parcel, Bytes::from_static(payload))
    }

    fn pump_until<F: Fn() -> bool>(ports: &[SimPort], done: F, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !done() {
            for p in ports {
                p.pump();
            }
            if Instant::now() > deadline {
                return false;
            }
        }
        true
    }

    #[test]
    fn message_travels_between_ports() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        a.send(msg(0, 1, b"hello"));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || !got.lock().is_empty(),
            Duration::from_secs(2)
        ));
        assert_eq!(got.lock()[0].as_ref(), b"hello");
        assert_eq!(a.stats().sent_messages.load(Ordering::Relaxed), 1);
        assert_eq!(b.stats().received_messages.load(Ordering::Relaxed), 1);
        // Byte counters measure bytes on the wire: frame header + payload.
        assert_eq!(
            b.stats().received_bytes.load(Ordering::Relaxed),
            frame_len(5) as u64
        );
        assert_eq!(
            a.stats().sent_bytes.load(Ordering::Relaxed),
            frame_len(5) as u64
        );
    }

    #[test]
    fn send_to_self_is_allowed() {
        let fabric = Fabric::new(1, LinkModel::zero());
        let a = fabric.port(0);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        a.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.send(msg(0, 0, b"self"));
        assert!(pump_until(
            std::slice::from_ref(&a),
            || hits.load(Ordering::SeqCst) == 1,
            Duration::from_secs(2)
        ));
    }

    #[test]
    fn latency_delays_delivery() {
        let model = LinkModel {
            latency: Duration::from_millis(20),
            ..LinkModel::zero()
        };
        let fabric = Fabric::new(2, model);
        let a = fabric.port(0);
        let b = fabric.port(1);
        let got = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |_| {
            g.fetch_add(1, Ordering::SeqCst);
        }));
        let t0 = Instant::now();
        a.send(msg(0, 1, b"x"));
        a.pump_send();
        // Immediately pumping the receiver delivers nothing.
        assert!(!b.pump_recv());
        assert_eq!(b.inflight_backlog(), 1);
        assert!(pump_until(
            std::slice::from_ref(&b),
            || got.load(Ordering::SeqCst) == 1,
            Duration::from_secs(2)
        ));
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn send_cost_is_charged_to_pumping_thread() {
        let model = LinkModel {
            send_overhead: Duration::from_micros(500),
            ..LinkModel::zero()
        };
        let fabric = Fabric::new(2, model);
        let a = fabric.port(0);
        fabric.port(1).set_receiver(Arc::new(|_| {}));
        a.send(msg(0, 1, b"x"));
        let t0 = Instant::now();
        a.pump_send();
        assert!(t0.elapsed() >= Duration::from_micros(500));
    }

    #[test]
    fn fifo_order_preserved_per_link() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload[0])));
        for i in 0..50u8 {
            a.send(Message::new(
                0,
                1,
                MessageKind::Parcel,
                Bytes::copy_from_slice(&[i]),
            ));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 50,
            Duration::from_secs(2)
        ));
        let got = got.lock();
        assert_eq!(*got, (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn notify_hook_fires_on_send_and_delivery() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        let notified = Arc::new(AtomicU64::new(0));
        let n = Arc::clone(&notified);
        a.set_notify(Arc::new(move || {
            n.fetch_add(1, Ordering::SeqCst);
        }));
        let n = Arc::clone(&notified);
        b.set_notify(Arc::new(move || {
            n.fetch_add(1, Ordering::SeqCst);
        }));
        b.set_receiver(Arc::new(|_| {}));
        a.send(msg(0, 1, b"x")); // notifies a (outbound)
        a.pump_send(); // notifies b (inflight)
        assert!(notified.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn backlog_counters() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        b.set_receiver(Arc::new(|_| {}));
        a.send(msg(0, 1, b"1"));
        a.send(msg(0, 1, b"2"));
        assert_eq!(a.outbound_backlog(), 2);
        a.pump_send();
        assert_eq!(a.outbound_backlog(), 0);
        assert_eq!(b.inflight_backlog(), 2);
        b.pump_recv();
        assert_eq!(b.inflight_backlog(), 0);
    }

    #[test]
    fn without_receiver_messages_wait() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        a.send(msg(0, 1, b"x"));
        a.pump_send();
        assert!(!b.pump_recv()); // no handler yet: nothing delivered
        assert_eq!(b.inflight_backlog(), 1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(b.pump_recv());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn corrupted_messages_fail_decode_and_are_dropped() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::corrupt_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"payload"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 5,
            Duration::from_secs(2)
        ));
        // Every corrupted frame failed the receive-side checksum.
        assert_eq!(b.stats().decode_failures.load(Ordering::SeqCst), 5);
        assert_eq!(b.stats().received_messages.load(Ordering::SeqCst), 5);
        // Send-side costs were still paid for all ten.
        assert_eq!(a.stats().sent_messages.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_pumping_delivers_everything_once() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        let count = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&count);
        b.set_receiver(Arc::new(move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        }));
        let n = 2000u64;
        for _ in 0..n {
            a.send(msg(0, 1, b"x"));
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let a = a.clone();
                let b = b.clone();
                let count = Arc::clone(&count);
                s.spawn(move || {
                    let deadline = Instant::now() + Duration::from_secs(10);
                    while count.load(Ordering::SeqCst) < n && Instant::now() < deadline {
                        a.pump_send();
                        b.pump_recv();
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), n);
        assert_eq!(b.stats().received_messages.load(Ordering::SeqCst), n);
    }

    #[test]
    fn duplicated_messages_arrive_twice() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::duplicate_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"dup"));
        }
        // 10 sends, every 2nd duplicated: 15 deliveries.
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 15,
            Duration::from_secs(2)
        ));
        assert_eq!(a.stats().sent_messages.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn delayed_messages_arrive_late_but_arrive() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::delay_every(
            1,
            Duration::from_millis(20),
        ))));
        let t0 = Instant::now();
        a.send(msg(0, 1, b"late"));
        a.pump_send();
        assert!(!b.pump_recv());
        assert!(pump_until(
            std::slice::from_ref(&b),
            || hits.load(Ordering::SeqCst) == 1,
            Duration::from_secs(2)
        ));
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn reordered_messages_all_arrive_out_of_order() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload[0])));
        a.set_fault_plan(Some(Arc::new(FaultPlan::reorder_window(4))));
        for i in 0..16u8 {
            a.send(Message::new(
                0,
                1,
                MessageKind::Parcel,
                Bytes::copy_from_slice(&[i]),
            ));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 16,
            Duration::from_secs(2)
        ));
        assert_eq!(a.outbound_backlog(), 0, "stage fully drained");
        let mut seen = got.lock().clone();
        let in_order = seen.windows(2).all(|w| w[0] < w[1]);
        assert!(!in_order, "every 4th message should have been displaced");
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<u8>>(), "nothing lost");
    }

    #[test]
    fn best_effort_wire_drops_are_accounted() {
        let fabric = Fabric::new(2, LinkModel::zero());
        let a = fabric.port(0);
        let b = fabric.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::drop_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"be").with_class(DeliveryClass::BestEffort));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 5,
            Duration::from_secs(2)
        ));
        // received + best_effort_dropped == sent.
        assert_eq!(a.stats().best_effort_dropped.load(Ordering::SeqCst), 5);
        assert_eq!(a.stats().sent_messages.load(Ordering::SeqCst), 10);

        // Lossless drops are NOT counted against the BestEffort gauge.
        for _ in 0..4 {
            a.send(msg(0, 1, b"ll"));
        }
        while a.pump_send() {}
        assert_eq!(a.stats().best_effort_dropped.load(Ordering::SeqCst), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_panics() {
        let fabric = Fabric::new(2, LinkModel::zero());
        fabric.port(0).send(msg(0, 7, b"x"));
    }

    #[test]
    #[should_panic(expected = "src must be this port")]
    fn wrong_src_panics() {
        let fabric = Fabric::new(2, LinkModel::zero());
        fabric.port(0).send(msg(1, 0, b"x"));
    }
}
