//! Shared-memory segments for same-host localities.
//!
//! Each `(lo, hi)` pair of co-located ranks shares one segment holding a
//! small header and two SPSC byte rings (`lo→hi` then `hi→lo`); the ring
//! protocol itself lives in `rpx_util::sync` and runs identically over a
//! heap allocation (ranks hosted by one process) or an `mmap`ed file on
//! `/dev/shm` (one process per rank):
//!
//! ```text
//! [SegHdr 128 B][RingHdr 192 B][lo→hi data][RingHdr 192 B][hi→lo data]
//! ```
//!
//! ## Creation race
//!
//! Either side may create the backing file first (`create_new` decides
//! the winner); the creator sizes and zero-fills it, stamps the header,
//! and publishes `state = READY` last. The loser opens the existing
//! file, waits for it to reach full size, maps it, and spins for
//! `READY` — so a half-initialised segment is never used. A zeroed ring
//! header *is* a valid empty ring, so no ring-level init is needed.
//!
//! ## Cleanup
//!
//! Segment files must not outlive the cluster, including when a rank is
//! `kill -9`ed. Three lines of defence:
//!
//! 1. **Unlink-when-both-attached**: each side sets its `attached` flag
//!    after mapping; the first pump that observes both flags unlinks the
//!    file (the mapping stays alive until both sides unmap — classic
//!    unlink-while-open). From that point, no crash can leak the entry.
//! 2. **Unlink-on-drop**: a transport tearing down unlinks every
//!    segment it created or attached (`ENOENT` is fine; the `unlinked`
//!    header flag keeps it idempotent).
//! 3. **Launcher sweep**: `repro launch` removes stragglers matching
//!    its `RPX_SHM_PREFIX` after reaping workers — covering the narrow
//!    window where a rank died after creating but before its peer
//!    attached.
//!
//! Doorbells (the "data is waiting" wakeup) are *not* stored in the
//! segment: they are `rpx_util::poll::Doorbell`s — an eventfd for
//! same-process producers plus an abstract-namespace datagram socket
//! any co-located process can ring by name, both multiplexed into the
//! same pump-pool poller as the TCP sockets.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rpx_util::sync::{SpscConsumer, SpscProducer, RING_HDR_BYTES};

use crate::tcp::TcpTuning;

/// Magic stamped into every segment header (`"rpxshm\0\1"`).
pub const SHM_MAGIC: u64 = u64::from_le_bytes(*b"rpxshm\x00\x01");
/// Version of the segment layout.
pub const SHM_SEG_VERSION: u32 = 1;

/// Bytes reserved for [`SegHdr`] at the start of a segment.
const SEG_HDR_BYTES: usize = 128;

const STATE_READY: u32 = 2;

/// How long the non-creating side waits for the creator to publish
/// `READY` before giving up (and falling back to TCP).
const ATTACH_TIMEOUT: Duration = Duration::from_secs(5);

/// Tuning for the shared-memory transport: the TCP knobs (the fallback
/// path and the pump pool are shared) plus the per-direction ring size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmTuning {
    /// Tuning for the pump pool and the TCP fallback links.
    pub tcp: TcpTuning,
    /// Data bytes per ring direction. Frames whose wire size exceeds
    /// half of this ride the TCP fallback instead (a ring must fit a
    /// record with wrap padding to spare).
    pub ring_bytes: usize,
}

impl Default for ShmTuning {
    fn default() -> Self {
        ShmTuning {
            tcp: TcpTuning::default(),
            ring_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Cross-process segment header (cache-line padded to [`SEG_HDR_BYTES`]).
#[repr(C)]
struct SegHdr {
    magic: AtomicU64,
    version: AtomicU32,
    /// 0 = fresh zero page, [`STATE_READY`] once initialised.
    state: AtomicU32,
    ring_bytes: AtomicU64,
    /// One flag per side (0 = lo rank, 1 = hi rank), set after mapping.
    attached: [AtomicU32; 2],
    /// Set (CAS) by whoever unlinks the backing file.
    unlinked: AtomicU32,
    /// Frames currently inside each ring (pushed, not yet delivered to
    /// the consumer's inbound queue), indexed by ring (0 = `lo→hi`).
    /// Living in the *shared* header, the gauge is visible to both
    /// processes — the receiving side's quiescence check can see frames
    /// a co-located sender parked in the ring, which a process-local
    /// gauge cannot.
    inflight: [AtomicU64; 2],
}

const _: () = assert!(std::mem::size_of::<SegHdr>() <= SEG_HDR_BYTES);

/// Total file size of a segment with `ring_bytes` data bytes per ring.
fn segment_len(ring_bytes: usize) -> usize {
    SEG_HDR_BYTES + 2 * (RING_HDR_BYTES + ring_bytes)
}

enum Backing {
    Heap {
        layout: std::alloc::Layout,
    },
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    Mapped {
        len: usize,
        path: PathBuf,
    },
}

/// One mapped (or heap-allocated) pair segment. Create at most one
/// producer and one consumer per ring through [`ShmSegment::rings`] /
/// [`ShmSegment::self_rings`].
pub struct ShmSegment {
    base: *mut u8,
    ring_bytes: usize,
    backing: Backing,
}

impl std::fmt::Debug for ShmSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.backing {
            Backing::Heap { .. } => "heap",
            Backing::Mapped { .. } => "mapped",
        };
        f.debug_struct("ShmSegment")
            .field("ring_bytes", &self.ring_bytes)
            .field("backing", &kind)
            .finish()
    }
}

// SAFETY: the raw base pointer targets memory shared through atomics
// (headers) and the SPSC ownership discipline (ring data); the struct
// itself is only handed out behind `Arc`.
unsafe impl Send for ShmSegment {}
unsafe impl Sync for ShmSegment {}

impl ShmSegment {
    /// A process-local segment (both ranks hosted by this process): no
    /// file, no attach protocol, nothing to leak.
    pub fn heap(ring_bytes: usize) -> Arc<ShmSegment> {
        let len = segment_len(ring_bytes);
        let layout = std::alloc::Layout::from_size_align(len, 64).expect("segment layout");
        // SAFETY: non-zero layout; zeroing makes the header and both
        // ring headers valid-empty.
        let base = unsafe { std::alloc::alloc_zeroed(layout) };
        assert!(!base.is_null(), "segment allocation failed");
        let seg = ShmSegment {
            base,
            ring_bytes,
            backing: Backing::Heap { layout },
        };
        seg.hdr()
            .ring_bytes
            .store(ring_bytes as u64, Ordering::Relaxed);
        seg.hdr().version.store(SHM_SEG_VERSION, Ordering::Relaxed);
        seg.hdr().magic.store(SHM_MAGIC, Ordering::Relaxed);
        seg.hdr().state.store(STATE_READY, Ordering::Release);
        Arc::new(seg)
    }

    /// Open (or create) the cross-process segment file at `path`,
    /// mapping it shared. `side` is 0 for the lower rank of the pair,
    /// 1 for the higher; the side's `attached` flag is set before
    /// returning. Linux only; other targets report `Unsupported` and
    /// the caller falls back to TCP.
    pub fn open_or_create(
        path: &Path,
        ring_bytes: usize,
        side: usize,
    ) -> io::Result<Arc<ShmSegment>> {
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (path, ring_bytes, side);
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "cross-process shm segments need Linux",
            ))
        }
        #[cfg(target_os = "linux")]
        {
            let len = segment_len(ring_bytes);
            let created: Option<std::fs::File> = match std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(path)
            {
                Ok(file) => {
                    file.set_len(len as u64)?;
                    Some(file)
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => None,
                Err(e) => return Err(e),
            };
            let creator = created.is_some();
            let file = match created {
                Some(f) => f,
                None => {
                    // The creator may still be sizing the file; wait for
                    // it to reach full length before mapping.
                    let deadline = Instant::now() + ATTACH_TIMEOUT;
                    loop {
                        let file = std::fs::OpenOptions::new()
                            .read(true)
                            .write(true)
                            .open(path)?;
                        let have = file.metadata()?.len() as usize;
                        if have == len {
                            break file;
                        }
                        // The creator sizes the file in one `set_len`
                        // call, so a nonzero-but-wrong length is a
                        // geometry mismatch, not a race.
                        if have != 0 {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "segment file has unexpected size",
                            ));
                        }
                        if Instant::now() >= deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "segment file never reached full size",
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            };
            let base = linux_mmap(&file, len)?;
            let seg = ShmSegment {
                base,
                ring_bytes,
                backing: Backing::Mapped {
                    len,
                    path: path.to_path_buf(),
                },
            };
            if creator {
                seg.hdr().magic.store(SHM_MAGIC, Ordering::Relaxed);
                seg.hdr().version.store(SHM_SEG_VERSION, Ordering::Relaxed);
                seg.hdr()
                    .ring_bytes
                    .store(ring_bytes as u64, Ordering::Relaxed);
                seg.hdr().state.store(STATE_READY, Ordering::Release);
            } else {
                let deadline = Instant::now() + ATTACH_TIMEOUT;
                while seg.hdr().state.load(Ordering::Acquire) != STATE_READY {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "segment never became ready",
                        ));
                    }
                    std::hint::spin_loop();
                }
                if seg.hdr().magic.load(Ordering::Relaxed) != SHM_MAGIC
                    || seg.hdr().version.load(Ordering::Relaxed) != SHM_SEG_VERSION
                    || seg.hdr().ring_bytes.load(Ordering::Relaxed) != ring_bytes as u64
                {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "segment header mismatch (stale or foreign file)",
                    ));
                }
            }
            seg.hdr().attached[side].store(1, Ordering::SeqCst);
            Ok(Arc::new(seg))
        }
    }

    fn hdr(&self) -> &SegHdr {
        // SAFETY: the first SEG_HDR_BYTES of the segment hold a zeroed
        // (= valid) SegHdr for the lifetime of `self`.
        unsafe { &*(self.base as *const SegHdr) }
    }

    /// Data bytes per ring direction.
    pub fn ring_bytes(&self) -> usize {
        self.ring_bytes
    }

    /// Account `n` frames entering ring `ring` (0 = `lo→hi`). Producers
    /// bump this *before* publishing the push so the gauge never
    /// undercounts a frame that is already visible to the consumer.
    pub fn add_inflight(&self, ring: usize, n: u64) {
        self.hdr().inflight[ring].fetch_add(n, Ordering::SeqCst);
    }

    /// Account `n` frames leaving ring `ring` (after they are published
    /// to the consumer's inbound queue). Saturates at zero.
    pub fn sub_inflight(&self, ring: usize, n: u64) {
        let _ = self.hdr().inflight[ring].fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
            Some(v.saturating_sub(n))
        });
    }

    /// Frames currently inside ring `ring`.
    pub fn inflight(&self, ring: usize) -> u64 {
        self.hdr().inflight[ring].load(Ordering::SeqCst)
    }

    /// Unlink the backing file once both sides have attached (idempotent
    /// and racy-safe via the header's `unlinked` CAS). Returns `true`
    /// if this call did the unlink. Heap segments always return `false`.
    pub fn maybe_unlink_when_attached(&self) -> bool {
        let Backing::Mapped { path, .. } = &self.backing else {
            return false;
        };
        let hdr = self.hdr();
        if hdr.attached[0].load(Ordering::SeqCst) == 0
            || hdr.attached[1].load(Ordering::SeqCst) == 0
        {
            return false;
        }
        if hdr
            .unlinked
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        let _ = std::fs::remove_file(path);
        true
    }

    /// Force-unlink the backing file (teardown path). Idempotent.
    pub fn unlink_now(&self) {
        if let Backing::Mapped { path, .. } = &self.backing {
            if self
                .hdr()
                .unlinked
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    /// The two rings of the pair as seen from `side` (0 = lo rank):
    /// `(tx, rx)` where `tx` carries our frames to the peer. Call once
    /// per side per segment.
    ///
    /// # Safety
    /// At most one producer and one consumer may ever be created per
    /// ring across *all* processes mapping this segment; the caller is
    /// the sole `side` occupant.
    pub unsafe fn rings(self: &Arc<Self>, side: usize) -> (SpscProducer, SpscConsumer) {
        assert!(side < 2);
        let mem: rpx_util::sync::RingMemory = Arc::new(Arc::clone(self));
        let a = self.base.add(SEG_HDR_BYTES);
        let b = a.add(RING_HDR_BYTES + self.ring_bytes);
        let (tx_base, rx_base) = if side == 0 { (a, b) } else { (b, a) };
        (
            SpscProducer::from_raw(tx_base, self.ring_bytes, Some(Arc::clone(&mem))),
            SpscConsumer::from_raw(rx_base, self.ring_bytes, Some(mem)),
        )
    }

    /// Producer and consumer over the *same* (first) ring, for a rank
    /// sending to itself.
    ///
    /// # Safety
    /// As [`ShmSegment::rings`]: one producer, one consumer, ever.
    pub unsafe fn self_rings(self: &Arc<Self>) -> (SpscProducer, SpscConsumer) {
        let mem: rpx_util::sync::RingMemory = Arc::new(Arc::clone(self));
        let a = self.base.add(SEG_HDR_BYTES);
        (
            SpscProducer::from_raw(a, self.ring_bytes, Some(Arc::clone(&mem))),
            SpscConsumer::from_raw(a, self.ring_bytes, Some(mem)),
        )
    }
}

impl Drop for ShmSegment {
    fn drop(&mut self) {
        match &self.backing {
            Backing::Heap { layout } => {
                // SAFETY: allocated with exactly this layout in `heap`.
                unsafe { std::alloc::dealloc(self.base, *layout) };
            }
            #[cfg(target_os = "linux")]
            Backing::Mapped { len, path } => {
                if self
                    .hdr()
                    .unlinked
                    .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    let _ = std::fs::remove_file(path);
                }
                // SAFETY: `base` is a live mapping of exactly `len`
                // bytes owned by this segment.
                unsafe { linux_munmap(self.base, *len) };
            }
            #[cfg(not(target_os = "linux"))]
            Backing::Mapped { .. } => unreachable!("mapped segments are Linux-only"),
        }
    }
}

#[cfg(target_os = "linux")]
fn linux_mmap(file: &std::fs::File, len: usize) -> io::Result<*mut u8> {
    use std::os::fd::AsRawFd;
    const PROT_READ: i32 = 0x1;
    const PROT_WRITE: i32 = 0x2;
    const MAP_SHARED: i32 = 0x01;
    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    }
    // SAFETY: plain syscall; a fresh shared mapping of an open file.
    let base = unsafe {
        mmap(
            std::ptr::null_mut(),
            len,
            PROT_READ | PROT_WRITE,
            MAP_SHARED,
            file.as_raw_fd(),
            0,
        )
    };
    if base as isize == -1 {
        return Err(io::Error::last_os_error());
    }
    Ok(base)
}

/// # Safety
/// `base` must be a live mapping of exactly `len` bytes, not used after.
#[cfg(target_os = "linux")]
unsafe fn linux_munmap(base: *mut u8, len: usize) {
    extern "C" {
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }
    munmap(base, len);
}

/// The shm namespace of one cluster: every segment file and doorbell
/// name is derived from this prefix, so concurrent clusters on a host
/// never collide and a launcher can sweep its own leftovers.
///
/// The default prefix folds in the data port of rank 0 (unique per live
/// cluster on a host); `RPX_SHM_PREFIX` overrides it (the launcher sets
/// this so it knows what to sweep).
#[derive(Debug, Clone)]
pub struct ShmNamespace {
    prefix: String,
}

impl ShmNamespace {
    /// Derive the namespace from the environment or the cluster's
    /// rank-0 data port.
    pub fn from_env_or(port0: u16) -> ShmNamespace {
        let prefix = std::env::var("RPX_SHM_PREFIX")
            .ok()
            .filter(|p| !p.is_empty() && p.len() <= 64 && !p.contains('/'))
            .unwrap_or_else(|| format!("rpx-{port0}"));
        ShmNamespace { prefix }
    }

    /// A namespace with an explicit prefix (tests, launcher).
    pub fn with_prefix(prefix: &str) -> ShmNamespace {
        ShmNamespace {
            prefix: prefix.to_string(),
        }
    }

    /// The directory segment files live in (`/dev/shm` when present —
    /// i.e. Linux — else the system temp dir).
    pub fn segment_dir() -> PathBuf {
        let shm = PathBuf::from("/dev/shm");
        if shm.is_dir() {
            shm
        } else {
            std::env::temp_dir()
        }
    }

    /// Path of the pair segment for ranks `lo ≤ hi` (ports make the
    /// name unique even if two clusters share a prefix).
    pub fn segment_path(&self, lo: u32, hi: u32, port_lo: u16, port_hi: u16) -> PathBuf {
        Self::segment_dir().join(format!("{}.seg-{lo}.{port_lo}-{hi}.{port_hi}", self.prefix))
    }

    /// Doorbell name for `rank` (whose data port is `port`).
    pub fn bell_name(&self, rank: u32, port: u16) -> String {
        format!("{}.bell-{rank}.{port}", self.prefix)
    }

    /// Remove every segment file under `prefix` (the launcher's sweep
    /// after reaping workers). Returns how many entries were removed.
    pub fn sweep(prefix: &str) -> usize {
        let mut removed = 0;
        let Ok(entries) = std::fs::read_dir(Self::segment_dir()) else {
            return 0;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(prefix)
                && name.contains(".seg-")
                && std::fs::remove_file(entry.path()).is_ok()
            {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_segment_rings_roundtrip() {
        let seg = ShmSegment::heap(4096);
        // SAFETY: sole occupants of both sides of a fresh segment.
        let (mut lo_tx, mut lo_rx) = unsafe { seg.rings(0) };
        let (mut hi_tx, mut hi_rx) = unsafe { seg.rings(1) };
        assert!(matches!(
            lo_tx.try_push(b"down"),
            rpx_util::sync::RingPush::Stored { .. }
        ));
        assert!(matches!(
            hi_tx.try_push(b"up"),
            rpx_util::sync::RingPush::Stored { .. }
        ));
        let mut got = Vec::new();
        hi_rx.pop_each(8, |r| got.push(r.to_vec()));
        lo_rx.pop_each(8, |r| got.push(r.to_vec()));
        assert_eq!(got, vec![b"down".to_vec(), b"up".to_vec()]);
        assert!(!seg.maybe_unlink_when_attached(), "heap: nothing to unlink");
    }

    #[test]
    fn self_rings_loop_back() {
        let seg = ShmSegment::heap(1024);
        // SAFETY: sole occupant of the self ring.
        let (mut tx, mut rx) = unsafe { seg.self_rings() };
        tx.try_push(b"me");
        let mut got = Vec::new();
        rx.pop_each(1, |r| got = r.to_vec());
        assert_eq!(got, b"me");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mapped_segment_create_open_and_unlink_protocol() {
        let ns = ShmNamespace::with_prefix("rpx-shmtest-a");
        let path = ns.segment_path(0, 1, 4000, 4001);
        let _ = std::fs::remove_file(&path);
        let creator = ShmSegment::open_or_create(&path, 8192, 0).unwrap();
        assert!(path.exists(), "creator made the file");
        // Not unlinked yet: the peer has not attached.
        assert!(!creator.maybe_unlink_when_attached());
        let joiner = ShmSegment::open_or_create(&path, 8192, 1).unwrap();
        // Both attached now — either side's pump may unlink; exactly one
        // call wins.
        let a = creator.maybe_unlink_when_attached();
        let b = joiner.maybe_unlink_when_attached();
        assert!(a ^ b, "exactly one unlink");
        assert!(!path.exists(), "file gone while mappings live");
        // The shared memory still works across the two mappings.
        // SAFETY: each side claims its own half exactly once.
        let (mut tx, _rx) = unsafe { creator.rings(0) };
        let (_tx2, mut rx2) = unsafe { joiner.rings(1) };
        tx.try_push(b"post-unlink");
        let mut got = Vec::new();
        rx2.pop_each(1, |r| got = r.to_vec());
        assert_eq!(got, b"post-unlink");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mapped_segment_size_mismatch_is_detected() {
        let ns = ShmNamespace::with_prefix("rpx-shmtest-b");
        let path = ns.segment_path(0, 1, 4100, 4101);
        let _ = std::fs::remove_file(&path);
        let _creator = ShmSegment::open_or_create(&path, 8192, 0).unwrap();
        // A joiner expecting a different geometry must not attach.
        let err = ShmSegment::open_or_create(&path, 16384, 1).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::InvalidData
            ),
            "got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sweep_removes_only_our_prefix() {
        let ns = ShmNamespace::with_prefix("rpx-shmtest-sweep");
        let other = ShmNamespace::with_prefix("rpx-shmtest-keep");
        let p1 = ns.segment_path(0, 1, 4200, 4201);
        let p2 = other.segment_path(0, 1, 4300, 4301);
        std::fs::write(&p1, b"x").unwrap();
        std::fs::write(&p2, b"x").unwrap();
        let removed = ShmNamespace::sweep("rpx-shmtest-sweep");
        assert_eq!(removed, 1);
        assert!(!p1.exists());
        assert!(p2.exists());
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn namespace_names_are_stable_and_distinct() {
        let ns = ShmNamespace::with_prefix("pfx");
        assert_ne!(ns.segment_path(0, 1, 10, 11), ns.segment_path(0, 2, 10, 12));
        assert_ne!(ns.bell_name(0, 10), ns.bell_name(1, 11));
    }
}
