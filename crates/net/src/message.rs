//! Network messages.

use bytes::Bytes;

/// What a message's payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageKind {
    /// A single encoded parcel.
    Parcel = 0,
    /// A coalesced batch of parcels (count-prefixed).
    Coalesced = 1,
    /// Runtime-internal control traffic.
    Control = 2,
}

impl TryFrom<u8> for MessageKind {
    type Error = u8;
    fn try_from(v: u8) -> Result<Self, u8> {
        match v {
            0 => Ok(MessageKind::Parcel),
            1 => Ok(MessageKind::Coalesced),
            2 => Ok(MessageKind::Control),
            other => Err(other),
        }
    }
}

/// A framed message travelling between localities.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending locality.
    pub src: u32,
    /// Destination locality.
    pub dst: u32,
    /// Payload classification.
    pub kind: MessageKind,
    /// Encoded payload.
    pub payload: Bytes,
}

impl Message {
    /// Construct a message.
    pub fn new(src: u32, dst: u32, kind: MessageKind, payload: Bytes) -> Self {
        Message {
            src,
            dst,
            kind,
            payload,
        }
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_u8() {
        for k in [
            MessageKind::Parcel,
            MessageKind::Coalesced,
            MessageKind::Control,
        ] {
            assert_eq!(MessageKind::try_from(k as u8), Ok(k));
        }
        assert_eq!(MessageKind::try_from(99), Err(99));
    }

    #[test]
    fn message_accessors() {
        let m = Message::new(0, 1, MessageKind::Parcel, Bytes::from_static(b"abc"));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.src, 0);
        assert_eq!(m.dst, 1);
    }
}
