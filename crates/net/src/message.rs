//! Network messages.

use bytes::Bytes;

/// What a message's payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageKind {
    /// A single encoded parcel.
    Parcel = 0,
    /// A coalesced batch of parcels (count-prefixed).
    Coalesced = 1,
    /// Runtime-internal control traffic.
    Control = 2,
    /// A reliability acknowledgement (cumulative ack + SACK bitmap, see
    /// [`crate::reliability`]). Acks are never sequenced, never acked and
    /// never retransmitted themselves.
    Ack = 3,
}

impl TryFrom<u8> for MessageKind {
    type Error = u8;
    fn try_from(v: u8) -> Result<Self, u8> {
        match v {
            0 => Ok(MessageKind::Parcel),
            1 => Ok(MessageKind::Coalesced),
            2 => Ok(MessageKind::Control),
            3 => Ok(MessageKind::Ack),
            other => Err(other),
        }
    }
}

/// A framed message travelling between localities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending locality.
    pub src: u32,
    /// Destination locality.
    pub dst: u32,
    /// Payload classification.
    pub kind: MessageKind,
    /// Per-`(src, dst)` monotonic delivery sequence number, stamped by the
    /// reliability sublayer ([`crate::reliability::ReliablePort`]).
    /// `None` for unsequenced traffic (the raw transports never set it);
    /// sequenced messages travel as versioned frames carrying the seq on
    /// the wire.
    pub seq: Option<u64>,
    /// Encoded payload.
    pub payload: Bytes,
}

impl Message {
    /// Construct an unsequenced message.
    pub fn new(src: u32, dst: u32, kind: MessageKind, payload: Bytes) -> Self {
        Message {
            src,
            dst,
            kind,
            seq: None,
            payload,
        }
    }

    /// This message with a delivery sequence number stamped on it.
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = Some(seq);
        self
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_u8() {
        for k in [
            MessageKind::Parcel,
            MessageKind::Coalesced,
            MessageKind::Control,
            MessageKind::Ack,
        ] {
            assert_eq!(MessageKind::try_from(k as u8), Ok(k));
        }
        assert_eq!(MessageKind::try_from(99), Err(99));
    }

    #[test]
    fn message_accessors() {
        let m = Message::new(0, 1, MessageKind::Parcel, Bytes::from_static(b"abc"));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.src, 0);
        assert_eq!(m.dst, 1);
        assert_eq!(m.seq, None);
        assert_eq!(m.with_seq(7).seq, Some(7));
    }
}
