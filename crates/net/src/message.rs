//! Network messages.

use bytes::Bytes;

/// What a message's payload contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageKind {
    /// A single encoded parcel.
    Parcel = 0,
    /// A coalesced batch of parcels (count-prefixed).
    Coalesced = 1,
    /// Runtime-internal control traffic.
    Control = 2,
    /// A reliability acknowledgement (cumulative ack + SACK bitmap, see
    /// [`crate::reliability`]). Acks are never sequenced, never acked and
    /// never retransmitted themselves.
    Ack = 3,
}

impl TryFrom<u8> for MessageKind {
    type Error = u8;
    fn try_from(v: u8) -> Result<Self, u8> {
        match v {
            0 => Ok(MessageKind::Parcel),
            1 => Ok(MessageKind::Coalesced),
            2 => Ok(MessageKind::Control),
            3 => Ok(MessageKind::Ack),
            other => Err(other),
        }
    }
}

/// Per-action delivery contract carried from registration to the wire.
///
/// The class travels in two spare bits of the frame kind byte
/// ([`crate::frame::CLASS_MASK`]), so every backend — simulated fabric,
/// TCP, shared-memory rings — sees the same contract:
///
/// * [`Lossless`](DeliveryClass::Lossless) rides the reliability
///   sublayer when it is enabled: sequenced, acked, retransmitted,
///   exactly-once. The default, and the only class that existed before
///   delivery classes.
/// * [`BestEffort`](DeliveryClass::BestEffort) skips sequencing and
///   acks entirely ([`crate::ReliablePort`] passes it straight through)
///   and may be dropped under egress pressure; drops are counted in
///   [`crate::PortStats::best_effort_dropped`], never retransmitted,
///   and never owed to quiescence the way unacked Lossless frames are.
/// * [`Coalesce`](DeliveryClass::Coalesce) marks newest-wins state
///   traffic: the parcel layer keeps a per-(destination, action)
///   mailbox that replaces, rather than appends, queued values. On the
///   wire it is delivered like Lossless (the final value must arrive),
///   but receivers may discard stale values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum DeliveryClass {
    /// Exactly-once delivery over the reliability sublayer (default).
    #[default]
    Lossless = 0,
    /// At-most-once: unsequenced, unacked, droppable under pressure.
    BestEffort = 1,
    /// Newest-wins state sync: mailbox-queued, stale values discardable.
    Coalesce = 2,
}

impl DeliveryClass {
    /// The class encoded into its kind-byte bit pattern (see
    /// [`crate::frame::CLASS_MASK`]).
    pub fn bits(self) -> u8 {
        (self as u8) << 5
    }

    /// Decode kind-byte class bits (the [`crate::frame::CLASS_MASK`]
    /// region, already masked). `None` for the one invalid pattern.
    pub fn from_bits(bits: u8) -> Option<Self> {
        match bits >> 5 {
            0 => Some(DeliveryClass::Lossless),
            1 => Some(DeliveryClass::BestEffort),
            2 => Some(DeliveryClass::Coalesce),
            _ => None,
        }
    }
}

/// A framed message travelling between localities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending locality.
    pub src: u32,
    /// Destination locality.
    pub dst: u32,
    /// Payload classification.
    pub kind: MessageKind,
    /// The delivery contract this message travels under (class bits in
    /// the frame kind byte; old frames decode as
    /// [`DeliveryClass::Lossless`]).
    pub class: DeliveryClass,
    /// Per-`(src, dst)` monotonic delivery sequence number, stamped by the
    /// reliability sublayer ([`crate::reliability::ReliablePort`]).
    /// `None` for unsequenced traffic (the raw transports never set it);
    /// sequenced messages travel as versioned frames carrying the seq on
    /// the wire.
    pub seq: Option<u64>,
    /// Encoded payload.
    pub payload: Bytes,
}

impl Message {
    /// Construct an unsequenced [`DeliveryClass::Lossless`] message.
    pub fn new(src: u32, dst: u32, kind: MessageKind, payload: Bytes) -> Self {
        Message {
            src,
            dst,
            kind,
            class: DeliveryClass::Lossless,
            seq: None,
            payload,
        }
    }

    /// This message with a delivery sequence number stamped on it.
    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = Some(seq);
        self
    }

    /// This message travelling under the given delivery class.
    pub fn with_class(mut self, class: DeliveryClass) -> Self {
        self.class = class;
        self
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_u8() {
        for k in [
            MessageKind::Parcel,
            MessageKind::Coalesced,
            MessageKind::Control,
            MessageKind::Ack,
        ] {
            assert_eq!(MessageKind::try_from(k as u8), Ok(k));
        }
        assert_eq!(MessageKind::try_from(99), Err(99));
    }

    #[test]
    fn message_accessors() {
        let m = Message::new(0, 1, MessageKind::Parcel, Bytes::from_static(b"abc"));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.src, 0);
        assert_eq!(m.dst, 1);
        assert_eq!(m.seq, None);
        assert_eq!(m.class, DeliveryClass::Lossless);
        assert_eq!(m.with_seq(7).seq, Some(7));
    }

    #[test]
    fn class_bits_roundtrip() {
        for c in [
            DeliveryClass::Lossless,
            DeliveryClass::BestEffort,
            DeliveryClass::Coalesce,
        ] {
            assert_eq!(DeliveryClass::from_bits(c.bits()), Some(c));
        }
        assert_eq!(DeliveryClass::from_bits(0x60), None);
        assert_eq!(DeliveryClass::default(), DeliveryClass::Lossless);
        let m = Message::new(0, 1, MessageKind::Parcel, Bytes::new())
            .with_class(DeliveryClass::BestEffort);
        assert_eq!(m.class, DeliveryClass::BestEffort);
    }
}
