//! Failure injection for the fabric.
//!
//! A production messaging layer must tolerate lost and corrupted
//! messages; the paper's stack sits on MPI/TCP, which surfaces both as
//! timeouts and checksum failures. [`FaultPlan`] lets tests and the
//! failure-injection suite drop or corrupt messages deterministically on
//! the send path and verify that the runtime degrades gracefully (decode
//! failures are counted and dropped; futures never silently hang — they
//! time out).

use std::sync::atomic::{AtomicU64, Ordering};

/// Deterministic fault plan for one port's outbound traffic.
///
/// Counting is 1-based over messages passing `pump_send`: with
/// `drop_every = Some(3)` the 3rd, 6th, 9th… messages are dropped.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Drop every n-th message.
    pub drop_every: Option<u64>,
    /// Corrupt (flip a payload byte of) every n-th message.
    pub corrupt_every: Option<u64>,
    sent: AtomicU64,
    dropped: AtomicU64,
    corrupted: AtomicU64,
}

/// What the fault plan decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver unmodified.
    Deliver,
    /// Discard the message.
    Drop,
    /// Deliver with a corrupted payload.
    Corrupt,
}

impl FaultPlan {
    /// A plan that drops every `n`-th message.
    pub fn drop_every(n: u64) -> Self {
        assert!(n > 0, "period must be positive");
        FaultPlan {
            drop_every: Some(n),
            ..Default::default()
        }
    }

    /// A plan that corrupts every `n`-th message.
    pub fn corrupt_every(n: u64) -> Self {
        assert!(n > 0, "period must be positive");
        FaultPlan {
            corrupt_every: Some(n),
            ..Default::default()
        }
    }

    /// Decide the fate of the next message.
    pub fn decide(&self) -> FaultAction {
        let n = self.sent.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(period) = self.drop_every {
            if n.is_multiple_of(period) {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return FaultAction::Drop;
            }
        }
        if let Some(period) = self.corrupt_every {
            if n.is_multiple_of(period) {
                self.corrupted.fetch_add(1, Ordering::Relaxed);
                return FaultAction::Corrupt;
            }
        }
        FaultAction::Deliver
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Messages corrupted so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_period_is_respected() {
        let plan = FaultPlan::drop_every(3);
        let decisions: Vec<FaultAction> = (0..9).map(|_| plan.decide()).collect();
        assert_eq!(
            decisions
                .iter()
                .filter(|&&d| d == FaultAction::Drop)
                .count(),
            3
        );
        assert_eq!(decisions[2], FaultAction::Drop);
        assert_eq!(decisions[0], FaultAction::Deliver);
        assert_eq!(plan.dropped(), 3);
    }

    #[test]
    fn corrupt_period_is_respected() {
        let plan = FaultPlan::corrupt_every(2);
        let decisions: Vec<FaultAction> = (0..4).map(|_| plan.decide()).collect();
        assert_eq!(
            decisions,
            vec![
                FaultAction::Deliver,
                FaultAction::Corrupt,
                FaultAction::Deliver,
                FaultAction::Corrupt
            ]
        );
        assert_eq!(plan.corrupted(), 2);
    }

    #[test]
    fn drop_takes_precedence_over_corrupt() {
        let plan = FaultPlan {
            drop_every: Some(2),
            corrupt_every: Some(2),
            ..Default::default()
        };
        assert_eq!(plan.decide(), FaultAction::Deliver);
        assert_eq!(plan.decide(), FaultAction::Drop);
    }

    #[test]
    fn default_plan_always_delivers() {
        let plan = FaultPlan::default();
        assert!((0..100).all(|_| plan.decide() == FaultAction::Deliver));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = FaultPlan::drop_every(0);
    }
}
