//! Failure injection for the transports.
//!
//! A production messaging layer must tolerate lost, corrupted, duplicated
//! and reordered messages; the paper's stack sits on MPI/TCP, which hides
//! the first two behind timeouts and checksums and never surfaces the
//! last two at all. [`FaultPlan`] lets tests and the chaos suite inject
//! all four failure modes deterministically on the send path of either
//! backend and verify that the runtime degrades gracefully — and, with
//! the [`crate::reliability`] sublayer enabled, that delivery stays
//! exactly-once regardless.
//!
//! Faults are decided per outbound message by [`FaultPlan::decide`];
//! messages chosen for reordering are parked in a [`FaultStage`] owned by
//! the backend's pump loop and released once enough later traffic has
//! overtaken them (or a hold deadline expires, so a quiet link cannot
//! strand them forever).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Deterministic fault plan for one port's outbound traffic.
///
/// Counting is 1-based over messages passing `pump_send`: with
/// `drop_every = Some(3)` the 3rd, 6th, 9th… messages are dropped. When
/// several periods hit the same message the precedence is
/// drop > corrupt > duplicate > delay > reorder.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Drop every n-th message.
    pub drop_every: Option<u64>,
    /// Corrupt (flip a frame byte of) every n-th message.
    pub corrupt_every: Option<u64>,
    /// Deliver every n-th message twice.
    pub duplicate_every: Option<u64>,
    /// Delay every n-th message by [`FaultPlan::delay`].
    pub delay_every: Option<u64>,
    /// How long a delayed message is held back.
    pub delay: Duration,
    /// Hold every w-th message until `w` later messages have overtaken
    /// it (delivery reordered by up to `w` positions).
    pub reorder_window: Option<u64>,
    sent: AtomicU64,
    dropped: AtomicU64,
    corrupted: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    reordered: AtomicU64,
}

/// What the fault plan decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver unmodified.
    Deliver,
    /// Discard the message.
    Drop,
    /// Deliver with a corrupted payload.
    Corrupt,
    /// Deliver the message twice.
    Duplicate,
    /// Deliver after an extra [`FaultPlan::delay`].
    Delay,
    /// Park the message in the [`FaultStage`] so later traffic overtakes
    /// it.
    Reorder,
}

impl FaultPlan {
    /// A plan that drops every `n`-th message.
    pub fn drop_every(n: u64) -> Self {
        assert!(n > 0, "period must be positive");
        FaultPlan {
            drop_every: Some(n),
            ..Default::default()
        }
    }

    /// A plan that corrupts every `n`-th message.
    pub fn corrupt_every(n: u64) -> Self {
        assert!(n > 0, "period must be positive");
        FaultPlan {
            corrupt_every: Some(n),
            ..Default::default()
        }
    }

    /// A plan that duplicates every `n`-th message.
    pub fn duplicate_every(n: u64) -> Self {
        assert!(n > 0, "period must be positive");
        FaultPlan {
            duplicate_every: Some(n),
            ..Default::default()
        }
    }

    /// A plan that delays every `n`-th message by `delay`.
    pub fn delay_every(n: u64, delay: Duration) -> Self {
        assert!(n > 0, "period must be positive");
        FaultPlan {
            delay_every: Some(n),
            delay,
            ..Default::default()
        }
    }

    /// A plan that reorders every `w`-th message by up to `w` positions.
    pub fn reorder_window(w: u64) -> Self {
        assert!(w > 0, "window must be positive");
        FaultPlan {
            reorder_window: Some(w),
            ..Default::default()
        }
    }

    /// The combined plan used by the chaos suite: 5 % drop, 2 % corrupt,
    /// 4 % duplicate, reorder window of 8.
    pub fn chaos() -> Self {
        FaultPlan {
            drop_every: Some(20),
            corrupt_every: Some(50),
            duplicate_every: Some(25),
            reorder_window: Some(8),
            ..Default::default()
        }
    }

    /// Decide the fate of the next message.
    pub fn decide(&self) -> FaultAction {
        let n = self.sent.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(period) = self.drop_every {
            if n.is_multiple_of(period) {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return FaultAction::Drop;
            }
        }
        if let Some(period) = self.corrupt_every {
            if n.is_multiple_of(period) {
                self.corrupted.fetch_add(1, Ordering::Relaxed);
                return FaultAction::Corrupt;
            }
        }
        if let Some(period) = self.duplicate_every {
            if n.is_multiple_of(period) {
                self.duplicated.fetch_add(1, Ordering::Relaxed);
                return FaultAction::Duplicate;
            }
        }
        if let Some(period) = self.delay_every {
            if n.is_multiple_of(period) {
                self.delayed.fetch_add(1, Ordering::Relaxed);
                return FaultAction::Delay;
            }
        }
        if let Some(window) = self.reorder_window {
            if n.is_multiple_of(window) {
                self.reordered.fetch_add(1, Ordering::Relaxed);
                return FaultAction::Reorder;
            }
        }
        FaultAction::Deliver
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Messages corrupted so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Messages duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Messages delayed so far.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Messages reordered so far.
    pub fn reordered(&self) -> u64 {
        self.reordered.load(Ordering::Relaxed)
    }
}

/// Holding pen for messages picked for [`FaultAction::Reorder`].
///
/// Each backend's pump loop owns one stage per direction it injects
/// faults on. A held item is released once `window` later messages have
/// passed it ([`FaultStage::on_pass`]) **or** its hold deadline expires —
/// the deadline guarantees a link that goes quiet cannot strand a held
/// message (quiescence would otherwise hang). Held items count toward
/// the port's outbound backlog via [`FaultStage::len`].
#[derive(Debug)]
pub struct FaultStage<T> {
    held: VecDeque<Held<T>>,
    max_hold: Duration,
}

#[derive(Debug)]
struct Held<T> {
    item: T,
    passes_left: u64,
    deadline: Instant,
}

/// Default cap on how long a reordered message is parked.
pub const DEFAULT_MAX_HOLD: Duration = Duration::from_millis(2);

impl<T> Default for FaultStage<T> {
    fn default() -> Self {
        FaultStage::new(DEFAULT_MAX_HOLD)
    }
}

impl<T> FaultStage<T> {
    /// A stage that releases held items after `max_hold` even if not
    /// enough traffic overtakes them.
    pub fn new(max_hold: Duration) -> Self {
        FaultStage {
            held: VecDeque::new(),
            max_hold,
        }
    }

    /// Park `item` until `passes` later messages overtake it.
    pub fn hold(&mut self, item: T, passes: u64) {
        self.hold_for(item, passes, self.max_hold);
    }

    /// Park `item` with an explicit hold deadline (used for
    /// [`crate::FaultAction::Delay`] on backends without a delivery
    /// clock: `passes = u64::MAX` makes the deadline the only release).
    pub fn hold_for(&mut self, item: T, passes: u64, hold: Duration) {
        self.held.push_back(Held {
            item,
            passes_left: passes.max(1),
            deadline: Instant::now() + hold,
        });
    }

    /// Record that one message passed the stage (overtaking everything
    /// held).
    pub fn on_pass(&mut self) {
        for h in &mut self.held {
            h.passes_left = h.passes_left.saturating_sub(1);
        }
    }

    /// Move every item that is due (fully overtaken or past its
    /// deadline) into `out`, oldest first.
    pub fn drain_ready(&mut self, out: &mut Vec<T>) {
        let now = Instant::now();
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].passes_left == 0 || self.held[i].deadline <= now {
                let h = self.held.remove(i).expect("index checked");
                out.push(h.item);
            } else {
                i += 1;
            }
        }
    }

    /// Number of messages currently parked (counts toward backlog).
    pub fn len(&self) -> usize {
        self.held.len()
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_period_is_respected() {
        let plan = FaultPlan::drop_every(3);
        let decisions: Vec<FaultAction> = (0..9).map(|_| plan.decide()).collect();
        assert_eq!(
            decisions
                .iter()
                .filter(|&&d| d == FaultAction::Drop)
                .count(),
            3
        );
        assert_eq!(decisions[2], FaultAction::Drop);
        assert_eq!(decisions[0], FaultAction::Deliver);
        assert_eq!(plan.dropped(), 3);
    }

    #[test]
    fn corrupt_period_is_respected() {
        let plan = FaultPlan::corrupt_every(2);
        let decisions: Vec<FaultAction> = (0..4).map(|_| plan.decide()).collect();
        assert_eq!(
            decisions,
            vec![
                FaultAction::Deliver,
                FaultAction::Corrupt,
                FaultAction::Deliver,
                FaultAction::Corrupt
            ]
        );
        assert_eq!(plan.corrupted(), 2);
    }

    #[test]
    fn duplicate_delay_reorder_periods_are_respected() {
        let plan = FaultPlan {
            duplicate_every: Some(2),
            delay_every: Some(3),
            delay: Duration::from_micros(50),
            reorder_window: Some(5),
            ..Default::default()
        };
        let decisions: Vec<FaultAction> = (0..10).map(|_| plan.decide()).collect();
        // 2,4,6,8,10 duplicate; 3,9 delay (6 taken by duplicate); 5 reorder
        // (10 taken by duplicate).
        assert_eq!(decisions[1], FaultAction::Duplicate);
        assert_eq!(decisions[2], FaultAction::Delay);
        assert_eq!(decisions[4], FaultAction::Reorder);
        assert_eq!(plan.duplicated(), 5);
        assert_eq!(plan.delayed(), 2);
        assert_eq!(plan.reordered(), 1);
    }

    #[test]
    fn drop_takes_precedence_over_corrupt() {
        let plan = FaultPlan {
            drop_every: Some(2),
            corrupt_every: Some(2),
            ..Default::default()
        };
        assert_eq!(plan.decide(), FaultAction::Deliver);
        assert_eq!(plan.decide(), FaultAction::Drop);
    }

    #[test]
    fn default_plan_always_delivers() {
        let plan = FaultPlan::default();
        assert!((0..100).all(|_| plan.decide() == FaultAction::Deliver));
    }

    #[test]
    fn chaos_plan_covers_all_modes() {
        let plan = FaultPlan::chaos();
        for _ in 0..200 {
            plan.decide();
        }
        assert!(plan.dropped() > 0);
        assert!(plan.corrupted() > 0);
        assert!(plan.duplicated() > 0);
        assert!(plan.reordered() > 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = FaultPlan::drop_every(0);
    }

    #[test]
    fn stage_releases_after_enough_passes() {
        let mut stage: FaultStage<u32> = FaultStage::new(Duration::from_secs(60));
        stage.hold(7, 2);
        let mut out = Vec::new();
        stage.drain_ready(&mut out);
        assert!(out.is_empty());
        stage.on_pass();
        stage.drain_ready(&mut out);
        assert!(out.is_empty());
        stage.on_pass();
        stage.drain_ready(&mut out);
        assert_eq!(out, vec![7]);
        assert!(stage.is_empty());
    }

    #[test]
    fn stage_releases_on_deadline_without_traffic() {
        let mut stage: FaultStage<u32> = FaultStage::new(Duration::from_millis(1));
        stage.hold(9, 1000);
        assert_eq!(stage.len(), 1);
        std::thread::sleep(Duration::from_millis(3));
        let mut out = Vec::new();
        stage.drain_ready(&mut out);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn stage_preserves_hold_order() {
        let mut stage: FaultStage<u32> = FaultStage::new(Duration::from_secs(60));
        stage.hold(1, 1);
        stage.hold(2, 1);
        stage.on_pass();
        let mut out = Vec::new();
        stage.drain_ready(&mut out);
        assert_eq!(out, vec![1, 2]);
    }
}
