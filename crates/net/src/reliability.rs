//! End-to-end reliable delivery: sequence numbers, cumulative acks,
//! retransmission with backoff, duplicate suppression.
//!
//! The paper's coalescing stack sits on MPI, which hides loss and
//! reordering from the parcel layer entirely; RPX's raw backends surface
//! faults as "decode failure → drop → future times out". This module
//! closes that gap with a transport-agnostic reliability sublayer,
//! [`ReliablePort`], a decorator around any [`TransportPort`]:
//!
//! * **Sequencing** — every outbound non-ack message is stamped with a
//!   per-destination monotonic sequence number and travels as a
//!   versioned frame carrying the seq on the wire
//!   ([`crate::frame::SEQ_FLAG`]).
//! * **Acks** — the receive side tracks, per source, the cumulative
//!   next-expected seq plus a 64-bit SACK bitmap of out-of-order
//!   arrivals. Acks are flushed from `pump_recv` once
//!   [`ReliabilityConfig::ack_threshold`] deliveries accumulate or
//!   [`ReliabilityConfig::ack_interval`] elapses — piggybacked on the
//!   pump cadence, standalone on the timer. Ack frames are plain
//!   unsequenced [`MessageKind::Ack`] messages: never acked, never
//!   retransmitted.
//! * **Retransmission** — unacked messages sit in a per-destination
//!   queue. `pump_send` re-sends entries whose retransmission timeout
//!   expired, doubling the RTO (capped at
//!   [`ReliabilityConfig::rto_max`]) with deterministic jitter to avoid
//!   lock-step retry storms. After
//!   [`ReliabilityConfig::max_retries`] unacknowledged attempts the
//!   entry is abandoned: a [`DeliveryError`] is recorded (see
//!   [`ReliablePort::take_delivery_failures`]) and the
//!   `delivery_failures` counter rises — an explicit failure, never a
//!   silent hang.
//! * **Duplicate suppression** — a retransmit that crosses its ack (or
//!   a wire-duplicated frame) arrives with a seq the receive window has
//!   already seen; it is counted (`duplicates_suppressed`), re-acked so
//!   the sender stops, and dropped *below* the parcel layer — tasks are
//!   never double-spawned, LCOs never double-resolved.
//!
//! Because retransmits and acks are sent through the inner port and
//! driven by the same `pump_send`/`pump_recv` calls the scheduler
//! already runs as background work, all reliability CPU time lands in
//! the `/threads/background-work` account — the paper's Eq. 1–4
//! overhead bookkeeping stays honest with reliability on. For the same
//! reason retransmits and acks pass through the inner backend's fault
//! plan: under chaos testing the recovery traffic is as lossy as the
//! traffic it repairs.
//!
//! Unacked entries count toward [`ReliablePort::outbound_backlog`], so
//! a quiescence check that observes zero backlog has proof of
//! *acknowledged* end-to-end delivery, not merely of empty queues.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::fabric::PortStats;
use crate::fault::FaultPlan;
use crate::message::{DeliveryClass, Message, MessageKind};
use crate::transport::{NotifyFn, ReceiveHandler, Transport, TransportPort};

/// Tuning knobs for the reliability sublayer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Flush pending acks at most this long after the first unacked
    /// delivery (the "ack timer").
    pub ack_interval: Duration,
    /// Flush an ack immediately once this many deliveries accumulated.
    pub ack_threshold: u64,
    /// Initial retransmission timeout for a freshly sent message.
    pub rto_initial: Duration,
    /// Upper bound on the (exponentially backed-off) retransmission
    /// timeout.
    pub rto_max: Duration,
    /// Retransmission attempts before a message is abandoned with a
    /// [`DeliveryError`].
    pub max_retries: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            ack_interval: Duration::from_micros(100),
            ack_threshold: 8,
            rto_initial: Duration::from_millis(5),
            rto_max: Duration::from_millis(200),
            max_retries: 10,
        }
    }
}

/// A message exhausted its retransmission budget without being acked.
///
/// Surfaced through [`ReliablePort::take_delivery_failures`] and the
/// `delivery_failures` statistic — the runtime-level contract is an
/// explicit error, never a silent hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryError {
    /// Destination locality the message never reached.
    pub dst: u32,
    /// Delivery sequence number of the abandoned message.
    pub seq: u64,
    /// Send attempts made (initial send + retransmits).
    pub attempts: u32,
}

impl std::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "delivery to locality {} failed: seq {} unacked after {} attempts",
            self.dst, self.seq, self.attempts
        )
    }
}

impl std::error::Error for DeliveryError {}

/// Byte length of an ack payload: cumulative seq + SACK bitmap.
const ACK_PAYLOAD_LEN: usize = 16;

/// Encode an ack payload: `[cum_next u64 LE][bitmap u64 LE]` where bit
/// `i` of the bitmap reports seq `cum_next + i` as received.
fn encode_ack(cum_next: u64, bitmap: u64) -> Bytes {
    let mut buf = [0u8; ACK_PAYLOAD_LEN];
    buf[0..8].copy_from_slice(&cum_next.to_le_bytes());
    buf[8..16].copy_from_slice(&bitmap.to_le_bytes());
    Bytes::copy_from_slice(&buf)
}

/// Decode an ack payload; `None` if malformed (treated as lost).
fn decode_ack(payload: &[u8]) -> Option<(u64, u64)> {
    if payload.len() < ACK_PAYLOAD_LEN {
        return None;
    }
    let cum_next = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let bitmap = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    Some((cum_next, bitmap))
}

/// Deterministic retry jitter: up to 25 % of `rto`, keyed by
/// `(dst, seq, attempts)` so concurrent senders (and successive retries
/// of one message) spread out without a random-number dependency.
fn jitter(dst: u32, seq: u64, attempts: u32, rto: Duration) -> Duration {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in dst
        .to_le_bytes()
        .into_iter()
        .chain(seq.to_le_bytes())
        .chain(attempts.to_le_bytes())
    {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    let quarter = (rto.as_nanos() / 4) as u64;
    Duration::from_nanos(quarter * (h % 256) / 255)
}

/// One unacknowledged message awaiting its ack or retransmission.
#[derive(Debug)]
struct Unacked {
    seq: u64,
    message: Message,
    /// Send attempts so far (1 after the initial send).
    attempts: u32,
    /// Current (backed-off) retransmission timeout.
    rto: Duration,
    /// When the next retransmission fires.
    next_retry: Instant,
}

/// Per-destination send half: seq allocation + retransmit queue.
#[derive(Debug, Default)]
struct SendState {
    next_seq: u64,
    unacked: VecDeque<Unacked>,
}

/// Per-source receive half: delivery window + ack bookkeeping.
#[derive(Debug)]
struct RecvState {
    /// Every seq below this has been delivered upward.
    cum_next: u64,
    /// Seqs `>= cum_next` delivered out of order (the SACK set).
    out_of_order: BTreeSet<u64>,
    /// An ack should be sent (new delivery or duplicate to re-ack).
    ack_due: bool,
    /// Deliveries since the last ack flush.
    delivered_since_ack: u64,
    /// When the last ack was flushed.
    last_ack: Instant,
}

impl RecvState {
    fn new() -> Self {
        RecvState {
            cum_next: 0,
            out_of_order: BTreeSet::new(),
            ack_due: false,
            delivered_since_ack: 0,
            last_ack: Instant::now(),
        }
    }

    /// The SACK bitmap over `cum_next..cum_next + 64`.
    fn bitmap(&self) -> u64 {
        let mut bitmap = 0u64;
        for &s in self.out_of_order.range(self.cum_next..self.cum_next + 64) {
            bitmap |= 1 << (s - self.cum_next);
        }
        bitmap
    }
}

struct ReliableShared {
    inner: Arc<dyn TransportPort>,
    config: ReliabilityConfig,
    send: Mutex<HashMap<u32, SendState>>,
    recv: Mutex<HashMap<u32, RecvState>>,
    upper: RwLock<Option<ReceiveHandler>>,
    failures: Mutex<Vec<DeliveryError>>,
}

impl ReliableShared {
    /// Receive-side hook installed on the inner port.
    fn on_receive(&self, message: Message) {
        match (message.kind, message.seq) {
            (MessageKind::Ack, _) => self.process_ack(&message),
            (_, Some(seq)) => {
                let deliver = {
                    let mut recv = self.recv.lock();
                    let st = recv.entry(message.src).or_insert_with(RecvState::new);
                    if seq < st.cum_next || st.out_of_order.contains(&seq) {
                        // Duplicate (retransmit that crossed its ack, or
                        // a wire-duplicated frame): drop below the parcel
                        // layer and re-ack so the sender stops.
                        self.inner
                            .stats()
                            .duplicates_suppressed
                            .fetch_add(1, Ordering::Relaxed);
                        st.ack_due = true;
                        false
                    } else {
                        st.out_of_order.insert(seq);
                        // Advance the cumulative frontier over any run
                        // that just became contiguous.
                        while st.out_of_order.remove(&st.cum_next) {
                            st.cum_next += 1;
                        }
                        st.delivered_since_ack += 1;
                        st.ack_due = true;
                        true
                    }
                };
                if deliver {
                    if let Some(h) = self.upper.read().clone() {
                        h(message);
                    }
                }
            }
            // Unsequenced traffic (a peer without reliability): pass
            // through untouched.
            (_, None) => {
                if let Some(h) = self.upper.read().clone() {
                    h(message);
                }
            }
        }
    }

    /// Apply an ack from `message.src`: everything below the cumulative
    /// seq, plus every bitmap hit, leaves the retransmit queue.
    fn process_ack(&self, message: &Message) {
        let Some((cum_next, bitmap)) = decode_ack(&message.payload) else {
            return;
        };
        let mut send = self.send.lock();
        if let Some(st) = send.get_mut(&message.src) {
            st.unacked.retain(|u| {
                if u.seq < cum_next {
                    return false;
                }
                let i = u.seq - cum_next;
                !(i < 64 && bitmap & (1 << i) != 0)
            });
        }
    }

    /// Re-send every unacked message whose RTO expired; abandon those
    /// out of budget. Returns `true` if anything was retransmitted.
    fn retransmit_due(&self) -> bool {
        let now = Instant::now();
        let mut resend = Vec::new();
        let mut failed = Vec::new();
        {
            let mut send = self.send.lock();
            for (&dst, st) in send.iter_mut() {
                let mut i = 0;
                while i < st.unacked.len() {
                    let u = &mut st.unacked[i];
                    if u.next_retry > now {
                        i += 1;
                        continue;
                    }
                    if u.attempts > self.config.max_retries {
                        let u = st.unacked.remove(i).expect("index checked");
                        failed.push(DeliveryError {
                            dst,
                            seq: u.seq,
                            attempts: u.attempts,
                        });
                        continue;
                    }
                    u.attempts += 1;
                    u.rto = (u.rto * 2).min(self.config.rto_max);
                    u.next_retry = now + u.rto + jitter(dst, u.seq, u.attempts, u.rto);
                    resend.push(u.message.clone());
                    i += 1;
                }
            }
        }
        let stats = self.inner.stats();
        if !failed.is_empty() {
            stats
                .delivery_failures
                .fetch_add(failed.len() as u64, Ordering::Relaxed);
            self.failures.lock().extend(failed);
        }
        let did = !resend.is_empty();
        for m in resend {
            stats.retransmits.fetch_add(1, Ordering::Relaxed);
            self.inner.send(m);
        }
        did
    }

    /// Send due ack frames (threshold reached or ack timer expired).
    /// Returns `true` if any ack went out.
    fn flush_acks(&self) -> bool {
        let now = Instant::now();
        let locality = self.inner.locality();
        let mut acks = Vec::new();
        {
            let mut recv = self.recv.lock();
            for (&src, st) in recv.iter_mut() {
                if !st.ack_due {
                    continue;
                }
                if st.delivered_since_ack < self.config.ack_threshold
                    && now.duration_since(st.last_ack) < self.config.ack_interval
                {
                    continue;
                }
                acks.push(Message::new(
                    locality,
                    src,
                    MessageKind::Ack,
                    encode_ack(st.cum_next, st.bitmap()),
                ));
                st.ack_due = false;
                st.delivered_since_ack = 0;
                st.last_ack = now;
            }
        }
        let did = !acks.is_empty();
        let stats = self.inner.stats();
        for m in acks {
            stats.acks_sent.fetch_add(1, Ordering::Relaxed);
            self.inner.send(m);
        }
        did
    }

    /// Total messages awaiting acknowledgement across all destinations.
    fn unacked_total(&self) -> usize {
        self.send.lock().values().map(|s| s.unacked.len()).sum()
    }
}

/// Reliability decorator around any [`TransportPort`].
///
/// Stamps sequence numbers on outbound messages, retransmits until
/// acked (or a [`DeliveryError`] is recorded), suppresses duplicate
/// deliveries and emits acks — see the [module docs](self) for the
/// protocol. Built by [`ReliableTransport`]; all [`TransportPort`]
/// methods delegate to the wrapped port, with the reliability state
/// machines spliced into `send`/`pump_send`/`pump_recv`.
pub struct ReliablePort {
    shared: Arc<ReliableShared>,
}

impl ReliablePort {
    /// Wrap `inner` with reliability under `config`.
    ///
    /// Installs a receive hook on `inner`; the handler later given to
    /// [`ReliablePort::set_receiver`] observes exactly-once delivery.
    pub fn new(inner: Arc<dyn TransportPort>, config: ReliabilityConfig) -> Arc<Self> {
        let shared = Arc::new(ReliableShared {
            inner,
            config,
            send: Mutex::new(HashMap::new()),
            recv: Mutex::new(HashMap::new()),
            upper: RwLock::new(None),
            failures: Mutex::new(Vec::new()),
        });
        // The inner port holds this hook for its own lifetime; a weak
        // reference avoids the reference cycle inner → hook → shared →
        // inner.
        let weak: Weak<ReliableShared> = Arc::downgrade(&shared);
        shared.inner.set_receiver(Arc::new(move |message| {
            if let Some(shared) = weak.upgrade() {
                shared.on_receive(message);
            }
        }));
        Arc::new(ReliablePort { shared })
    }

    /// Drain the delivery failures recorded since the last call (each
    /// one also counted in the `delivery_failures` statistic).
    pub fn take_delivery_failures(&self) -> Vec<DeliveryError> {
        std::mem::take(&mut self.shared.failures.lock())
    }

    /// Messages sent but not yet acknowledged by their destination.
    pub fn unacked(&self) -> usize {
        self.shared.unacked_total()
    }

    /// Out-of-order entries currently held across all receive windows.
    /// Once a source's traffic is contiguously delivered this returns to
    /// zero — the leak check the reliability proptests pin.
    pub fn recv_window_len(&self) -> usize {
        self.shared
            .recv
            .lock()
            .values()
            .map(|s| s.out_of_order.len())
            .sum()
    }

    /// The configuration in force.
    pub fn config(&self) -> ReliabilityConfig {
        self.shared.config
    }

    #[doc(hidden)]
    pub fn debug_recv_states(&self) -> Vec<(u32, u64, Vec<u64>)> {
        self.shared
            .recv
            .lock()
            .iter()
            .map(|(src, st)| (*src, st.cum_next, st.out_of_order.iter().copied().collect()))
            .collect()
    }
}

impl TransportPort for ReliablePort {
    fn locality(&self) -> u32 {
        self.shared.inner.locality()
    }

    fn stats(&self) -> &PortStats {
        self.shared.inner.stats()
    }

    fn send(&self, message: Message) {
        // Acks (and anything already sequenced by a caller) bypass the
        // sequencer: acking acks would never converge. BestEffort-class
        // traffic bypasses by contract — unsequenced, unacked, never
        // retransmitted, never owed to quiescence.
        if message.kind == MessageKind::Ack
            || message.seq.is_some()
            || message.class == DeliveryClass::BestEffort
        {
            self.shared.inner.send(message);
            return;
        }
        let message = {
            let mut send = self.shared.send.lock();
            let st = send.entry(message.dst).or_default();
            let seq = st.next_seq;
            st.next_seq += 1;
            let message = message.with_seq(seq);
            let rto = self.shared.config.rto_initial;
            st.unacked.push_back(Unacked {
                seq,
                message: message.clone(),
                attempts: 1,
                rto,
                next_retry: Instant::now() + rto + jitter(message.dst, seq, 1, rto),
            });
            message
        };
        self.shared.inner.send(message);
    }

    fn pump_send(&self) -> bool {
        let retried = self.shared.retransmit_due();
        let pumped = self.shared.inner.pump_send();
        retried || pumped
    }

    fn pump_recv(&self) -> bool {
        let delivered = self.shared.inner.pump_recv();
        let acked = self.shared.flush_acks();
        delivered || acked
    }

    fn set_receiver(&self, handler: ReceiveHandler) {
        *self.shared.upper.write() = Some(handler);
    }

    fn set_notify(&self, notify: NotifyFn) {
        self.shared.inner.set_notify(notify);
    }

    fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        // Faults live in the raw backend, *below* the reliability state
        // machines, so retransmits and acks are themselves subject to
        // the plan — chaos testing exercises the recovery path under
        // the same conditions as the traffic it repairs.
        self.shared.inner.set_fault_plan(plan);
    }

    fn outbound_backlog(&self) -> usize {
        // Unacked messages count as outstanding: zero backlog means
        // *acknowledged* delivery, which is what quiescence waits for.
        self.shared.inner.outbound_backlog() + self.shared.unacked_total()
    }

    fn inflight_backlog(&self) -> usize {
        self.shared.inner.inflight_backlog()
    }

    fn processing(&self) -> usize {
        self.shared.inner.processing()
    }
}

/// A [`Transport`] decorator wrapping every port in a [`ReliablePort`].
///
/// Ports are cached so repeated [`Transport::port`] calls for one
/// locality share the same sequence/ack state — a fresh wrapper per
/// call would restart sequence numbers and break the protocol.
pub struct ReliableTransport {
    inner: Arc<dyn Transport>,
    config: ReliabilityConfig,
    ports: Mutex<Vec<Option<Arc<ReliablePort>>>>,
}

impl ReliableTransport {
    /// Wrap `inner` so every port speaks the reliability protocol.
    pub fn new(inner: Arc<dyn Transport>, config: ReliabilityConfig) -> Arc<Self> {
        let localities = inner.localities() as usize;
        Arc::new(ReliableTransport {
            inner,
            config,
            ports: Mutex::new(vec![None; localities]),
        })
    }

    /// The typed reliable port of `locality` (same instance the
    /// [`Transport`] impl hands out).
    ///
    /// # Panics
    /// Panics if `locality` is out of range.
    pub fn reliable_port(&self, locality: u32) -> Arc<ReliablePort> {
        let mut ports = self.ports.lock();
        let slot = &mut ports[locality as usize];
        if slot.is_none() {
            *slot = Some(ReliablePort::new(self.inner.port(locality), self.config));
        }
        Arc::clone(slot.as_ref().expect("just filled"))
    }
}

impl Transport for ReliableTransport {
    fn localities(&self) -> u32 {
        self.inner.localities()
    }

    fn port(&self, locality: u32) -> Arc<dyn TransportPort> {
        self.reliable_port(locality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::SimTransport;
    use crate::model::LinkModel;
    use std::sync::atomic::AtomicU64;

    fn reliable_pair(
        config: ReliabilityConfig,
    ) -> (Arc<ReliableTransport>, Arc<ReliablePort>, Arc<ReliablePort>) {
        let sim = SimTransport::new(2, LinkModel::zero());
        let t = ReliableTransport::new(sim, config);
        let a = t.reliable_port(0);
        let b = t.reliable_port(1);
        (t, a, b)
    }

    fn pump_until<F: Fn() -> bool>(
        ports: &[&Arc<ReliablePort>],
        done: F,
        timeout: Duration,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        while !done() {
            for p in ports {
                p.pump();
            }
            if Instant::now() > deadline {
                return false;
            }
        }
        true
    }

    fn msg(src: u32, dst: u32, payload: &[u8]) -> Message {
        Message::new(
            src,
            dst,
            MessageKind::Parcel,
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn ack_payload_roundtrips() {
        let (cum, map) = decode_ack(&encode_ack(42, 0b1010)).unwrap();
        assert_eq!(cum, 42);
        assert_eq!(map, 0b1010);
        assert_eq!(decode_ack(b"short"), None);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let rto = Duration::from_millis(8);
        let j1 = jitter(1, 5, 2, rto);
        let j2 = jitter(1, 5, 2, rto);
        assert_eq!(j1, j2);
        assert!(j1 <= rto / 4);
        // Different keys spread.
        assert_ne!(jitter(1, 5, 2, rto), jitter(1, 6, 2, rto));
    }

    #[test]
    fn clean_path_delivers_and_acks_drain_the_queue() {
        let (_t, a, b) = reliable_pair(ReliabilityConfig::default());
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |m: Message| {
            assert!(m.seq.is_some(), "reliable traffic is sequenced");
            h.fetch_add(1, Ordering::SeqCst);
        }));
        for _ in 0..20 {
            a.send(msg(0, 1, b"payload"));
        }
        assert!(pump_until(
            &[&a, &b],
            || hits.load(Ordering::SeqCst) == 20 && a.unacked() == 0,
            Duration::from_secs(5)
        ));
        assert_eq!(a.stats().retransmits.load(Ordering::SeqCst), 0);
        assert!(b.stats().acks_sent.load(Ordering::SeqCst) > 0);
        assert_eq!(a.outbound_backlog(), 0);
    }

    #[test]
    fn drops_are_repaired_by_retransmission_exactly_once() {
        let config = ReliabilityConfig {
            rto_initial: Duration::from_micros(500),
            ..Default::default()
        };
        let (_t, a, b) = reliable_pair(config);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::drop_every(4))));
        for _ in 0..40 {
            a.send(msg(0, 1, b"x"));
        }
        assert!(pump_until(
            &[&a, &b],
            || hits.load(Ordering::SeqCst) == 40 && a.unacked() == 0,
            Duration::from_secs(10)
        ));
        // Nothing delivered twice, and the repair really used retransmits.
        assert_eq!(hits.load(Ordering::SeqCst), 40);
        assert!(a.stats().retransmits.load(Ordering::SeqCst) > 0);
        assert!(a.take_delivery_failures().is_empty());
    }

    #[test]
    fn wire_duplicates_are_suppressed() {
        let (_t, a, b) = reliable_pair(ReliabilityConfig::default());
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::duplicate_every(2))));
        for _ in 0..20 {
            a.send(msg(0, 1, b"x"));
        }
        assert!(pump_until(
            &[&a, &b],
            || hits.load(Ordering::SeqCst) == 20 && a.unacked() == 0,
            Duration::from_secs(10)
        ));
        std::thread::sleep(Duration::from_millis(5));
        for p in [&a, &b] {
            p.pump();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 20, "duplicates leaked");
        assert!(b.stats().duplicates_suppressed.load(Ordering::SeqCst) >= 10);
    }

    #[test]
    fn reordering_is_tolerated() {
        let (_t, a, b) = reliable_pair(ReliabilityConfig::default());
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.seq.unwrap())));
        a.set_fault_plan(Some(Arc::new(FaultPlan::reorder_window(4))));
        for _ in 0..32 {
            a.send(msg(0, 1, b"x"));
        }
        assert!(pump_until(
            &[&a, &b],
            || got.lock().len() == 32 && a.unacked() == 0,
            Duration::from_secs(10)
        ));
        let mut seqs = got.lock().clone();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn exhausted_retries_surface_delivery_error_not_a_hang() {
        let config = ReliabilityConfig {
            rto_initial: Duration::from_micros(200),
            rto_max: Duration::from_micros(400),
            max_retries: 3,
            ..Default::default()
        };
        let (_t, a, b) = reliable_pair(config);
        b.set_receiver(Arc::new(|_| {}));
        // Total blackout: everything (including retransmits) is dropped.
        a.set_fault_plan(Some(Arc::new(FaultPlan::drop_every(1))));
        a.send(msg(0, 1, b"doomed"));
        assert!(
            pump_until(
                &[&a, &b],
                || a.stats().delivery_failures.load(Ordering::SeqCst) == 1,
                Duration::from_secs(10)
            ),
            "give-up budget never fired"
        );
        let failures = a.take_delivery_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].dst, 1);
        assert_eq!(failures[0].seq, 0);
        assert_eq!(failures[0].attempts, 1 + config.max_retries);
        // The abandoned entry left the queue: backlog drains to zero.
        assert_eq!(a.unacked(), 0);
        assert_eq!(a.take_delivery_failures(), vec![], "drained once");
    }

    #[test]
    fn combined_chaos_still_delivers_exactly_once() {
        let config = ReliabilityConfig {
            rto_initial: Duration::from_millis(1),
            ..Default::default()
        };
        let (_t, a, b) = reliable_pair(config);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::chaos())));
        let n = 200u64;
        for _ in 0..n {
            a.send(msg(0, 1, b"chaos"));
        }
        assert!(pump_until(
            &[&a, &b],
            || hits.load(Ordering::SeqCst) == n && a.unacked() == 0,
            Duration::from_secs(30)
        ));
        std::thread::sleep(Duration::from_millis(5));
        for p in [&a, &b] {
            p.pump();
        }
        assert_eq!(hits.load(Ordering::SeqCst), n, "lost or duplicated");
        assert_eq!(a.stats().delivery_failures.load(Ordering::SeqCst), 0);
        assert!(a.take_delivery_failures().is_empty());
    }

    #[test]
    fn unsequenced_traffic_passes_through() {
        let (_t, a, b) = reliable_pair(ReliabilityConfig::default());
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        // A message already carrying a seq bypasses the sequencer (it is
        // a retransmit-shaped send); an Ack-kind message does too.
        a.send(msg(0, 1, b"normal"));
        assert!(pump_until(
            &[&a, &b],
            || hits.load(Ordering::SeqCst) == 1 && a.unacked() == 0,
            Duration::from_secs(5)
        ));
    }

    #[test]
    fn best_effort_skips_sequencing_and_acks() {
        let (_t, a, b) = reliable_pair(ReliabilityConfig::default());
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |m: Message| {
            assert_eq!(m.seq, None, "BestEffort must travel unsequenced");
            assert_eq!(m.class, DeliveryClass::BestEffort);
            h.fetch_add(1, Ordering::SeqCst);
        }));
        for _ in 0..10 {
            a.send(msg(0, 1, b"be").with_class(DeliveryClass::BestEffort));
        }
        assert!(pump_until(
            &[&a, &b],
            || hits.load(Ordering::SeqCst) == 10,
            Duration::from_secs(5)
        ));
        // Nothing entered the retransmit queue and no acks flowed.
        assert_eq!(a.unacked(), 0);
        assert_eq!(a.outbound_backlog(), 0);
        std::thread::sleep(Duration::from_millis(1));
        for p in [&a, &b] {
            p.pump();
        }
        assert_eq!(b.stats().acks_sent.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn best_effort_drops_are_not_repaired() {
        let (_t, a, b) = reliable_pair(ReliabilityConfig {
            rto_initial: Duration::from_micros(200),
            ..Default::default()
        });
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::drop_every(2))));
        for _ in 0..20 {
            a.send(msg(0, 1, b"be").with_class(DeliveryClass::BestEffort));
        }
        assert!(pump_until(
            &[&a, &b],
            || hits.load(Ordering::SeqCst) == 10,
            Duration::from_secs(5)
        ));
        std::thread::sleep(Duration::from_millis(2));
        for p in [&a, &b] {
            p.pump();
        }
        // At-most-once: exactly the survivors, no retransmits, and the
        // drops are accounted for by the wire counter.
        assert_eq!(hits.load(Ordering::SeqCst), 10);
        assert_eq!(a.stats().retransmits.load(Ordering::SeqCst), 0);
        assert_eq!(a.stats().best_effort_dropped.load(Ordering::SeqCst), 10);
        assert_eq!(a.unacked(), 0);
    }

    #[test]
    fn coalesce_class_is_sequenced_like_lossless() {
        let (_t, a, b) = reliable_pair(ReliabilityConfig::default());
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |m: Message| {
            assert!(m.seq.is_some(), "Coalesce rides the reliable wire");
            assert_eq!(m.class, DeliveryClass::Coalesce);
            h.fetch_add(1, Ordering::SeqCst);
        }));
        for _ in 0..5 {
            a.send(msg(0, 1, b"co").with_class(DeliveryClass::Coalesce));
        }
        assert!(pump_until(
            &[&a, &b],
            || hits.load(Ordering::SeqCst) == 5 && a.unacked() == 0,
            Duration::from_secs(5)
        ));
    }

    #[test]
    fn transport_caches_ports() {
        let sim = SimTransport::new(2, LinkModel::zero());
        let t = ReliableTransport::new(sim, ReliabilityConfig::default());
        let p1 = t.reliable_port(0);
        let p2 = t.reliable_port(0);
        assert!(Arc::ptr_eq(&p1, &p2), "port state must be shared");
        assert_eq!(Transport::localities(t.as_ref()), 2);
        assert_eq!(Transport::port(t.as_ref(), 1).locality(), 1);
    }
}
