//! The loopback-TCP transport: real kernel sockets between localities.
//!
//! Where [`crate::SimTransport`] *models* per-message software overhead
//! with a [`crate::LinkModel`], this backend pays the genuine price: every
//! message is a length-prefixed frame ([`crate::frame`]) written to a
//! `127.0.0.1` TCP stream, so per-message syscall overhead, kernel
//! buffering and Nagle-free small-write costs are all real. This is what
//! lets the reproduction check that conclusions drawn on the simulated
//! LogP fabric carry over to a transport with true per-message costs.
//!
//! ## Threading model
//!
//! * **`send`** enqueues onto an in-process outbound queue — never a
//!   syscall on the caller.
//! * **`pump_send`** (scheduler background work) drains the queue,
//!   encodes frames, and drives *non-blocking* writes on one lazily
//!   connected stream per destination; partially written frames are
//!   buffered and finished by later pumps. All socket work is therefore
//!   charged to the `/threads/background-work` account, exactly like the
//!   simulated backend, keeping the paper's Eq. 4 network overhead
//!   comparable across backends.
//! * One **acceptor thread** per port accepts incoming connections and
//!   spawns a **reader thread** per peer stream. Readers block in
//!   `read_exact`, decode frames (checksum-validated; corrupt frames
//!   increment [`PortStats::decode_failures`] and are dropped) and push
//!   messages onto the inbound queue.
//! * **`pump_recv`** (background work again) drains the inbound queue and
//!   invokes the receive handler on the pumping thread — receive-side
//!   handler work lands on scheduler threads, as in HPX.
//!
//! Quiescence accounting: a transport-wide per-destination `in_wire`
//! gauge rises when a frame enters a write buffer and falls only *after*
//! the decoded message is visible in the destination's inbound queue, so
//! `inflight_backlog` never momentarily under-counts a frame that lives
//! in kernel buffers.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::fabric::PortStats;
use crate::fault::{FaultAction, FaultPlan, FaultStage};
use crate::frame::{check_body_len, corrupt_frame, decode_frame_body, encode_frame, wire_len};
use crate::message::Message;
use crate::transport::{NotifyFn, ReceiveHandler, Transport, TransportPort};

/// Messages one pump call processes before yielding (matches the
/// simulated backend's batch bound).
const PUMP_BATCH: usize = 8;

/// Transport-wide state shared by every port and thread.
struct Mesh {
    /// Listener address of every locality, indexed by locality id.
    addrs: Vec<SocketAddr>,
    /// Frames somewhere between a sender's write buffer and the
    /// destination's inbound queue, indexed by destination locality.
    in_wire: Vec<AtomicU64>,
    /// Set once at teardown; acceptors exit on the next (dummy) accept.
    shutdown: AtomicBool,
}

/// One lazily established outgoing connection with its write buffer.
struct OutConn {
    stream: TcpStream,
    /// Encoded frames not yet (fully) written, FIFO.
    pending: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written.
    offset: usize,
    /// A write error occurred; frames to this destination are discarded.
    broken: bool,
}

struct TcpShared {
    locality: u32,
    mesh: Arc<Mesh>,
    outbound_tx: Sender<Message>,
    outbound_rx: Receiver<Message>,
    inbound_tx: Sender<Message>,
    inbound_rx: Receiver<Message>,
    /// Per-destination outgoing connections; also serialises `pump_send`
    /// (a pump that loses the `try_lock` race simply yields — another
    /// thread is already writing).
    conns: Mutex<Vec<Option<OutConn>>>,
    receiver: RwLock<Option<ReceiveHandler>>,
    notify: RwLock<Option<NotifyFn>>,
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Encoded frames parked by delay/reorder fault injection, keyed by
    /// destination. Counted in `outbound_backlog` so quiescence checks
    /// see them.
    reorder: Mutex<FaultStage<(usize, Vec<u8>)>>,
    stats: PortStats,
    /// Messages mid-pump (same contract as the simulated backend).
    processing: AtomicUsize,
}

impl TcpShared {
    fn notify(&self) {
        if let Some(n) = self.notify.read().as_ref() {
            n();
        }
    }
}

/// Decrements the processing gauge on drop (panic-safe).
struct ProcessingGuard<'a>(&'a AtomicUsize);

impl<'a> ProcessingGuard<'a> {
    fn enter(gauge: &'a AtomicUsize) -> Self {
        gauge.fetch_add(1, Ordering::Acquire);
        ProcessingGuard(gauge)
    }
}

impl Drop for ProcessingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// The loopback-TCP network connecting all localities of a cluster.
pub struct TcpTransport {
    ports: Vec<Arc<TcpShared>>,
    mesh: Arc<Mesh>,
    acceptors: Mutex<Vec<JoinHandle<()>>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpTransport {
    /// Bind one loopback listener per locality and start the acceptor
    /// threads.
    ///
    /// # Errors
    /// Fails if a listener cannot be bound on `127.0.0.1`.
    pub fn new(localities: u32) -> std::io::Result<Arc<Self>> {
        assert!(localities > 0, "transport needs at least one locality");
        let listeners: Vec<TcpListener> = (0..localities)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()?;
        let mesh = Arc::new(Mesh {
            addrs,
            in_wire: (0..localities).map(|_| AtomicU64::new(0)).collect(),
            shutdown: AtomicBool::new(false),
        });
        let ports: Vec<Arc<TcpShared>> = (0..localities)
            .map(|locality| {
                let (outbound_tx, outbound_rx) = unbounded();
                let (inbound_tx, inbound_rx) = unbounded();
                Arc::new(TcpShared {
                    locality,
                    mesh: Arc::clone(&mesh),
                    outbound_tx,
                    outbound_rx,
                    inbound_tx,
                    inbound_rx,
                    conns: Mutex::new((0..localities).map(|_| None).collect()),
                    receiver: RwLock::new(None),
                    notify: RwLock::new(None),
                    faults: RwLock::new(None),
                    reorder: Mutex::new(FaultStage::default()),
                    stats: PortStats::default(),
                    processing: AtomicUsize::new(0),
                })
            })
            .collect();
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptors = ports
            .iter()
            .zip(listeners)
            .map(|(shared, listener)| {
                let shared = Arc::clone(shared);
                let readers = Arc::clone(&readers);
                std::thread::Builder::new()
                    .name(format!("rpx-tcp-acc{}", shared.locality))
                    .spawn(move || run_acceptor(listener, shared, readers))
                    .expect("spawn acceptor thread")
            })
            .collect();
        Ok(Arc::new(TcpTransport {
            ports,
            mesh,
            acceptors: Mutex::new(acceptors),
            readers,
        }))
    }

    /// Number of localities.
    pub fn localities(&self) -> u32 {
        self.ports.len() as u32
    }

    /// The port of `locality`.
    ///
    /// # Panics
    /// Panics if `locality` is out of range.
    pub fn port(&self, locality: u32) -> TcpPort {
        assert!(
            (locality as usize) < self.ports.len(),
            "locality {locality} out of range"
        );
        TcpPort {
            shared: Arc::clone(&self.ports[locality as usize]),
        }
    }
}

impl Transport for TcpTransport {
    fn localities(&self) -> u32 {
        TcpTransport::localities(self)
    }

    fn port(&self, locality: u32) -> Arc<dyn TransportPort> {
        Arc::new(TcpTransport::port(self, locality))
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.mesh.shutdown.store(true, Ordering::Release);
        // Drop every outgoing stream (readers at the far end see EOF and
        // exit), unaccounting any frames that never made it to the wire.
        for port in &self.ports {
            let mut conns = port.conns.lock();
            for (dst, slot) in conns.iter_mut().enumerate() {
                if let Some(conn) = slot.take() {
                    self.mesh.in_wire[dst].fetch_sub(conn.pending.len() as u64, Ordering::AcqRel);
                }
            }
        }
        // Unblock every acceptor with a throwaway connection; it observes
        // the shutdown flag and exits without spawning a reader.
        for addr in &self.mesh.addrs {
            let _ = TcpStream::connect(addr);
        }
        for h in self.acceptors.lock().drain(..) {
            let _ = h.join();
        }
        // All acceptors are gone, so the reader set is final.
        let readers: Vec<_> = self.readers.lock().drain(..).collect();
        for h in readers {
            let _ = h.join();
        }
    }
}

fn run_acceptor(
    listener: TcpListener,
    shared: Arc<TcpShared>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.mesh.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let shared = Arc::clone(&shared);
                let name = format!("rpx-tcp-rd{}", shared.locality);
                let handle = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || run_reader(stream, shared))
                    .expect("spawn reader thread");
                readers.lock().push(handle);
            }
            Err(_) => {
                if shared.mesh.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
}

/// Read length-prefixed frames off one peer stream until EOF/error.
fn run_reader(mut stream: TcpStream, shared: Arc<TcpShared>) {
    let _ = stream.set_nodelay(true);
    let mut len_buf = [0u8; 4];
    loop {
        if stream.read_exact(&mut len_buf).is_err() {
            break;
        }
        let Ok(body_len) = check_body_len(u32::from_le_bytes(len_buf)) else {
            // The stream is desynchronised beyond recovery: count one
            // failure and abandon the connection.
            shared.stats.decode_failures.fetch_add(1, Ordering::Relaxed);
            shared.mesh.in_wire[shared.locality as usize].fetch_sub(1, Ordering::AcqRel);
            break;
        };
        let mut body = vec![0u8; body_len];
        if stream.read_exact(&mut body).is_err() {
            break;
        }
        match decode_frame_body(&body) {
            Ok(message) => {
                // Publish to the inbound queue *before* dropping the
                // in-wire gauge so quiescence checks never miss the frame.
                let _ = shared.inbound_tx.send(message);
                shared.notify();
            }
            Err(_) => {
                shared.stats.decode_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        shared.mesh.in_wire[shared.locality as usize].fetch_sub(1, Ordering::AcqRel);
    }
}

/// Flush as much of `conn`'s write buffer as the socket accepts without
/// blocking. Returns `true` if any bytes were written.
fn flush_conn(mesh: &Mesh, dst: usize, conn: &mut OutConn) -> bool {
    if conn.broken {
        return false;
    }
    let mut wrote = false;
    while let Some(front) = conn.pending.front() {
        match conn.stream.write(&front[conn.offset..]) {
            Ok(0) => {
                break_conn(mesh, dst, conn);
                break;
            }
            Ok(n) => {
                wrote = true;
                conn.offset += n;
                if conn.offset == front.len() {
                    conn.pending.pop_front();
                    conn.offset = 0;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                break_conn(mesh, dst, conn);
                break;
            }
        }
    }
    wrote
}

/// Mark a connection broken and unaccount its never-delivered frames so
/// quiescence checks do not wait for them forever.
fn break_conn(mesh: &Mesh, dst: usize, conn: &mut OutConn) {
    mesh.in_wire[dst].fetch_sub(conn.pending.len() as u64, Ordering::AcqRel);
    conn.pending.clear();
    conn.offset = 0;
    conn.broken = true;
}

/// A locality's endpoint on the loopback-TCP transport.
#[derive(Clone)]
pub struct TcpPort {
    shared: Arc<TcpShared>,
}

impl TcpPort {
    /// This port's locality id.
    pub fn locality(&self) -> u32 {
        self.shared.locality
    }

    /// Traffic statistics (byte counters are frame bytes on the wire).
    pub fn stats(&self) -> &PortStats {
        &self.shared.stats
    }

    /// Install the handler invoked (from pump threads) for every
    /// delivered message.
    pub fn set_receiver(&self, handler: ReceiveHandler) {
        *self.shared.receiver.write() = Some(handler);
    }

    /// Install a wake-up hook called whenever traffic lands on this
    /// port's queues.
    pub fn set_notify(&self, notify: NotifyFn) {
        *self.shared.notify.write() = Some(notify);
    }

    /// Install (or clear) a failure-injection plan for this port's
    /// outbound messages.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.shared.faults.write() = plan;
    }

    /// Enqueue a message for transmission. Cheap and syscall-free; the
    /// socket work happens in [`TcpPort::pump_send`].
    ///
    /// # Panics
    /// Panics if `message.dst` is out of range or `message.src` does not
    /// match this port.
    pub fn send(&self, message: Message) {
        assert_eq!(message.src, self.shared.locality, "src must be this port");
        assert!(
            (message.dst as usize) < self.shared.mesh.addrs.len(),
            "destination {} out of range",
            message.dst
        );
        self.shared.stats.enqueued.fetch_add(1, Ordering::Relaxed);
        self.shared
            .outbound_tx
            .send(message)
            .expect("outbound channel lives as long as the transport");
        self.shared.notify();
    }

    /// Pump outbound messages: encode queued messages into frames, stage
    /// them on per-destination write buffers and drive non-blocking
    /// writes. Returns `true` if any work was done.
    pub fn pump_send(&self) -> bool {
        let shared = &self.shared;
        // Another thread already pumping this port's sockets? Yield.
        let Some(mut conns) = shared.conns.try_lock() else {
            return false;
        };
        let mut did_work = false;
        // Release delay/reorder-parked frames that are due (their
        // statistics were charged when they first passed below).
        let mut released = Vec::new();
        shared.reorder.lock().drain_ready(&mut released);
        for (dst, frame) in released {
            let _guard = ProcessingGuard::enter(&shared.processing);
            did_work = true;
            stage_frame(shared, &mut conns, dst, frame);
        }
        for _ in 0..PUMP_BATCH {
            let Ok(message) = shared.outbound_rx.try_recv() else {
                break;
            };
            let _guard = ProcessingGuard::enter(&shared.processing);
            did_work = true;
            shared.stats.sent_messages.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .sent_bytes
                .fetch_add(wire_len(&message) as u64, Ordering::Relaxed);
            // Failure injection, mirroring the simulated backend: the
            // send cost is paid, then the wire loses, mangles, duplicates,
            // delays or reorders the frame.
            let plan = shared.faults.read().clone();
            let (action, delay, window) = match &plan {
                Some(p) => (p.decide(), p.delay, p.reorder_window.unwrap_or(1)),
                None => (FaultAction::Deliver, std::time::Duration::ZERO, 1),
            };
            if action != FaultAction::Reorder {
                // Everything reaching the wire overtakes parked frames
                // (dropped messages consumed a wire slot too).
                shared.reorder.lock().on_pass();
            }
            let dst = message.dst as usize;
            match action {
                FaultAction::Drop => continue,
                FaultAction::Corrupt => {
                    let mut frame = encode_frame(&message);
                    corrupt_frame(&mut frame);
                    stage_frame(shared, &mut conns, dst, frame);
                }
                FaultAction::Duplicate => {
                    let frame = encode_frame(&message);
                    stage_frame(shared, &mut conns, dst, frame.clone());
                    stage_frame(shared, &mut conns, dst, frame);
                }
                FaultAction::Delay => {
                    // No delivery clock on this backend: park the frame
                    // with the delay as its (sole) release deadline.
                    let frame = encode_frame(&message);
                    shared
                        .reorder
                        .lock()
                        .hold_for((dst, frame), u64::MAX, delay);
                }
                FaultAction::Reorder => {
                    let frame = encode_frame(&message);
                    shared.reorder.lock().hold((dst, frame), window);
                }
                FaultAction::Deliver => {
                    stage_frame(shared, &mut conns, dst, encode_frame(&message))
                }
            }
        }
        // Flush every connection with buffered bytes (including leftovers
        // from earlier pumps that hit WouldBlock).
        for (dst, slot) in conns.iter_mut().enumerate() {
            if let Some(conn) = slot {
                if !conn.pending.is_empty() {
                    did_work |= flush_conn(&shared.mesh, dst, conn);
                }
            }
        }
        did_work
    }

    /// Deliver received messages to the handler on the calling thread.
    /// Returns `true` if any message was delivered.
    pub fn pump_recv(&self) -> bool {
        let handler = self.shared.receiver.read().clone();
        let Some(handler) = handler else {
            return false;
        };
        let mut did_work = false;
        for _ in 0..PUMP_BATCH {
            let Ok(message) = self.shared.inbound_rx.try_recv() else {
                break;
            };
            let _guard = ProcessingGuard::enter(&self.shared.processing);
            did_work = true;
            self.shared
                .stats
                .received_messages
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .received_bytes
                .fetch_add(wire_len(&message) as u64, Ordering::Relaxed);
            handler(message);
        }
        did_work
    }

    /// Convenience: one full pump pass (send then receive).
    pub fn pump(&self) -> bool {
        let s = self.pump_send();
        let r = self.pump_recv();
        s || r
    }

    /// Messages queued but not yet staged on a socket (including any
    /// parked by delay/reorder fault injection).
    pub fn outbound_backlog(&self) -> usize {
        self.shared.outbound_rx.len() + self.shared.reorder.lock().len()
    }

    /// Frames on the wire towards this port (write buffers + kernel +
    /// reader) plus decoded messages awaiting `pump_recv`.
    pub fn inflight_backlog(&self) -> usize {
        self.shared.mesh.in_wire[self.shared.locality as usize].load(Ordering::Acquire) as usize
            + self.shared.inbound_rx.len()
    }

    /// Messages currently mid-pump on this port.
    pub fn processing(&self) -> usize {
        self.shared.processing.load(Ordering::Acquire)
    }
}

/// Stage an encoded frame on the write buffer towards `dst`, accounting
/// it in the in-wire gauge. Frames to unreachable/broken destinations
/// are discarded (the wire "lost" them).
fn stage_frame(shared: &TcpShared, conns: &mut [Option<OutConn>], dst: usize, frame: Vec<u8>) {
    let Some(conn) = ensure_conn(shared, conns, dst) else {
        return;
    };
    if conn.broken {
        return;
    }
    shared.mesh.in_wire[dst].fetch_add(1, Ordering::AcqRel);
    conn.pending.push_back(frame);
}

/// Get (or lazily establish) the outgoing connection to `dst`.
fn ensure_conn<'a>(
    shared: &TcpShared,
    conns: &'a mut [Option<OutConn>],
    dst: usize,
) -> Option<&'a mut OutConn> {
    if conns[dst].is_none() {
        let stream = TcpStream::connect(shared.mesh.addrs[dst]).ok()?;
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true).ok()?;
        conns[dst] = Some(OutConn {
            stream,
            pending: VecDeque::new(),
            offset: 0,
            broken: false,
        });
    }
    conns[dst].as_mut()
}

impl TransportPort for TcpPort {
    fn locality(&self) -> u32 {
        TcpPort::locality(self)
    }
    fn stats(&self) -> &PortStats {
        TcpPort::stats(self)
    }
    fn send(&self, message: Message) {
        TcpPort::send(self, message)
    }
    fn pump_send(&self) -> bool {
        TcpPort::pump_send(self)
    }
    fn pump_recv(&self) -> bool {
        TcpPort::pump_recv(self)
    }
    fn set_receiver(&self, handler: ReceiveHandler) {
        TcpPort::set_receiver(self, handler)
    }
    fn set_notify(&self, notify: NotifyFn) {
        TcpPort::set_notify(self, notify)
    }
    fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        TcpPort::set_fault_plan(self, plan)
    }
    fn outbound_backlog(&self) -> usize {
        TcpPort::outbound_backlog(self)
    }
    fn inflight_backlog(&self) -> usize {
        TcpPort::inflight_backlog(self)
    }
    fn processing(&self) -> usize {
        TcpPort::processing(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame_len;
    use crate::message::MessageKind;
    use bytes::Bytes;
    use std::time::{Duration, Instant};

    fn msg(src: u32, dst: u32, payload: &[u8]) -> Message {
        Message::new(
            src,
            dst,
            MessageKind::Parcel,
            Bytes::copy_from_slice(payload),
        )
    }

    fn pump_until<F: Fn() -> bool>(ports: &[TcpPort], done: F, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !done() {
            for p in ports {
                p.pump();
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    #[test]
    fn message_travels_over_real_sockets() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        a.send(msg(0, 1, b"over tcp"));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || !got.lock().is_empty(),
            Duration::from_secs(30)
        ));
        assert_eq!(got.lock()[0].as_ref(), b"over tcp");
        assert_eq!(
            a.stats().sent_bytes.load(Ordering::Relaxed),
            frame_len(8) as u64
        );
        assert_eq!(
            b.stats().received_bytes.load(Ordering::Relaxed),
            frame_len(8) as u64
        );
    }

    #[test]
    fn fifo_order_preserved_per_link() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload[0])));
        for i in 0..50u8 {
            a.send(msg(0, 1, &[i]));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 50,
            Duration::from_secs(30)
        ));
        assert_eq!(*got.lock(), (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn large_payload_crosses_kernel_buffers() {
        // Larger than a default loopback socket buffer: forces the
        // WouldBlock path and multi-pump partial writes.
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let payload: Vec<u8> = (0..3 * 1024 * 1024u32).map(|i| i as u8).collect();
        let expect = payload.clone();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        a.send(msg(0, 1, &payload));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || !got.lock().is_empty(),
            Duration::from_secs(60)
        ));
        assert_eq!(got.lock()[0].as_ref(), &expect[..]);
    }

    #[test]
    fn corrupt_fault_counts_decode_failure() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::corrupt_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"abcdef"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 5
                && b.stats().decode_failures.load(Ordering::SeqCst) == 5,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn drop_fault_loses_the_message() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::drop_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"x"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 5,
            Duration::from_secs(30)
        ));
        // Give stragglers a chance, then confirm nothing else arrives.
        std::thread::sleep(Duration::from_millis(50));
        for p in [&a, &b] {
            p.pump();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn send_to_self_is_allowed() {
        let transport = TcpTransport::new(1).expect("bind loopback");
        let a = transport.port(0);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        a.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.send(msg(0, 0, b"self"));
        assert!(pump_until(
            std::slice::from_ref(&a),
            || hits.load(Ordering::SeqCst) == 1,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn teardown_joins_all_threads_quickly() {
        let t0 = Instant::now();
        {
            let transport = TcpTransport::new(4).expect("bind loopback");
            let a = transport.port(0);
            transport.port(1).set_receiver(Arc::new(|_| {}));
            a.send(msg(0, 1, b"x"));
            a.pump_send();
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "teardown hung");
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::duplicate_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"dup"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 15,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn reorder_fault_delivers_everything() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload[0])));
        a.set_fault_plan(Some(Arc::new(FaultPlan::reorder_window(4))));
        for i in 0..16u8 {
            a.send(msg(0, 1, &[i]));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 16,
            Duration::from_secs(30)
        ));
        assert_eq!(a.outbound_backlog(), 0, "stage fully drained");
        let mut seen = got.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<u8>>(), "nothing lost");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_panics() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        transport.port(0).send(msg(0, 7, b"x"));
    }
}
