//! The loopback-TCP transport: real kernel sockets between localities,
//! driven by an event loop instead of a thread per connection.
//!
//! Where [`crate::SimTransport`] *models* per-message software overhead
//! with a [`crate::LinkModel`], this backend pays the genuine price: every
//! message is a length-prefixed frame ([`crate::frame`]) written to a
//! `127.0.0.1` TCP stream, so per-message syscall overhead, kernel
//! buffering and Nagle-free small-write costs are all real. This is what
//! lets the reproduction check that conclusions drawn on the simulated
//! LogP fabric carry over to a transport with true per-message costs.
//!
//! ## Threading model
//!
//! * **`send`** enqueues onto an in-process outbound queue — never a
//!   syscall on the caller.
//! * **`pump_send`** (scheduler background work) drains the queue,
//!   encodes frames, and drives *non-blocking* vectored writes
//!   (`writev`) on one lazily connected stream per destination.
//!   Partially written frames stay buffered at a byte offset; when a
//!   socket pushes back (`WouldBlock`) the connection arms `EPOLLOUT`
//!   on its pump shard, and the pump thread finishes the flush as soon
//!   as the kernel drains — queued bytes no longer starve waiting for
//!   the next scheduler pump. All socket work initiated by `pump_send`
//!   is charged to the `/threads/background-work` account, exactly like
//!   the simulated backend, keeping the paper's Eq. 4 network overhead
//!   comparable across backends.
//! * A small fixed pool of **pump threads** (default 1, see
//!   [`TcpTuning::pump_threads`]) multiplexes *every* socket — listeners,
//!   inbound and outbound streams — through one readiness
//!   [`Poller`] per thread (epoll on Linux). Connections are sharded
//!   over the pool by a `(src, dst)` hash; the total thread count is
//!   `O(pump_threads)`, not `O(connections)`.
//! * Inbound streams are read with **vectored reads** (`readv`)
//!   straight into the spare capacity of a recycled per-connection
//!   [`BytesMut`] receive buffer. Complete frames are split off as a
//!   refcounted [`bytes::Bytes`] chunk and decoded **in place**
//!   ([`crate::frame::decode_frame_in_place`]): a delivered message's
//!   payload is a zero-copy slice of the receive chunk, with no
//!   intermediate `Vec<u8>` per frame. Frames that outlive the buffer
//!   (e.g. parked in the reliability layer's out-of-order window) stay
//!   valid because the chunk is refcounted — the buffer "recycles" by
//!   growing a fresh allocation while live chunks pin the old one.
//! * **`pump_recv`** (background work again) drains the inbound queue and
//!   invokes the receive handler on the pumping thread — receive-side
//!   handler work lands on scheduler threads, as in HPX.
//!
//! Teardown is "wake the pollers, drain, join the pump pool": no
//! per-connection threads to chase, so shutdown latency is independent
//! of the number of open connections.
//!
//! This backend requires a Unix-like target (Linux gets the epoll fast
//! path; other Unixes fall back to [`rpx_util::poll`]'s portable
//! sleep-poller).
//!
//! Quiescence accounting: a transport-wide per-destination `in_wire`
//! gauge rises when a frame enters a write buffer and falls only *after*
//! the decoded message is visible in the destination's inbound queue, so
//! `inflight_backlog` never momentarily under-counts a frame that lives
//! in kernel buffers.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{BufMut, Bytes, BytesMut};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use rpx_util::poll::{read_vectored_spare, BellRinger, Doorbell, Fd, Interest, Poller};
use rpx_util::sync::{RingPush, SpscConsumer, SpscProducer};

use crate::bootstrap::TcpBootstrap;
use crate::fabric::PortStats;
use crate::fault::{FaultAction, FaultPlan, FaultStage};
use crate::frame::{check_body_len, corrupt_frame, decode_frame_in_place, encode_frame, wire_len};
use crate::message::{DeliveryClass, Message};
use crate::shm::{ShmNamespace, ShmSegment, ShmTuning};
use crate::transport::{NotifyFn, ReceiveHandler, Transport, TransportPort};

/// Messages one pump call processes before yielding (matches the
/// simulated backend's batch bound).
const PUMP_BATCH: usize = 8;

/// Frames batched into one `writev` call.
const WRITEV_BATCH: usize = 16;

/// Minimum spare receive-buffer capacity before a `readv`.
const READ_MIN: usize = 16 * 1024;

/// Initial per-connection receive buffer capacity.
const RECV_BUF_INIT: usize = 64 * 1024;

/// Per-pump-thread overflow slice appended to every `readv`, so a burst
/// larger than the buffer's spare capacity still lands in one syscall.
const SCRATCH_LEN: usize = 64 * 1024;

/// Fallback poll tick: pump threads re-check the shutdown flag at least
/// this often even if a wake is somehow missed.
const POLL_TICK: Duration = Duration::from_millis(500);

// ---- poller token scheme ---------------------------------------------
//
// The top nibble classifies the registration; the low bits identify it.
// Localities fit in 24 bits by the `with_tuning` assertion.

const TOKEN_CLASS_SHIFT: u32 = 60;
const CLASS_LISTENER: u64 = 1;
const CLASS_OUT: u64 = 2;
const CLASS_IN: u64 = 3;
const CLASS_BELL: u64 = 4;

/// Records popped per ring per drain pass (bounds handler latency the
/// same way `PUMP_BATCH` bounds queue drains).
const SHM_POP_BATCH: usize = 64;

/// Consecutive empty zero-timeout polls a pump thread tolerates in shm
/// hot mode before parking (clearing the rings' polling flags and
/// falling back to doorbell wakeups). Sized so a steady message stream
/// never re-arms the bell — producers pay a plain flag load instead of
/// a `sendto` per empty→non-empty edge — while a quiet port stops
/// burning its core within a few hundred microseconds.
const SHM_HOT_IDLE_POLLS: u32 = 256;

/// Empty re-check spins after a productive doorbell drain before going
/// back to `epoll_wait`: a pinging producer usually publishes the next
/// frame within this window, saving a full doorbell round-trip.
const SHM_DRAIN_SPINS: u32 = 64;

fn listener_token(locality: u32) -> u64 {
    (CLASS_LISTENER << TOKEN_CLASS_SHIFT) | locality as u64
}

fn bell_token(locality: u32) -> u64 {
    (CLASS_BELL << TOKEN_CLASS_SHIFT) | locality as u64
}

fn out_token(src: u32, dst: u32) -> u64 {
    (CLASS_OUT << TOKEN_CLASS_SHIFT) | ((src as u64) << 24) | dst as u64
}

fn in_token(id: u64) -> u64 {
    (CLASS_IN << TOKEN_CLASS_SHIFT) | id
}

fn raw_fd<T: AsRawFd>(s: &T) -> Fd {
    s.as_raw_fd() as Fd
}

/// Tuning knobs for the event-driven TCP backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTuning {
    /// Number of pump (event-loop) threads sharing the connections.
    /// Each owns one poller; connections are sharded over the pool by a
    /// `(src, dst)` hash. `0` is treated as `1`. The default (1) is
    /// right for loopback meshes up to a few thousand connections;
    /// raise it only when one core cannot drain the aggregate traffic.
    pub pump_threads: usize,
}

impl Default for TcpTuning {
    fn default() -> TcpTuning {
        TcpTuning { pump_threads: 1 }
    }
}

/// Transport-wide state shared by every port and thread.
///
/// In multi-process mode the mesh describes the *whole cluster* — the
/// address book covers every rank — while `TcpTransport::ports` holds
/// endpoints only for the ranks this process hosts.
struct Mesh {
    /// Listener address of every locality, indexed by locality id.
    addrs: Vec<SocketAddr>,
    /// Frames somewhere between a sender's write buffer and the
    /// destination's inbound queue, indexed by destination locality.
    in_wire: Vec<AtomicU64>,
    /// Set once at teardown; pump threads drain and exit.
    shutdown: AtomicBool,
    /// One poller per pump thread.
    shards: Vec<Arc<Poller>>,
    /// File-backed shm segments this process attached, kept until their
    /// unlink-when-both-attached handshake completes (pump threads sweep
    /// the list) and force-unlinked at teardown.
    shm_segments: Mutex<Vec<Arc<ShmSegment>>>,
}

impl Mesh {
    /// The poll shard responsible for the `src → dst` outgoing stream.
    fn out_shard(&self, src: u32, dst: u32) -> &Poller {
        let h = (src as usize).wrapping_mul(31).wrapping_add(dst as usize);
        &self.shards[h % self.shards.len()]
    }

    /// Saturating decrement of a destination's in-wire gauge. Frames
    /// injected from outside the mesh (raw benchmark clients) were
    /// never accounted, and must not wrap the gauge.
    fn unwire(&self, dst: usize) {
        self.unwire_n(dst, 1);
    }

    /// Drop `n` frames' worth of in-wire accounting at once (one atomic
    /// update per decoded batch). Saturates at zero: raw test/bench
    /// clients inject frames the send side never accounted for.
    fn unwire_n(&self, dst: usize, n: u64) {
        let _ = self.in_wire[dst].fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
            Some(v.saturating_sub(n))
        });
    }
}

/// One lazily established outgoing connection with its write buffer.
struct OutConn {
    stream: TcpStream,
    /// Encoded frames not yet (fully) written, FIFO.
    pending: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written; a partial frame
    /// resumes from here on the next flush, wherever it runs.
    offset: usize,
    /// A write error occurred; frames to this destination are discarded.
    broken: bool,
    /// Whether `EPOLLOUT` is currently armed on the poll shard (only
    /// while bytes are pending, to avoid level-triggered busy-wakes).
    armed: bool,
}

/// One accepted inbound connection, owned by its pump thread.
struct InConn {
    stream: TcpStream,
    /// Recycled receive buffer; complete frames are split off zero-copy.
    buf: BytesMut,
    /// The destination port whose listener accepted this stream.
    port: Arc<TcpShared>,
}

struct TcpShared {
    locality: u32,
    mesh: Arc<Mesh>,
    outbound_tx: Sender<Message>,
    outbound_rx: Receiver<Message>,
    inbound_tx: Sender<Message>,
    inbound_rx: Receiver<Message>,
    /// Per-destination outgoing connections; also serialises `pump_send`
    /// (a pump that loses the `try_lock` race simply yields — another
    /// thread is already writing). Pump threads take the lock (blocking,
    /// but only for the duration of one flush) to finish writes on
    /// `EPOLLOUT`.
    conns: Mutex<Vec<Option<OutConn>>>,
    receiver: RwLock<Option<ReceiveHandler>>,
    notify: RwLock<Option<NotifyFn>>,
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Encoded frames parked by delay/reorder fault injection, keyed by
    /// destination. Counted in `outbound_backlog` so quiescence checks
    /// see them.
    reorder: Mutex<FaultStage<(usize, Vec<u8>)>>,
    stats: PortStats,
    /// Messages mid-pump (same contract as the simulated backend).
    processing: AtomicUsize,
    /// Frames staged on this port's write buffers but not yet written to
    /// a socket. The receiver-side `in_wire` gauge lives in the
    /// *destination's* process, so a sender needs its own count of
    /// not-yet-on-the-wire frames for quiescence across process
    /// boundaries. Frames parked because a shared-memory ring was full
    /// are counted here too.
    staged: AtomicUsize,
    /// Shared-memory senders towards co-located destinations, keyed by
    /// destination rank. Empty when the shm backend is disabled or no
    /// destination shares this host. Locked after `conns` (never the
    /// other way) — pump threads flushing on a doorbell take it alone.
    shm_tx: Mutex<HashMap<usize, ShmSender>>,
    /// For each shm ring pointing *at* this rank: the segment and the
    /// ring index, whose shared in-flight gauge feeds
    /// [`TcpPort::inflight_backlog`] (visible across processes because
    /// it lives in the mapped header).
    shm_rx_inflight: Vec<(Arc<ShmSegment>, usize)>,
    /// The consumer halves of every ring pointing at this rank. Any
    /// `pump_recv` caller may drain them (`try_lock` — if contended,
    /// another thread is already draining); the rank's doorbell wakes a
    /// pump thread, which takes the lock *blocking* so a rung bell is
    /// never lost between a racing drainer's last empty pop and its
    /// unlock. This direct path is what makes shm latency beat sockets:
    /// the receiving scheduler thread pops the ring itself instead of
    /// waiting for an eventfd → epoll → pump-thread → queue detour.
    shm_rx: Mutex<Vec<ShmRecvRing>>,
}

/// How a sender announces "data is waiting" to a co-located consumer.
#[derive(Clone)]
enum ShmBell {
    /// The destination rank lives in this process: write its eventfd.
    Local(Arc<Doorbell>),
    /// The destination rank is another process on this host: ring its
    /// abstract-namespace doorbell by name.
    Remote(Arc<BellRinger>, String),
}

impl ShmBell {
    fn ring(&self) {
        match self {
            ShmBell::Local(bell) => bell.ring_local(),
            ShmBell::Remote(ringer, name) => {
                let _ = ringer.ring(name);
            }
        }
    }
}

/// The sending half of one same-host link: the SPSC producer plus an
/// overflow queue for frames that found the ring full.
struct ShmSender {
    tx: SpscProducer,
    seg: Arc<ShmSegment>,
    /// Ring index (0 = `lo→hi`) this sender publishes into, for the
    /// shared in-flight gauge.
    ring: usize,
    /// Frames waiting for ring space, FIFO (counted in `staged`).
    pending: VecDeque<Vec<u8>>,
    /// The destination's doorbell.
    bell: ShmBell,
}

/// The receiving half of one same-host link, shared by every thread
/// that pumps the destination rank (see [`TcpShared::shm_rx`]).
struct ShmRecvRing {
    rx: SpscConsumer,
    seg: Arc<ShmSegment>,
    /// Ring index this consumer reads (for the shared in-flight gauge).
    ring: usize,
    /// The *source* rank's doorbell, rung when a pop frees space a
    /// backpressured producer is waiting for.
    src_bell: ShmBell,
    /// Set when the ring reported poisoned content; never read again.
    dead: bool,
}

/// One hosted rank's doorbell, owned by the pump thread that registered
/// its fds (the rings themselves live in [`TcpShared::shm_rx`]).
struct ShmRecvState {
    port: Arc<TcpShared>,
    doorbell: Arc<Doorbell>,
}

impl TcpShared {
    fn notify(&self) {
        if let Some(n) = self.notify.read().as_ref() {
            n();
        }
    }
}

/// Decrements the processing gauge on drop (panic-safe).
struct ProcessingGuard<'a>(&'a AtomicUsize);

impl<'a> ProcessingGuard<'a> {
    fn enter(gauge: &'a AtomicUsize) -> Self {
        gauge.fetch_add(1, Ordering::Acquire);
        ProcessingGuard(gauge)
    }
}

impl Drop for ProcessingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// The loopback-TCP network connecting all localities of a cluster.
///
/// In all-in-one mode every locality's endpoint lives here; in
/// multi-process mode ([`TcpTransport::from_bootstrap`] with a
/// [`TcpBootstrap`] hosting a single rank) only the hosted ranks have
/// ports, and the address book routes everything else over real
/// process-crossing sockets.
pub struct TcpTransport {
    /// Endpoint per locality id; `None` for ranks hosted elsewhere.
    ports: Vec<Option<Arc<TcpShared>>>,
    mesh: Arc<Mesh>,
    tuning: TcpTuning,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Bind one loopback listener per locality and start the default
    /// pump pool (one event-loop thread).
    ///
    /// # Errors
    /// Fails if a listener cannot be bound on `127.0.0.1` or a poller
    /// cannot be created.
    pub fn new(localities: u32) -> std::io::Result<Arc<Self>> {
        TcpTransport::with_tuning(localities, TcpTuning::default())
    }

    /// [`TcpTransport::new`] with explicit [`TcpTuning`].
    ///
    /// All-in-one mode is the degenerate bootstrap where every rank is
    /// hosted in this process ([`TcpBootstrap::in_process`]).
    ///
    /// # Errors
    /// Fails if a listener cannot be bound on `127.0.0.1` or a poller
    /// cannot be created.
    pub fn with_tuning(localities: u32, tuning: TcpTuning) -> std::io::Result<Arc<Self>> {
        assert!(localities > 0, "transport needs at least one locality");
        TcpTransport::from_bootstrap(TcpBootstrap::in_process(localities)?, tuning)
    }

    /// [`TcpTransport::with_tuning`] with the shared-memory backend
    /// enabled: all localities live in this process, so every pair
    /// exchanges frames over heap SPSC rings (no files, any OS) and TCP
    /// only carries frames too large for a ring record.
    ///
    /// # Errors
    /// Fails if a listener cannot be bound on `127.0.0.1` or a poller
    /// cannot be created.
    pub fn with_tuning_shm(localities: u32, tuning: ShmTuning) -> std::io::Result<Arc<Self>> {
        assert!(localities > 0, "transport needs at least one locality");
        TcpTransport::build(
            TcpBootstrap::in_process(localities)?,
            tuning.tcp,
            Some(tuning.ring_bytes),
        )
    }

    /// [`TcpTransport::from_bootstrap`] with the shared-memory backend
    /// enabled: destinations whose boot-time host identity matches ours
    /// ([`TcpBootstrap::same_host`]) are reached through SPSC rings in
    /// an mmap'd `/dev/shm` segment (heap-backed when the peer rank is
    /// hosted by this very process) and woken by doorbell; everything
    /// else — remote hosts, frames larger than a ring record, or hosts
    /// where segment setup fails — rides the normal TCP path.
    ///
    /// Per-link FIFO holds within each path; a frame that falls back to
    /// TCP may be overtaken by later ring frames (the reliability
    /// layer's sequencing heals this for sequenced traffic).
    ///
    /// # Errors
    /// Fails if a poller cannot be created or a listener rejects
    /// non-blocking mode. Shared-memory setup failures are *not* errors:
    /// affected links quietly fall back to TCP.
    pub fn from_bootstrap_shm(
        bootstrap: TcpBootstrap,
        tuning: ShmTuning,
    ) -> std::io::Result<Arc<Self>> {
        TcpTransport::build(bootstrap, tuning.tcp, Some(tuning.ring_bytes))
    }

    /// Build the transport over a completed boot handshake: the
    /// bootstrap's address book names every rank, its listeners are the
    /// ranks this process hosts. One code path serves in-process,
    /// address-book and rendezvous boots.
    ///
    /// # Errors
    /// Fails if a poller cannot be created or a listener rejects
    /// non-blocking mode.
    pub fn from_bootstrap(
        bootstrap: TcpBootstrap,
        tuning: TcpTuning,
    ) -> std::io::Result<Arc<Self>> {
        TcpTransport::build(bootstrap, tuning, None)
    }

    /// The one constructor behind every public entry point.
    /// `shm_ring_bytes` enables the shared-memory backend with that ring
    /// size; `None` builds the classic all-TCP transport.
    fn build(
        bootstrap: TcpBootstrap,
        tuning: TcpTuning,
        shm_ring_bytes: Option<usize>,
    ) -> std::io::Result<Arc<Self>> {
        // Same-host wiring needs the bootstrap's host identities, so it
        // runs before the destructure consumes them.
        let mut shm = match shm_ring_bytes {
            Some(rb) => build_shm_wiring(&bootstrap, rb),
            None => ShmWiring::default(),
        };
        let TcpBootstrap {
            local,
            addrs,
            host_ids,
        } = bootstrap;
        let _ = host_ids; // folded into the shm wiring above

        let localities = addrs.len() as u32;
        assert!(localities > 0, "transport needs at least one locality");
        assert!(
            localities < (1 << 24),
            "locality id must fit the token scheme"
        );
        let pump_threads = tuning.pump_threads.max(1);
        let shards: Vec<Arc<Poller>> = (0..pump_threads)
            .map(|_| Poller::new().map(Arc::new))
            .collect::<std::io::Result<_>>()?;
        let mesh = Arc::new(Mesh {
            addrs,
            in_wire: (0..localities).map(|_| AtomicU64::new(0)).collect(),
            shutdown: AtomicBool::new(false),
            shards,
            shm_segments: Mutex::new(std::mem::take(&mut shm.mapped)),
        });
        let mut ports: Vec<Option<Arc<TcpShared>>> = (0..localities).map(|_| None).collect();
        for (rank, _) in &local {
            let (outbound_tx, outbound_rx) = unbounded();
            let (inbound_tx, inbound_rx) = unbounded();
            let (shm_senders, shm_gauges, shm_recv) = match shm.per_rank.get_mut(rank) {
                Some(w) => (
                    std::mem::take(&mut w.senders),
                    std::mem::take(&mut w.gauges),
                    std::mem::take(&mut w.recv),
                ),
                None => (HashMap::new(), Vec::new(), Vec::new()),
            };
            ports[*rank as usize] = Some(Arc::new(TcpShared {
                locality: *rank,
                mesh: Arc::clone(&mesh),
                outbound_tx,
                outbound_rx,
                inbound_tx,
                inbound_rx,
                conns: Mutex::new((0..localities).map(|_| None).collect()),
                receiver: RwLock::new(None),
                notify: RwLock::new(None),
                faults: RwLock::new(None),
                reorder: Mutex::new(FaultStage::default()),
                stats: PortStats::default(),
                processing: AtomicUsize::new(0),
                staged: AtomicUsize::new(0),
                shm_tx: Mutex::new(shm_senders),
                shm_rx_inflight: shm_gauges,
                shm_rx: Mutex::new(shm_recv),
            }));
        }
        // Shard the hosted listeners over the pump pool; each thread owns
        // the listeners (and the inbound streams they accept) of its
        // shard, plus the doorbells of its ranks. Hosted ranks are
        // enumerated in order, so the all-in-one mode keeps its
        // historical `locality % pump_threads` layout.
        let mut shard_listeners: Vec<Vec<(u32, TcpListener)>> =
            (0..pump_threads).map(|_| Vec::new()).collect();
        let mut shard_shm: Vec<Vec<ShmRecvState>> = (0..pump_threads).map(|_| Vec::new()).collect();
        for (idx, (rank, listener)) in local.into_iter().enumerate() {
            listener.set_nonblocking(true)?;
            let shard = idx % pump_threads;
            shard_listeners[shard].push((rank, listener));
            if let Some(w) = shm.per_rank.remove(&rank) {
                shard_shm[shard].push(ShmRecvState {
                    port: Arc::clone(ports[rank as usize].as_ref().expect("hosted rank")),
                    doorbell: w.doorbell,
                });
            }
        }
        let pumps = shard_listeners
            .into_iter()
            .zip(shard_shm)
            .enumerate()
            .map(|(shard, (listeners, shm_states))| {
                let poller = Arc::clone(&mesh.shards[shard]);
                let mesh = Arc::clone(&mesh);
                let ports = ports.clone();
                std::thread::Builder::new()
                    .name(format!("rpx-tcp-pump{shard}"))
                    .spawn(move || run_pump(poller, mesh, ports, listeners, shm_states))
                    .expect("spawn pump thread")
            })
            .collect();
        Ok(Arc::new(TcpTransport {
            ports,
            mesh,
            tuning: TcpTuning { pump_threads },
            pumps: Mutex::new(pumps),
        }))
    }

    /// Number of localities in the cluster (hosted here or not).
    pub fn localities(&self) -> u32 {
        self.mesh.addrs.len() as u32
    }

    /// The effective tuning (after clamping).
    pub fn tuning(&self) -> TcpTuning {
        self.tuning
    }

    /// The loopback address `locality`'s listener is bound to. External
    /// clients (benchmark harnesses) can connect raw `TcpStream`s here
    /// and write encoded frames.
    ///
    /// # Panics
    /// Panics if `locality` is out of range.
    pub fn listen_addr(&self, locality: u32) -> SocketAddr {
        self.mesh.addrs[locality as usize]
    }

    /// The port of `locality`.
    ///
    /// # Panics
    /// Panics if `locality` is out of range or hosted by another
    /// process.
    pub fn port(&self, locality: u32) -> TcpPort {
        assert!(
            (locality as usize) < self.ports.len(),
            "locality {locality} out of range"
        );
        let shared = self.ports[locality as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("locality {locality} is not hosted by this process"));
        TcpPort {
            shared: Arc::clone(shared),
        }
    }

    /// The localities whose endpoints live in this process.
    pub fn hosted(&self) -> Vec<u32> {
        self.ports
            .iter()
            .filter_map(|p| p.as_ref().map(|s| s.locality))
            .collect()
    }
}

impl Transport for TcpTransport {
    fn localities(&self) -> u32 {
        TcpTransport::localities(self)
    }

    fn port(&self, locality: u32) -> Arc<dyn TransportPort> {
        Arc::new(TcpTransport::port(self, locality))
    }
}

/// Per-hosted-rank shared-memory wiring produced before the transport's
/// shared state exists (consumers/doorbell move into the rank's pump
/// thread; senders/gauges into its `TcpShared`).
struct ShmRankWiring {
    senders: HashMap<usize, ShmSender>,
    gauges: Vec<(Arc<ShmSegment>, usize)>,
    doorbell: Arc<Doorbell>,
    recv: Vec<ShmRecvRing>,
}

#[derive(Default)]
struct ShmWiring {
    per_rank: HashMap<u32, ShmRankWiring>,
    /// File-backed segments (for the unlink sweep).
    mapped: Vec<Arc<ShmSegment>>,
}

/// Negotiate shared-memory links for every hosted rank: a heap segment
/// per co-hosted pair (and self-loop), an mmap'd `/dev/shm` segment per
/// same-host-other-process pair, a doorbell per rank. Infallible by
/// design — any setup failure (doorbell name taken, segment attach
/// timeout, non-Linux target for the file path) just leaves that link
/// on TCP.
fn build_shm_wiring(boot: &TcpBootstrap, ring_bytes: usize) -> ShmWiring {
    let mut w = ShmWiring::default();
    let addrs = &boot.addrs;
    let port_of = |r: u32| addrs[r as usize].port();
    let ns = ShmNamespace::from_env_or(port_of(0));
    let ringer: Option<Arc<BellRinger>> = BellRinger::new().ok().map(Arc::new);
    let hosted: Vec<u32> = boot.local.iter().map(|(r, _)| *r).collect();
    let mut bells: HashMap<u32, Arc<Doorbell>> = HashMap::new();
    for &r in &hosted {
        let Ok(bell) = Doorbell::bind(&ns.bell_name(r, port_of(r))) else {
            continue;
        };
        let bell = Arc::new(bell);
        bells.insert(r, Arc::clone(&bell));
        w.per_rank.insert(
            r,
            ShmRankWiring {
                senders: HashMap::new(),
                gauges: Vec::new(),
                doorbell: bell,
                recv: Vec::new(),
            },
        );
    }
    for &me in &hosted {
        if !bells.contains_key(&me) {
            continue;
        }
        for dst in 0..addrs.len() as u32 {
            if !boot.same_host(me, dst) {
                continue;
            }
            if dst == me {
                // Self-loop: one heap ring serves both directions.
                let seg = ShmSegment::heap(ring_bytes);
                // SAFETY: fresh segment; sole producer and consumer.
                let (tx, rx) = unsafe { seg.self_rings() };
                let bell = ShmBell::Local(Arc::clone(&bells[&me]));
                let wr = w.per_rank.get_mut(&me).expect("wired above");
                wr.senders.insert(
                    me as usize,
                    ShmSender {
                        tx,
                        seg: Arc::clone(&seg),
                        ring: 0,
                        pending: VecDeque::new(),
                        bell: bell.clone(),
                    },
                );
                wr.recv.push(ShmRecvRing {
                    rx,
                    seg: Arc::clone(&seg),
                    ring: 0,
                    src_bell: bell,
                    dead: false,
                });
                wr.gauges.push((seg, 0));
            } else if let Some(bell_dst) = bells.get(&dst).cloned() {
                // Both ranks hosted by this process: wire the pair once,
                // from its low side, over a heap segment.
                if me > dst {
                    continue;
                }
                let (lo, hi) = (me, dst);
                let seg = ShmSegment::heap(ring_bytes);
                // SAFETY: fresh segment; each side claimed exactly once.
                let (lo_tx, lo_rx) = unsafe { seg.rings(0) };
                let (hi_tx, hi_rx) = unsafe { seg.rings(1) };
                let bell_lo = ShmBell::Local(Arc::clone(&bells[&lo]));
                let bell_hi = ShmBell::Local(bell_dst);
                let wl = w.per_rank.get_mut(&lo).expect("wired above");
                wl.senders.insert(
                    hi as usize,
                    ShmSender {
                        tx: lo_tx,
                        seg: Arc::clone(&seg),
                        ring: 0,
                        pending: VecDeque::new(),
                        bell: bell_hi.clone(),
                    },
                );
                wl.recv.push(ShmRecvRing {
                    rx: lo_rx,
                    seg: Arc::clone(&seg),
                    ring: 1,
                    src_bell: bell_hi.clone(),
                    dead: false,
                });
                wl.gauges.push((Arc::clone(&seg), 1));
                let wh = w.per_rank.get_mut(&hi).expect("wired above");
                wh.senders.insert(
                    lo as usize,
                    ShmSender {
                        tx: hi_tx,
                        seg: Arc::clone(&seg),
                        ring: 1,
                        pending: VecDeque::new(),
                        bell: bell_lo.clone(),
                    },
                );
                wh.recv.push(ShmRecvRing {
                    rx: hi_rx,
                    seg: Arc::clone(&seg),
                    ring: 0,
                    src_bell: bell_lo,
                    dead: false,
                });
                wh.gauges.push((seg, 0));
            } else {
                // Same host, different process: mmap'd segment file plus
                // named doorbells.
                let Some(ringer) = ringer.clone() else {
                    continue;
                };
                let (lo, hi) = if me < dst { (me, dst) } else { (dst, me) };
                let side = usize::from(me != lo);
                let path = ns.segment_path(lo, hi, port_of(lo), port_of(hi));
                let Ok(seg) = ShmSegment::open_or_create(&path, ring_bytes, side) else {
                    continue;
                };
                // SAFETY: this process is the sole occupant of `side`;
                // the peer process claims the other side.
                let (tx, rx) = unsafe { seg.rings(side) };
                let (tx_ring, rx_ring) = if side == 0 { (0, 1) } else { (1, 0) };
                let bell = ShmBell::Remote(ringer, ns.bell_name(dst, port_of(dst)));
                let wr = w.per_rank.get_mut(&me).expect("wired above");
                wr.senders.insert(
                    dst as usize,
                    ShmSender {
                        tx,
                        seg: Arc::clone(&seg),
                        ring: tx_ring,
                        pending: VecDeque::new(),
                        bell: bell.clone(),
                    },
                );
                wr.recv.push(ShmRecvRing {
                    rx,
                    seg: Arc::clone(&seg),
                    ring: rx_ring,
                    src_bell: bell,
                    dead: false,
                });
                wr.gauges.push((Arc::clone(&seg), rx_ring));
                w.mapped.push(seg);
            }
        }
    }
    w
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.mesh.shutdown.store(true, Ordering::Release);
        // Unlink any segment file whose attach handshake never finished
        // (peer died or never started); mappings stay valid until every
        // ring half drops.
        for seg in self.mesh.shm_segments.lock().drain(..) {
            seg.unlink_now();
        }
        // Drop every outgoing stream (closing removes it from its
        // shard's poller), unaccounting frames that never hit the wire.
        for port in self.ports.iter().flatten() {
            let mut conns = port.conns.lock();
            for (dst, slot) in conns.iter_mut().enumerate() {
                if let Some(conn) = slot.take() {
                    self.mesh.in_wire[dst].fetch_sub(conn.pending.len() as u64, Ordering::AcqRel);
                }
            }
        }
        // Wake every pump thread; each drains its inbound streams once
        // and exits. Shutdown cost is O(pump_threads), independent of
        // the number of open connections.
        for shard in &self.mesh.shards {
            shard.wake();
        }
        for h in self.pumps.lock().drain(..) {
            let _ = h.join();
        }
    }
}

// ---- the event loop ---------------------------------------------------

/// One pump thread: multiplex this shard's listeners, inbound streams
/// and outbound flush work through a single poller.
fn run_pump(
    poller: Arc<Poller>,
    mesh: Arc<Mesh>,
    ports: Vec<Option<Arc<TcpShared>>>,
    listeners: Vec<(u32, TcpListener)>,
    shm_states: Vec<ShmRecvState>,
) {
    let mut inconns: HashMap<u64, InConn> = HashMap::new();
    let mut next_in_id: u64 = 0;
    let mut events = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_LEN];
    for (locality, listener) in &listeners {
        let _ = poller.register(raw_fd(listener), listener_token(*locality), Interest::READ);
    }
    for state in &shm_states {
        // Both doorbell legs (eventfd + named datagram socket) share the
        // rank's bell token. Registration failures degrade to the
        // opportunistic per-wake drain below.
        let token = bell_token(state.port.locality);
        let _ = poller.register(state.doorbell.event_fd(), token, Interest::READ);
        let _ = poller.register(state.doorbell.socket_fd(), token, Interest::READ);
    }
    // Shm hot mode: after doorbell traffic, spin on zero-timeout polls
    // with the rings' polling flags set, so steady streams cross the
    // segment with no syscalls at all (no producer `sendto`, no epoll
    // round trip). Parking clears the flags and re-checks, closing the
    // suppressed-bell race before the thread sleeps again.
    let mut shm_hot = false;
    let mut shm_idle_polls: u32 = 0;
    loop {
        let tick = if shm_hot {
            Some(Duration::ZERO)
        } else {
            Some(POLL_TICK)
        };
        if poller.wait(&mut events, tick).is_err() {
            break;
        }
        let shutting_down = mesh.shutdown.load(Ordering::Acquire);
        let mut shm_activity = 0u64;
        for ev in &events {
            match ev.token >> TOKEN_CLASS_SHIFT {
                CLASS_BELL => {
                    let rank = (ev.token & 0xFF_FFFF) as u32;
                    if let Some(state) = shm_states.iter().find(|s| s.port.locality == rank) {
                        state
                            .port
                            .stats
                            .doorbell_wakeups
                            .fetch_add(1, Ordering::Relaxed);
                        state.doorbell.drain();
                        // A rung bell means either inbound ring data or
                        // freed space a backpressured sender waits for.
                        // Blocking drain: if a pump_recv caller holds the
                        // ring lock right now, we wait it out so the bell
                        // can never race a drainer's final empty pop.
                        shm_activity += 1 + service_shm_rings(&state.port, true, true);
                        flush_shm_pending(&state.port);
                    }
                }
                CLASS_LISTENER => {
                    let locality = (ev.token & 0xFF_FFFF) as usize;
                    let (Some((_, listener)), Some(port)) = (
                        listeners.iter().find(|(l, _)| *l as usize == locality),
                        ports.get(locality).and_then(|p| p.as_ref()),
                    ) else {
                        continue;
                    };
                    accept_ready(
                        &poller,
                        port,
                        listener,
                        &mut inconns,
                        &mut next_in_id,
                        shutting_down,
                    );
                }
                CLASS_OUT => {
                    let src = ((ev.token >> 24) & 0xFF_FFFF) as usize;
                    let dst = (ev.token & 0xFF_FFFF) as usize;
                    // Outgoing streams exist only for hosted sources.
                    let Some(port) = ports.get(src).and_then(|p| p.as_ref()) else {
                        continue;
                    };
                    port.stats.event_wakeups.fetch_add(1, Ordering::Relaxed);
                    let mut conns = port.conns.lock();
                    if let Some(conn) = conns[dst].as_mut() {
                        flush_conn(port, dst, conn);
                        // EPOLLOUT is only armed while bytes pend, so a
                        // readable-flagged event here means error or
                        // peer hang-up, never data.
                        if ev.readable && !conn.broken {
                            break_conn(port, dst, conn);
                        }
                        update_write_interest(port, dst, conn);
                    }
                }
                CLASS_IN => {
                    if let Some(conn) = inconns.get_mut(&ev.token) {
                        conn.port
                            .stats
                            .event_wakeups
                            .fetch_add(1, Ordering::Relaxed);
                        if !service_in_conn(conn, &mut scratch) {
                            let conn = inconns.remove(&ev.token).expect("present");
                            poller.deregister(raw_fd(&conn.stream));
                        }
                    }
                }
                _ => {}
            }
        }
        // Opportunistic shm service on every wake: one atomic load per
        // ring when idle, and the only delivery path on the portable
        // poller (whose pseudo-fd doorbells report ready on its tick).
        for state in &shm_states {
            shm_activity += service_shm_rings(&state.port, false, false);
            flush_shm_pending(&state.port);
        }
        if !shm_states.is_empty() {
            if shm_activity > 0 {
                shm_idle_polls = 0;
                if !shm_hot {
                    shm_hot = true;
                    for state in &shm_states {
                        set_shm_polling(&state.port, true);
                    }
                }
            } else if shm_hot {
                shm_idle_polls += 1;
                if shm_idle_polls > SHM_HOT_IDLE_POLLS {
                    shm_hot = false;
                    shm_idle_polls = 0;
                    for state in &shm_states {
                        if set_shm_polling(&state.port, false) {
                            // Records landed during the transition with
                            // their bells suppressed: drain them before
                            // the thread goes back to sleeping waits.
                            service_shm_rings(&state.port, false, true);
                        }
                    }
                } else {
                    std::thread::yield_now();
                }
            }
        }
        sweep_shm_segments(&mesh);
        if shutting_down {
            // Final drain: frames already in kernel buffers or rings
            // still reach the inbound queue (and settle the gauges).
            for conn in inconns.values_mut() {
                let _ = service_in_conn(conn, &mut scratch);
            }
            for state in &shm_states {
                service_shm_rings(&state.port, false, true);
            }
            break;
        }
    }
}

/// Complete the unlink-when-both-attached handshake for any segment
/// whose peer has arrived; unlinked segments leave the sweep list.
fn sweep_shm_segments(mesh: &Mesh) {
    let mut segs = mesh.shm_segments.lock();
    if !segs.is_empty() {
        segs.retain(|s| !s.maybe_unlink_when_attached());
    }
}

/// Decode one ring record (a full wire frame, length prefix included)
/// through the regular codec. `None` = corrupt (counted by the caller).
fn decode_ring_record(rec: &[u8]) -> Option<Message> {
    if rec.len() < 4 {
        return None;
    }
    let body_len =
        check_body_len(u32::from_le_bytes(rec[..4].try_into().expect("4 bytes"))).ok()?;
    if body_len != rec.len() - 4 {
        return None;
    }
    // Decode in place over the mapped ring bytes; only the payload is
    // copied out (the record's ring space is recycled on return).
    let view = decode_frame_in_place(&rec[4..]).ok()?;
    Some(view.with_payload(Bytes::copy_from_slice(view.payload)))
}

/// Drain every inbound ring of one hosted rank into its inbound queue.
/// With `spin`, empty rings are re-checked for a short bounded window
/// (ping-pong traffic usually publishes the reply within it) before
/// returning to the poller. With `block` the ring lock is taken
/// blocking (pump-thread paths, where a missed drain could strand a
/// rung bell); without it a contended lock means another thread is
/// draining and we return immediately.
fn service_shm_rings(port: &TcpShared, spin: bool, block: bool) -> u64 {
    let mut rings = if block {
        port.shm_rx.lock()
    } else {
        match port.shm_rx.try_lock() {
            Some(guard) => guard,
            None => return 0,
        }
    };
    if rings.is_empty() {
        return 0;
    }
    let mut total = 0u64;
    let mut idle_spins = 0u32;
    loop {
        let mut pass = 0u64;
        for r in rings.iter_mut() {
            if r.dead {
                continue;
            }
            let mut delivered = false;
            let mut decoded = 0u64;
            let mut bytes = 0u64;
            let mut failures = 0u64;
            let pop = r.rx.pop_each(SHM_POP_BATCH, |rec| {
                decoded += 1;
                match decode_ring_record(rec) {
                    Some(message) => {
                        bytes += rec.len() as u64;
                        // Publish before the gauge drop below, so a
                        // quiescence check never misses the frame.
                        let _ = port.inbound_tx.send(message);
                        delivered = true;
                    }
                    None => failures += 1,
                }
            });
            if decoded > 0 {
                r.seg.sub_inflight(r.ring, decoded);
                port.stats
                    .shm_messages
                    .fetch_add(decoded - failures, Ordering::Relaxed);
                port.stats.shm_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            if failures > 0 {
                port.stats
                    .decode_failures
                    .fetch_add(failures, Ordering::Relaxed);
            }
            if delivered {
                port.notify();
            }
            if pop.producer_waiting {
                r.src_bell.ring();
            }
            if pop.poisoned {
                // Impossible length prefix: the ring is beyond recovery.
                // Kill the link (sends fall back to TCP? no — senders
                // live in the peer; we simply stop reading) and settle
                // its gauge so quiescence does not hang.
                r.dead = true;
                port.stats.decode_failures.fetch_add(1, Ordering::Relaxed);
                let stuck = r.seg.inflight(r.ring);
                r.seg.sub_inflight(r.ring, stuck);
            }
            pass += decoded;
        }
        total += pass;
        if pass > 0 {
            idle_spins = 0;
            continue;
        }
        if !spin || idle_spins >= SHM_DRAIN_SPINS {
            break;
        }
        idle_spins += 1;
        std::hint::spin_loop();
    }
    total
}

/// Set or clear the actively-polling flag on every live inbound ring of
/// `port` (pump-thread hot-mode transitions only). Clearing returns
/// `true` if any ring is non-empty afterwards — those records' bells
/// were suppressed, so the caller must drain once more before sleeping.
fn set_shm_polling(port: &TcpShared, active: bool) -> bool {
    let mut rings = port.shm_rx.lock();
    let mut nonempty = false;
    for r in rings.iter_mut() {
        if r.dead {
            continue;
        }
        r.rx.set_polling(active);
        if !active && !r.rx.is_empty() {
            nonempty = true;
        }
    }
    nonempty
}

/// Retry frames parked because their ring was full. Called from both
/// the scheduler-driven `pump_send` and the doorbell path (the consumer
/// rings us back when it frees space).
fn flush_shm_pending(shared: &TcpShared) -> bool {
    let mut senders = shared.shm_tx.lock();
    let mut flushed = false;
    for s in senders.values_mut() {
        while let Some(front) = s.pending.front() {
            // Gauge up *before* the push publishes (conservative), back
            // down if the ring is still full.
            s.seg.add_inflight(s.ring, 1);
            match s.tx.try_push(front) {
                RingPush::Stored { consumer_idle } => {
                    flushed = true;
                    shared.staged.fetch_sub(1, Ordering::AcqRel);
                    s.pending.pop_front();
                    if consumer_idle {
                        s.bell.ring();
                    }
                }
                RingPush::Full => {
                    s.seg.sub_inflight(s.ring, 1);
                    break;
                }
            }
        }
    }
    flushed
}

/// Try to route an encoded frame through the shared-memory link to
/// `dst`. `Err` hands the frame back for the TCP path: no link, or the
/// frame exceeds the ring's record limit.
fn stage_shm(shared: &TcpShared, dst: usize, frame: Vec<u8>) -> Result<(), Vec<u8>> {
    let mut senders = shared.shm_tx.lock();
    let Some(s) = senders.get_mut(&dst) else {
        return Err(frame);
    };
    if frame.len() > s.tx.max_record() {
        // Oversize frames ride TCP; later ring frames may overtake them
        // (per-path FIFO only — reliability sequencing heals the rest).
        return Err(frame);
    }
    if !s.pending.is_empty() {
        // Keep per-link FIFO: nothing overtakes parked frames.
        shared.staged.fetch_add(1, Ordering::AcqRel);
        s.pending.push_back(frame);
        return Ok(());
    }
    s.seg.add_inflight(s.ring, 1);
    match s.tx.try_push(&frame) {
        RingPush::Stored { consumer_idle } => {
            if consumer_idle {
                s.bell.ring();
            }
        }
        RingPush::Full => {
            s.seg.sub_inflight(s.ring, 1);
            shared.staged.fetch_add(1, Ordering::AcqRel);
            s.pending.push_back(frame);
        }
    }
    Ok(())
}

/// Accept everything queued on a ready listener, registering each new
/// stream for reads on this shard.
fn accept_ready(
    poller: &Poller,
    port: &Arc<TcpShared>,
    listener: &TcpListener,
    inconns: &mut HashMap<u64, InConn>,
    next_in_id: &mut u64,
    shutting_down: bool,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutting_down {
                    continue; // drain the queue, admit nobody
                }
                port.stats.event_wakeups.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = in_token(*next_in_id);
                *next_in_id += 1;
                if poller
                    .register(raw_fd(&stream), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                inconns.insert(
                    token,
                    InConn {
                        stream,
                        buf: BytesMut::with_capacity(RECV_BUF_INIT),
                        port: Arc::clone(port),
                    },
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// If the buffer holds a partial frame whose advertised length is known,
/// the extra bytes needed to complete it (so one `reserve` covers even a
/// multi-megabyte frame); 0 otherwise.
fn frame_need(buf: &BytesMut) -> usize {
    if buf.len() < 4 {
        return 0;
    }
    match check_body_len(u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"))) {
        Ok(body_len) => (4 + body_len).saturating_sub(buf.len()),
        Err(_) => 0, // desync; extract_frames will kill the connection
    }
}

/// Read a ready inbound stream until it would block, decoding complete
/// frames zero-copy into the port's inbound queue. Returns `false` when
/// the connection is finished (EOF, error, or framing desync) and
/// should be dropped.
fn service_in_conn(conn: &mut InConn, scratch: &mut [u8]) -> bool {
    loop {
        conn.buf.reserve(frame_need(&conn.buf).max(READ_MIN));
        let (ptr, spare) = conn.buf.spare_capacity_raw();
        // SAFETY: `ptr` is the spare capacity of `conn.buf`, valid for
        // `spare` writes; `advance_len` below commits only bytes the
        // kernel actually wrote.
        let n = match unsafe { read_vectored_spare(raw_fd(&conn.stream), (ptr, spare), scratch) } {
            Ok(0) => {
                // EOF: deliver what is complete, drop the rest.
                let _ = extract_frames(conn);
                return false;
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                let _ = extract_frames(conn);
                return false;
            }
        };
        conn.port
            .stats
            .readv_batches
            .fetch_add(1, Ordering::Relaxed);
        let main_n = n.min(spare);
        // SAFETY: the kernel initialized the first `main_n` spare bytes.
        unsafe { conn.buf.advance_len(main_n) };
        if n > main_n {
            conn.buf.put_slice(&scratch[..n - main_n]);
        }
        if !extract_frames(conn) {
            return false;
        }
        if n < spare + scratch.len() {
            return true; // socket drained
        }
    }
}

/// Split every complete frame off the receive buffer as one refcounted
/// chunk and decode them in place; payloads are zero-copy slices of the
/// chunk. Returns `false` on framing desync (connection must die).
fn extract_frames(conn: &mut InConn) -> bool {
    let mut consumed = 0;
    let mut desync = false;
    {
        let data: &[u8] = &conn.buf;
        while data.len() - consumed >= 4 {
            let prefix =
                u32::from_le_bytes(data[consumed..consumed + 4].try_into().expect("4 bytes"));
            match check_body_len(prefix) {
                Ok(body_len) => {
                    if data.len() - consumed - 4 < body_len {
                        break; // partial tail; next readv completes it
                    }
                    consumed += 4 + body_len;
                }
                Err(_) => {
                    desync = true;
                    break;
                }
            }
        }
    }
    if consumed > 0 {
        let chunk = conn.buf.split_to(consumed).freeze();
        let dst = conn.port.locality as usize;
        let mut off = 0;
        let mut delivered = false;
        let mut frames: u64 = 0;
        while off < chunk.len() {
            let body_len =
                u32::from_le_bytes(chunk[off..off + 4].try_into().expect("4 bytes")) as usize;
            let body = &chunk[off + 4..off + 4 + body_len];
            match decode_frame_in_place(body) {
                Ok(view) => {
                    let start = off + 4 + view.payload_offset();
                    let payload = chunk.slice(start..start + view.payload.len());
                    // Publish to the inbound queue *before* dropping the
                    // in-wire gauge so quiescence checks never miss the
                    // frame.
                    let _ = conn.port.inbound_tx.send(view.with_payload(payload));
                    delivered = true;
                }
                Err(_) => {
                    conn.port
                        .stats
                        .decode_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            frames += 1;
            off += 4 + body_len;
        }
        // One wakeup and one in-wire settlement per decoded batch, not
        // per frame: the sleeper only needs to learn that the inbound
        // queue became non-empty, and the gauge only drops after every
        // frame of the batch is already published.
        conn.port.mesh.unwire_n(dst, frames);
        if delivered {
            conn.port.notify();
        }
    }
    if desync {
        // The stream is desynchronised beyond recovery: count one
        // failure and abandon the connection.
        conn.port
            .stats
            .decode_failures
            .fetch_add(1, Ordering::Relaxed);
        conn.port.mesh.unwire(conn.port.locality as usize);
        return false;
    }
    true
}

// ---- the write path ---------------------------------------------------

/// Flush as much of `conn`'s write buffer as the socket accepts without
/// blocking, batching frames into vectored writes. Returns `true` if
/// any bytes were written.
fn flush_conn(shared: &TcpShared, dst: usize, conn: &mut OutConn) -> bool {
    if conn.broken {
        return false;
    }
    let mut wrote = false;
    'flush: while let Some(front) = conn.pending.front() {
        let result = {
            let mut bufs: Vec<IoSlice<'_>> =
                Vec::with_capacity(WRITEV_BATCH.min(conn.pending.len()));
            bufs.push(IoSlice::new(&front[conn.offset..]));
            for frame in conn.pending.iter().skip(1).take(WRITEV_BATCH - 1) {
                bufs.push(IoSlice::new(frame));
            }
            conn.stream.write_vectored(&bufs)
        };
        match result {
            Ok(0) => {
                break_conn(shared, dst, conn);
                break;
            }
            Ok(mut n) => {
                wrote = true;
                while n > 0 {
                    let front_remaining = conn
                        .pending
                        .front()
                        .expect("written bytes imply a frame")
                        .len()
                        - conn.offset;
                    if n >= front_remaining {
                        conn.pending.pop_front();
                        conn.offset = 0;
                        n -= front_remaining;
                        shared.stats.writev_frames.fetch_add(1, Ordering::Relaxed);
                        shared.staged.fetch_sub(1, Ordering::AcqRel);
                    } else {
                        conn.offset += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue 'flush,
            Err(_) => {
                break_conn(shared, dst, conn);
                break;
            }
        }
    }
    wrote
}

/// Mark a connection broken and unaccount its never-delivered frames so
/// quiescence checks do not wait for them forever.
fn break_conn(shared: &TcpShared, dst: usize, conn: &mut OutConn) {
    shared.mesh.in_wire[dst].fetch_sub(conn.pending.len() as u64, Ordering::AcqRel);
    shared
        .staged
        .fetch_sub(conn.pending.len(), Ordering::AcqRel);
    conn.pending.clear();
    conn.offset = 0;
    conn.broken = true;
    shared
        .mesh
        .out_shard(shared.locality, dst as u32)
        .deregister(raw_fd(&conn.stream));
    conn.armed = false;
}

/// Arm `EPOLLOUT` on the connection's shard while (and only while)
/// bytes are pending, so a `WouldBlock`ed flush resumes as soon as the
/// kernel drains instead of waiting for the next scheduler pump.
fn update_write_interest(shared: &TcpShared, dst: usize, conn: &mut OutConn) {
    if conn.broken {
        conn.armed = false;
        return;
    }
    let want = !conn.pending.is_empty();
    if want != conn.armed {
        let interest = if want {
            Interest::WRITE
        } else {
            Interest {
                readable: false,
                writable: false,
            }
        };
        let _ = shared
            .mesh
            .out_shard(shared.locality, dst as u32)
            .reregister(
                raw_fd(&conn.stream),
                out_token(shared.locality, dst as u32),
                interest,
            );
        conn.armed = want;
    }
}

/// A locality's endpoint on the loopback-TCP transport.
#[derive(Clone)]
pub struct TcpPort {
    shared: Arc<TcpShared>,
}

impl TcpPort {
    /// This port's locality id.
    pub fn locality(&self) -> u32 {
        self.shared.locality
    }

    /// Traffic statistics (byte counters are frame bytes on the wire).
    pub fn stats(&self) -> &PortStats {
        &self.shared.stats
    }

    /// Install the handler invoked (from pump threads) for every
    /// delivered message.
    pub fn set_receiver(&self, handler: ReceiveHandler) {
        *self.shared.receiver.write() = Some(handler);
    }

    /// Install a wake-up hook called whenever traffic lands on this
    /// port's queues.
    pub fn set_notify(&self, notify: NotifyFn) {
        *self.shared.notify.write() = Some(notify);
    }

    /// Install (or clear) a failure-injection plan for this port's
    /// outbound messages.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.shared.faults.write() = plan;
    }

    /// Enqueue a message for transmission. Cheap and syscall-free; the
    /// socket work happens in [`TcpPort::pump_send`].
    ///
    /// # Panics
    /// Panics if `message.dst` is out of range or `message.src` does not
    /// match this port.
    pub fn send(&self, message: Message) {
        assert_eq!(message.src, self.shared.locality, "src must be this port");
        assert!(
            (message.dst as usize) < self.shared.mesh.addrs.len(),
            "destination {} out of range",
            message.dst
        );
        self.shared.stats.enqueued.fetch_add(1, Ordering::Relaxed);
        self.shared
            .outbound_tx
            .send(message)
            .expect("outbound channel lives as long as the transport");
        self.shared.notify();
    }

    /// Pump outbound messages: encode queued messages into frames, stage
    /// them on per-destination write buffers and drive non-blocking
    /// vectored writes. Returns `true` if any work was done.
    pub fn pump_send(&self) -> bool {
        let shared = &self.shared;
        // Another thread already pumping this port's sockets? Yield.
        let Some(mut conns) = shared.conns.try_lock() else {
            return false;
        };
        let mut did_work = false;
        // Release delay/reorder-parked frames that are due (their
        // statistics were charged when they first passed below).
        let mut released = Vec::new();
        shared.reorder.lock().drain_ready(&mut released);
        for (dst, frame) in released {
            let _guard = ProcessingGuard::enter(&shared.processing);
            did_work = true;
            stage_frame(shared, &mut conns, dst, frame);
        }
        for _ in 0..PUMP_BATCH {
            let Ok(message) = shared.outbound_rx.try_recv() else {
                break;
            };
            let _guard = ProcessingGuard::enter(&shared.processing);
            did_work = true;
            shared.stats.sent_messages.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .sent_bytes
                .fetch_add(wire_len(&message) as u64, Ordering::Relaxed);
            // Failure injection, mirroring the simulated backend: the
            // send cost is paid, then the wire loses, mangles, duplicates,
            // delays or reorders the frame.
            let plan = shared.faults.read().clone();
            let (action, delay, window) = match &plan {
                Some(p) => (p.decide(), p.delay, p.reorder_window.unwrap_or(1)),
                None => (FaultAction::Deliver, std::time::Duration::ZERO, 1),
            };
            if action != FaultAction::Reorder {
                // Everything reaching the wire overtakes parked frames
                // (dropped messages consumed a wire slot too).
                shared.reorder.lock().on_pass();
            }
            let dst = message.dst as usize;
            match action {
                FaultAction::Drop => {
                    if message.class == DeliveryClass::BestEffort {
                        shared
                            .stats
                            .best_effort_dropped
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
                FaultAction::Corrupt => {
                    let mut frame = encode_frame(&message);
                    corrupt_frame(&mut frame);
                    stage_frame(shared, &mut conns, dst, frame);
                }
                FaultAction::Duplicate => {
                    let frame = encode_frame(&message);
                    stage_frame(shared, &mut conns, dst, frame.clone());
                    stage_frame(shared, &mut conns, dst, frame);
                }
                FaultAction::Delay => {
                    // No delivery clock on this backend: park the frame
                    // with the delay as its (sole) release deadline.
                    let frame = encode_frame(&message);
                    shared
                        .reorder
                        .lock()
                        .hold_for((dst, frame), u64::MAX, delay);
                }
                FaultAction::Reorder => {
                    let frame = encode_frame(&message);
                    shared.reorder.lock().hold((dst, frame), window);
                }
                FaultAction::Deliver => {
                    stage_frame(shared, &mut conns, dst, encode_frame(&message))
                }
            }
        }
        // Flush every connection with buffered bytes (including leftovers
        // from earlier pumps that hit WouldBlock), then leave EPOLLOUT
        // armed on any that still hold bytes so the pump threads finish
        // the job without waiting for the next scheduler pump.
        for (dst, slot) in conns.iter_mut().enumerate() {
            if let Some(conn) = slot {
                if !conn.pending.is_empty() {
                    did_work |= flush_conn(shared, dst, conn);
                }
                update_write_interest(shared, dst, conn);
            }
        }
        // Retry ring-full parked shm frames too (the doorbell path also
        // does this, but scheduler pumps guarantee progress even when a
        // bell was coalesced away).
        did_work |= flush_shm_pending(shared);
        did_work
    }

    /// Deliver received messages to the handler on the calling thread.
    /// Returns `true` if any message was delivered.
    pub fn pump_recv(&self) -> bool {
        let handler = self.shared.receiver.read().clone();
        let Some(handler) = handler else {
            return false;
        };
        // Drain shared-memory rings directly on the pumping thread —
        // the low-latency path (no doorbell/poller detour). Contended
        // lock = another thread is draining; skip.
        service_shm_rings(&self.shared, false, false);
        let mut did_work = false;
        for _ in 0..PUMP_BATCH {
            let Ok(message) = self.shared.inbound_rx.try_recv() else {
                break;
            };
            let _guard = ProcessingGuard::enter(&self.shared.processing);
            did_work = true;
            self.shared
                .stats
                .received_messages
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .received_bytes
                .fetch_add(wire_len(&message) as u64, Ordering::Relaxed);
            handler(message);
        }
        did_work
    }

    /// Convenience: one full pump pass (send then receive).
    pub fn pump(&self) -> bool {
        let s = self.pump_send();
        let r = self.pump_recv();
        s || r
    }

    /// Messages queued but not yet written to a socket: the outbound
    /// queue, frames parked by delay/reorder fault injection, and frames
    /// staged on write buffers. The staged term is what lets a
    /// quiescence check in *this* process see frames still owed to a
    /// rank hosted elsewhere (whose `inflight_backlog` it cannot
    /// observe).
    pub fn outbound_backlog(&self) -> usize {
        self.shared.outbound_rx.len()
            + self.shared.reorder.lock().len()
            + self.shared.staged.load(Ordering::Acquire)
    }

    /// Frames on the wire towards this port (write buffers + kernel +
    /// pump threads + shared-memory rings) plus decoded messages
    /// awaiting `pump_recv`. The shm term reads the per-ring gauge in
    /// the *shared* segment header, so it sees frames parked by a
    /// sender in another process.
    pub fn inflight_backlog(&self) -> usize {
        let shm: u64 = self
            .shared
            .shm_rx_inflight
            .iter()
            .map(|(seg, ring)| seg.inflight(*ring))
            .sum();
        self.shared.mesh.in_wire[self.shared.locality as usize].load(Ordering::Acquire) as usize
            + self.shared.inbound_rx.len()
            + shm as usize
    }

    /// Messages currently mid-pump on this port.
    pub fn processing(&self) -> usize {
        self.shared.processing.load(Ordering::Acquire)
    }
}

/// Stage an encoded frame towards `dst`: through the shared-memory ring
/// when a same-host link exists and the frame fits a ring record,
/// otherwise on the TCP write buffer (accounted in the in-wire gauge).
/// Frames to unreachable/broken destinations are discarded (the wire
/// "lost" them).
fn stage_frame(shared: &TcpShared, conns: &mut [Option<OutConn>], dst: usize, frame: Vec<u8>) {
    let frame = match stage_shm(shared, dst, frame) {
        Ok(()) => return,
        Err(frame) => frame,
    };
    let Some(conn) = ensure_conn(shared, conns, dst) else {
        return;
    };
    if conn.broken {
        return;
    }
    shared.mesh.in_wire[dst].fetch_add(1, Ordering::AcqRel);
    shared.staged.fetch_add(1, Ordering::AcqRel);
    conn.pending.push_back(frame);
}

/// Get (or lazily establish) the outgoing connection to `dst`,
/// registering it (with no interest armed yet) on its poll shard.
fn ensure_conn<'a>(
    shared: &TcpShared,
    conns: &'a mut [Option<OutConn>],
    dst: usize,
) -> Option<&'a mut OutConn> {
    if conns[dst].is_none() {
        let stream = TcpStream::connect(shared.mesh.addrs[dst]).ok()?;
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true).ok()?;
        // Empty interest: EPOLLOUT is armed only while bytes pend;
        // error/hang-up conditions are still reported.
        let _ = shared.mesh.out_shard(shared.locality, dst as u32).register(
            raw_fd(&stream),
            out_token(shared.locality, dst as u32),
            Interest {
                readable: false,
                writable: false,
            },
        );
        conns[dst] = Some(OutConn {
            stream,
            pending: VecDeque::new(),
            offset: 0,
            broken: false,
            armed: false,
        });
    }
    conns[dst].as_mut()
}

impl TransportPort for TcpPort {
    fn locality(&self) -> u32 {
        TcpPort::locality(self)
    }
    fn stats(&self) -> &PortStats {
        TcpPort::stats(self)
    }
    fn send(&self, message: Message) {
        TcpPort::send(self, message)
    }
    fn pump_send(&self) -> bool {
        TcpPort::pump_send(self)
    }
    fn pump_recv(&self) -> bool {
        TcpPort::pump_recv(self)
    }
    fn set_receiver(&self, handler: ReceiveHandler) {
        TcpPort::set_receiver(self, handler)
    }
    fn set_notify(&self, notify: NotifyFn) {
        TcpPort::set_notify(self, notify)
    }
    fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        TcpPort::set_fault_plan(self, plan)
    }
    fn outbound_backlog(&self) -> usize {
        TcpPort::outbound_backlog(self)
    }
    fn inflight_backlog(&self) -> usize {
        TcpPort::inflight_backlog(self)
    }
    fn processing(&self) -> usize {
        TcpPort::processing(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame_len;
    use crate::message::MessageKind;
    use bytes::Bytes;
    use std::time::{Duration, Instant};

    fn msg(src: u32, dst: u32, payload: &[u8]) -> Message {
        Message::new(
            src,
            dst,
            MessageKind::Parcel,
            Bytes::copy_from_slice(payload),
        )
    }

    fn pump_until<F: Fn() -> bool>(ports: &[TcpPort], done: F, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !done() {
            for p in ports {
                p.pump();
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    #[test]
    fn message_travels_over_real_sockets() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        a.send(msg(0, 1, b"over tcp"));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || !got.lock().is_empty(),
            Duration::from_secs(30)
        ));
        assert_eq!(got.lock()[0].as_ref(), b"over tcp");
        assert_eq!(
            a.stats().sent_bytes.load(Ordering::Relaxed),
            frame_len(8) as u64
        );
        assert_eq!(
            b.stats().received_bytes.load(Ordering::Relaxed),
            frame_len(8) as u64
        );
    }

    #[test]
    fn fifo_order_preserved_per_link() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload[0])));
        for i in 0..50u8 {
            a.send(msg(0, 1, &[i]));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 50,
            Duration::from_secs(30)
        ));
        assert_eq!(*got.lock(), (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn large_payload_crosses_kernel_buffers() {
        // Larger than a default loopback socket buffer: forces the
        // WouldBlock path, EPOLLOUT-resumed flushes and multi-readv
        // reassembly on the receive side.
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let payload: Vec<u8> = (0..3 * 1024 * 1024u32).map(|i| i as u8).collect();
        let expect = payload.clone();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        a.send(msg(0, 1, &payload));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || !got.lock().is_empty(),
            Duration::from_secs(60)
        ));
        assert_eq!(got.lock()[0].as_ref(), &expect[..]);
    }

    #[test]
    fn corrupt_fault_counts_decode_failure() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::corrupt_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"abcdef"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 5
                && b.stats().decode_failures.load(Ordering::SeqCst) == 5,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn drop_fault_loses_the_message() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::drop_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"x"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 5,
            Duration::from_secs(30)
        ));
        // Give stragglers a chance, then confirm nothing else arrives.
        std::thread::sleep(Duration::from_millis(50));
        for p in [&a, &b] {
            p.pump();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn send_to_self_is_allowed() {
        let transport = TcpTransport::new(1).expect("bind loopback");
        let a = transport.port(0);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        a.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.send(msg(0, 0, b"self"));
        assert!(pump_until(
            std::slice::from_ref(&a),
            || hits.load(Ordering::SeqCst) == 1,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn teardown_joins_all_threads_quickly() {
        let t0 = Instant::now();
        {
            let transport = TcpTransport::new(4).expect("bind loopback");
            let a = transport.port(0);
            transport.port(1).set_receiver(Arc::new(|_| {}));
            a.send(msg(0, 1, b"x"));
            a.pump_send();
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "teardown hung");
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::duplicate_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"dup"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 15,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn reorder_fault_delivers_everything() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload[0])));
        a.set_fault_plan(Some(Arc::new(FaultPlan::reorder_window(4))));
        for i in 0..16u8 {
            a.send(msg(0, 1, &[i]));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 16,
            Duration::from_secs(30)
        ));
        assert_eq!(a.outbound_backlog(), 0, "stage fully drained");
        let mut seen = got.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<u8>>(), "nothing lost");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_panics() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        transport.port(0).send(msg(0, 7, b"x"));
    }

    /// Threads the process is running, per /proc (Linux).
    #[cfg(target_os = "linux")]
    fn os_thread_count() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Connect a raw client to `addr`, retrying briefly if the accept
    /// queue is momentarily full.
    fn connect_client(addr: SocketAddr) -> TcpStream {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match TcpStream::connect(addr) {
                Ok(s) => return s,
                Err(e) => {
                    assert!(Instant::now() < deadline, "connect failed for 30s: {e}");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn thread_count_is_o_pump_threads_not_o_connections() {
        const CONNS: usize = 256;
        let before = os_thread_count();
        let transport = TcpTransport::new(2).expect("bind loopback");
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let addr = transport.listen_addr(1);
        let mut clients = Vec::with_capacity(CONNS);
        for i in 0..CONNS {
            let mut c = connect_client(addr);
            c.write_all(&encode_frame(&msg(0, 1, &[i as u8])))
                .expect("client write");
            clients.push(c);
        }
        // All 256 streams live and accepted once every frame arrived.
        assert!(pump_until(
            std::slice::from_ref(&b),
            || hits.load(Ordering::SeqCst) == CONNS as u64,
            Duration::from_secs(60)
        ));
        let during = os_thread_count();
        let budget = transport.tuning().pump_threads + 2;
        assert!(
            during <= before + budget,
            "{CONNS} connections cost {} extra threads (budget {budget})",
            during - before
        );
        drop(clients);
    }

    #[test]
    fn shutdown_is_fast_with_many_open_connections() {
        const CONNS: usize = 256;
        let transport = TcpTransport::new(2).expect("bind loopback");
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let addr = transport.listen_addr(1);
        let mut clients = Vec::with_capacity(CONNS);
        for i in 0..CONNS {
            let mut c = connect_client(addr);
            c.write_all(&encode_frame(&msg(0, 1, &[i as u8])))
                .expect("client write");
            clients.push(c);
        }
        assert!(pump_until(
            std::slice::from_ref(&b),
            || hits.load(Ordering::SeqCst) == CONNS as u64,
            Duration::from_secs(60)
        ));
        drop(b);
        let t0 = Instant::now();
        drop(transport);
        let took = t0.elapsed();
        assert!(
            took < Duration::from_millis(100),
            "teardown with {CONNS} open connections took {took:?}"
        );
        drop(clients);
    }

    #[test]
    fn pump_pool_is_shardable() {
        let transport =
            TcpTransport::with_tuning(4, TcpTuning { pump_threads: 2 }).expect("bind loopback");
        assert_eq!(transport.tuning().pump_threads, 2);
        let ports: Vec<TcpPort> = (0..4).map(|l| transport.port(l)).collect();
        let hits = Arc::new(AtomicU64::new(0));
        for p in &ports {
            let h = Arc::clone(&hits);
            p.set_receiver(Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // All-to-all traffic across both shards.
        for src in 0..4u32 {
            for dst in 0..4u32 {
                ports[src as usize].send(msg(src, dst, b"shard"));
            }
        }
        assert!(pump_until(
            &ports,
            || hits.load(Ordering::SeqCst) == 16,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn split_transports_exchange_over_rank_handshake() {
        // Two transports in one test process stand in for two worker
        // processes: each hosts a single rank, discovered through the
        // rendezvous handshake, and traffic crosses real sockets between
        // "processes".
        let rdv = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let h0 = std::thread::spawn(move || {
            TcpBootstrap::rendezvous(0, 2, rdv, Duration::from_secs(5)).unwrap()
        });
        let h1 = std::thread::spawn(move || {
            TcpBootstrap::rendezvous(1, 2, rdv, Duration::from_secs(5)).unwrap()
        });
        let t0 = TcpTransport::from_bootstrap(h0.join().unwrap(), TcpTuning::default()).unwrap();
        let t1 = TcpTransport::from_bootstrap(h1.join().unwrap(), TcpTuning::default()).unwrap();
        assert_eq!(t0.hosted(), vec![0]);
        assert_eq!(t1.hosted(), vec![1]);
        assert_eq!(t0.localities(), 2);
        let a = t0.port(0);
        let b = t1.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        let echoed = Arc::new(Mutex::new(Vec::new()));
        let e = Arc::clone(&echoed);
        a.set_receiver(Arc::new(move |m: Message| e.lock().push(m.payload.clone())));
        a.send(msg(0, 1, b"cross-process"));
        b.send(msg(1, 0, b"and back"));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || !got.lock().is_empty() && !echoed.lock().is_empty(),
            Duration::from_secs(30)
        ));
        assert_eq!(got.lock()[0].as_ref(), b"cross-process");
        assert_eq!(echoed.lock()[0].as_ref(), b"and back");
        // Sender-side staged accounting settled on both sides.
        assert_eq!(a.outbound_backlog(), 0);
        assert_eq!(b.outbound_backlog(), 0);
    }

    #[test]
    #[should_panic(expected = "not hosted by this process")]
    fn remote_rank_port_panics() {
        let rdv = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let h0 = std::thread::spawn(move || {
            TcpBootstrap::rendezvous(0, 2, rdv, Duration::from_secs(5)).unwrap()
        });
        let h1 = std::thread::spawn(move || {
            TcpBootstrap::rendezvous(1, 2, rdv, Duration::from_secs(5)).unwrap()
        });
        let t0 = TcpTransport::from_bootstrap(h0.join().unwrap(), TcpTuning::default()).unwrap();
        let _t1 = TcpTransport::from_bootstrap(h1.join().unwrap(), TcpTuning::default()).unwrap();
        let _ = t0.port(1);
    }

    #[test]
    fn zero_copy_payload_aliases_receive_chunk() {
        // Two coalesced-size messages in one burst: both payloads should
        // come out of the same refcounted receive chunk (same backing
        // allocation region), proving the zero-copy path is in use.
        let transport = TcpTransport::new(2).expect("bind loopback");
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        let addr = transport.listen_addr(1);
        let mut c = connect_client(addr);
        let mut burst = Vec::new();
        burst.extend_from_slice(&encode_frame(&msg(0, 1, &[7u8; 100])));
        burst.extend_from_slice(&encode_frame(&msg(0, 1, &[9u8; 100])));
        c.write_all(&burst).expect("client write");
        assert!(pump_until(
            std::slice::from_ref(&b),
            || got.lock().len() == 2,
            Duration::from_secs(30)
        ));
        let got = got.lock();
        assert_eq!(got[0].as_ref(), &[7u8; 100][..]);
        assert_eq!(got[1].as_ref(), &[9u8; 100][..]);
        // When the burst arrived in one readv (the overwhelmingly common
        // case on loopback), both payloads must live in the same chunk:
        // the pointer gap equals their wire distance. A split arrival
        // (two batches) legitimately yields two chunks — skip then.
        if b.stats().readv_batches.load(Ordering::Relaxed) == 1 {
            let p0 = got[0].as_ref().as_ptr() as usize;
            let p1 = got[1].as_ref().as_ptr() as usize;
            assert_eq!(p1 - p0, frame_len(100), "payloads were copied");
        }
    }

    // ---- shared-memory backend ---------------------------------------

    fn shm_tuning(ring_bytes: usize) -> ShmTuning {
        ShmTuning {
            tcp: TcpTuning::default(),
            ring_bytes,
        }
    }

    #[test]
    fn shm_delivers_without_touching_sockets() {
        let transport = TcpTransport::with_tuning_shm(2, shm_tuning(64 * 1024)).unwrap();
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        for i in 0..20u8 {
            a.send(msg(0, 1, &[i, i, i]));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 20,
            Duration::from_secs(30)
        ));
        assert_eq!(got.lock()[7].as_ref(), &[7, 7, 7]);
        // Every frame crossed the ring, none crossed a socket.
        assert_eq!(b.stats().shm_messages.load(Ordering::Relaxed), 20);
        assert_eq!(a.stats().writev_frames.load(Ordering::Relaxed), 0);
        assert_eq!(b.stats().readv_batches.load(Ordering::Relaxed), 0);
        // shm byte accounting matches the sender's wire accounting.
        assert_eq!(
            b.stats().shm_bytes.load(Ordering::Relaxed),
            a.stats().sent_bytes.load(Ordering::Relaxed)
        );
        // Quiescence gauges settle.
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || a.outbound_backlog() == 0 && b.inflight_backlog() == 0,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn shm_fifo_preserved_under_ring_full_backpressure() {
        // Ring of 1 KiB with ~40-byte frames: forces the Full → pending
        // → doorbell-flush path many times over.
        let transport = TcpTransport::with_tuning_shm(2, shm_tuning(1024)).unwrap();
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| {
            g.lock()
                .push(u16::from_le_bytes(m.payload[..2].try_into().unwrap()))
        }));
        for i in 0..500u16 {
            let mut p = [0u8; 16];
            p[..2].copy_from_slice(&i.to_le_bytes());
            a.send(msg(0, 1, &p));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 500,
            Duration::from_secs(30)
        ));
        assert_eq!(*got.lock(), (0..500).collect::<Vec<u16>>());
        assert_eq!(b.stats().shm_messages.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn shm_oversize_frames_fall_back_to_tcp() {
        // max_record = 4096/2 - 4; a 3 KiB payload cannot ride the ring.
        let transport = TcpTransport::with_tuning_shm(2, shm_tuning(4096)).unwrap();
        let a = transport.port(0);
        let b = transport.port(1);
        let big = vec![0xAB; 3 * 1024];
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        a.send(msg(0, 1, &big));
        a.send(msg(0, 1, b"small"));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 2,
            Duration::from_secs(30)
        ));
        // The big frame crossed a socket, the small one the ring.
        assert_eq!(a.stats().writev_frames.load(Ordering::Relaxed), 1);
        assert_eq!(b.stats().shm_messages.load(Ordering::Relaxed), 1);
        let mut sizes: Vec<usize> = got.lock().iter().map(|p| p.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![5, 3 * 1024]);
    }

    #[test]
    fn shm_self_send_loops_through_ring() {
        let transport = TcpTransport::with_tuning_shm(1, shm_tuning(16 * 1024)).unwrap();
        let a = transport.port(0);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        a.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.send(msg(0, 0, b"self"));
        assert!(pump_until(
            std::slice::from_ref(&a),
            || hits.load(Ordering::SeqCst) == 1,
            Duration::from_secs(30)
        ));
        assert_eq!(a.stats().shm_messages.load(Ordering::Relaxed), 1);
        assert_eq!(a.stats().writev_frames.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shm_corrupt_fault_travels_ring_and_fails_decode() {
        let transport = TcpTransport::with_tuning_shm(2, shm_tuning(64 * 1024)).unwrap();
        let a = transport.port(0);
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::corrupt_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"abcdef"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 5
                && b.stats().decode_failures.load(Ordering::SeqCst) == 5,
            Duration::from_secs(30)
        ));
        // Corrupt frames still consumed ring records (decode ran on the
        // real codec against ring memory).
        assert_eq!(b.stats().shm_messages.load(Ordering::Relaxed), 5);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn shm_split_transports_exchange_over_mapped_segment() {
        // Two transports in one test process stand in for two worker
        // processes on one host: same boot-id, separate "processes", so
        // the pair negotiates an mmap'd /dev/shm segment and named
        // doorbells — the full cross-process path.
        let rdv = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let h0 = std::thread::spawn(move || {
            TcpBootstrap::rendezvous(0, 2, rdv, Duration::from_secs(5)).unwrap()
        });
        let h1 = std::thread::spawn(move || {
            TcpBootstrap::rendezvous(1, 2, rdv, Duration::from_secs(5)).unwrap()
        });
        let tuning = shm_tuning(64 * 1024);
        let b0 = h0.join().unwrap();
        let b1 = h1.join().unwrap();
        let seg_dir = ShmNamespace::segment_dir();
        let count_segs = |prefix: &str| {
            std::fs::read_dir(&seg_dir)
                .map(|entries| {
                    entries
                        .flatten()
                        .filter(|e| {
                            e.file_name()
                                .to_str()
                                .is_some_and(|n| n.starts_with(prefix) && n.contains(".seg-"))
                        })
                        .count()
                })
                .unwrap_or(0)
        };
        let prefix = format!("rpx-{}", b0.addrs[0].port());
        let t0 = TcpTransport::from_bootstrap_shm(b0, tuning).unwrap();
        let t1 = TcpTransport::from_bootstrap_shm(b1, tuning).unwrap();
        let a = t0.port(0);
        let b = t1.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        let echoed = Arc::new(AtomicU64::new(0));
        let e = Arc::clone(&echoed);
        a.set_receiver(Arc::new(move |_| {
            e.fetch_add(1, Ordering::SeqCst);
        }));
        a.send(msg(0, 1, b"through the mapping"));
        b.send(msg(1, 0, b"and back"));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || !got.lock().is_empty() && echoed.load(Ordering::SeqCst) == 1,
            Duration::from_secs(30)
        ));
        assert_eq!(got.lock()[0].as_ref(), b"through the mapping");
        // Both directions crossed shared memory, no socket traffic.
        assert_eq!(b.stats().shm_messages.load(Ordering::Relaxed), 1);
        assert_eq!(a.stats().shm_messages.load(Ordering::Relaxed), 1);
        assert_eq!(a.stats().writev_frames.load(Ordering::Relaxed), 0);
        assert_eq!(b.stats().writev_frames.load(Ordering::Relaxed), 0);
        // The unlink-when-both-attached handshake removes the segment
        // file while traffic still flows (pump threads sweep it).
        let deadline = Instant::now() + Duration::from_secs(10);
        while count_segs(&prefix) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(count_segs(&prefix), 0, "segment file leaked");
        drop((a, b));
        drop(t0);
        drop(t1);
        assert_eq!(count_segs(&prefix), 0, "teardown leaked a segment");
    }

    #[test]
    fn shm_quiescence_counts_ring_resident_frames() {
        // Without pumping the receiver... frames pushed into the ring
        // must still show up in the destination's inflight gauge until
        // delivered (pump threads may drain the ring into the inbound
        // queue at any time, so check the sum of both stages).
        let transport = TcpTransport::with_tuning_shm(2, shm_tuning(64 * 1024)).unwrap();
        let a = transport.port(0);
        let b = transport.port(1);
        b.set_receiver(Arc::new(|_| {}));
        for i in 0..8u8 {
            a.send(msg(0, 1, &[i]));
        }
        // Push them into the ring (send side only).
        for _ in 0..8 {
            a.pump_send();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while a.outbound_backlog() > 0 && Instant::now() < deadline {
            a.pump_send();
            std::thread::yield_now();
        }
        assert_eq!(a.outbound_backlog(), 0);
        // All 8 are either in the ring or already decoded to the inbound
        // queue — never invisible.
        assert!(
            b.inflight_backlog() > 0,
            "ring-resident frames invisible to quiescence"
        );
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || b.inflight_backlog() == 0,
            Duration::from_secs(30)
        ));
    }
}
