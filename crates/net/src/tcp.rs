//! The loopback-TCP transport: real kernel sockets between localities,
//! driven by an event loop instead of a thread per connection.
//!
//! Where [`crate::SimTransport`] *models* per-message software overhead
//! with a [`crate::LinkModel`], this backend pays the genuine price: every
//! message is a length-prefixed frame ([`crate::frame`]) written to a
//! `127.0.0.1` TCP stream, so per-message syscall overhead, kernel
//! buffering and Nagle-free small-write costs are all real. This is what
//! lets the reproduction check that conclusions drawn on the simulated
//! LogP fabric carry over to a transport with true per-message costs.
//!
//! ## Threading model
//!
//! * **`send`** enqueues onto an in-process outbound queue — never a
//!   syscall on the caller.
//! * **`pump_send`** (scheduler background work) drains the queue,
//!   encodes frames, and drives *non-blocking* vectored writes
//!   (`writev`) on one lazily connected stream per destination.
//!   Partially written frames stay buffered at a byte offset; when a
//!   socket pushes back (`WouldBlock`) the connection arms `EPOLLOUT`
//!   on its pump shard, and the pump thread finishes the flush as soon
//!   as the kernel drains — queued bytes no longer starve waiting for
//!   the next scheduler pump. All socket work initiated by `pump_send`
//!   is charged to the `/threads/background-work` account, exactly like
//!   the simulated backend, keeping the paper's Eq. 4 network overhead
//!   comparable across backends.
//! * A small fixed pool of **pump threads** (default 1, see
//!   [`TcpTuning::pump_threads`]) multiplexes *every* socket — listeners,
//!   inbound and outbound streams — through one readiness
//!   [`Poller`] per thread (epoll on Linux). Connections are sharded
//!   over the pool by a `(src, dst)` hash; the total thread count is
//!   `O(pump_threads)`, not `O(connections)`.
//! * Inbound streams are read with **vectored reads** (`readv`)
//!   straight into the spare capacity of a recycled per-connection
//!   [`BytesMut`] receive buffer. Complete frames are split off as a
//!   refcounted [`bytes::Bytes`] chunk and decoded **in place**
//!   ([`crate::frame::decode_frame_in_place`]): a delivered message's
//!   payload is a zero-copy slice of the receive chunk, with no
//!   intermediate `Vec<u8>` per frame. Frames that outlive the buffer
//!   (e.g. parked in the reliability layer's out-of-order window) stay
//!   valid because the chunk is refcounted — the buffer "recycles" by
//!   growing a fresh allocation while live chunks pin the old one.
//! * **`pump_recv`** (background work again) drains the inbound queue and
//!   invokes the receive handler on the pumping thread — receive-side
//!   handler work lands on scheduler threads, as in HPX.
//!
//! Teardown is "wake the pollers, drain, join the pump pool": no
//! per-connection threads to chase, so shutdown latency is independent
//! of the number of open connections.
//!
//! This backend requires a Unix-like target (Linux gets the epoll fast
//! path; other Unixes fall back to [`rpx_util::poll`]'s portable
//! sleep-poller).
//!
//! Quiescence accounting: a transport-wide per-destination `in_wire`
//! gauge rises when a frame enters a write buffer and falls only *after*
//! the decoded message is visible in the destination's inbound queue, so
//! `inflight_backlog` never momentarily under-counts a frame that lives
//! in kernel buffers.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{BufMut, BytesMut};
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use rpx_util::poll::{read_vectored_spare, Fd, Interest, Poller};

use crate::bootstrap::TcpBootstrap;
use crate::fabric::PortStats;
use crate::fault::{FaultAction, FaultPlan, FaultStage};
use crate::frame::{check_body_len, corrupt_frame, decode_frame_in_place, encode_frame, wire_len};
use crate::message::Message;
use crate::transport::{NotifyFn, ReceiveHandler, Transport, TransportPort};

/// Messages one pump call processes before yielding (matches the
/// simulated backend's batch bound).
const PUMP_BATCH: usize = 8;

/// Frames batched into one `writev` call.
const WRITEV_BATCH: usize = 16;

/// Minimum spare receive-buffer capacity before a `readv`.
const READ_MIN: usize = 16 * 1024;

/// Initial per-connection receive buffer capacity.
const RECV_BUF_INIT: usize = 64 * 1024;

/// Per-pump-thread overflow slice appended to every `readv`, so a burst
/// larger than the buffer's spare capacity still lands in one syscall.
const SCRATCH_LEN: usize = 64 * 1024;

/// Fallback poll tick: pump threads re-check the shutdown flag at least
/// this often even if a wake is somehow missed.
const POLL_TICK: Duration = Duration::from_millis(500);

// ---- poller token scheme ---------------------------------------------
//
// The top nibble classifies the registration; the low bits identify it.
// Localities fit in 24 bits by the `with_tuning` assertion.

const TOKEN_CLASS_SHIFT: u32 = 60;
const CLASS_LISTENER: u64 = 1;
const CLASS_OUT: u64 = 2;
const CLASS_IN: u64 = 3;

fn listener_token(locality: u32) -> u64 {
    (CLASS_LISTENER << TOKEN_CLASS_SHIFT) | locality as u64
}

fn out_token(src: u32, dst: u32) -> u64 {
    (CLASS_OUT << TOKEN_CLASS_SHIFT) | ((src as u64) << 24) | dst as u64
}

fn in_token(id: u64) -> u64 {
    (CLASS_IN << TOKEN_CLASS_SHIFT) | id
}

fn raw_fd<T: AsRawFd>(s: &T) -> Fd {
    s.as_raw_fd() as Fd
}

/// Tuning knobs for the event-driven TCP backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpTuning {
    /// Number of pump (event-loop) threads sharing the connections.
    /// Each owns one poller; connections are sharded over the pool by a
    /// `(src, dst)` hash. `0` is treated as `1`. The default (1) is
    /// right for loopback meshes up to a few thousand connections;
    /// raise it only when one core cannot drain the aggregate traffic.
    pub pump_threads: usize,
}

impl Default for TcpTuning {
    fn default() -> TcpTuning {
        TcpTuning { pump_threads: 1 }
    }
}

/// Transport-wide state shared by every port and thread.
///
/// In multi-process mode the mesh describes the *whole cluster* — the
/// address book covers every rank — while `TcpTransport::ports` holds
/// endpoints only for the ranks this process hosts.
struct Mesh {
    /// Listener address of every locality, indexed by locality id.
    addrs: Vec<SocketAddr>,
    /// Frames somewhere between a sender's write buffer and the
    /// destination's inbound queue, indexed by destination locality.
    in_wire: Vec<AtomicU64>,
    /// Set once at teardown; pump threads drain and exit.
    shutdown: AtomicBool,
    /// One poller per pump thread.
    shards: Vec<Arc<Poller>>,
}

impl Mesh {
    /// The poll shard responsible for the `src → dst` outgoing stream.
    fn out_shard(&self, src: u32, dst: u32) -> &Poller {
        let h = (src as usize).wrapping_mul(31).wrapping_add(dst as usize);
        &self.shards[h % self.shards.len()]
    }

    /// Saturating decrement of a destination's in-wire gauge. Frames
    /// injected from outside the mesh (raw benchmark clients) were
    /// never accounted, and must not wrap the gauge.
    fn unwire(&self, dst: usize) {
        self.unwire_n(dst, 1);
    }

    /// Drop `n` frames' worth of in-wire accounting at once (one atomic
    /// update per decoded batch). Saturates at zero: raw test/bench
    /// clients inject frames the send side never accounted for.
    fn unwire_n(&self, dst: usize, n: u64) {
        let _ = self.in_wire[dst].fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
            Some(v.saturating_sub(n))
        });
    }
}

/// One lazily established outgoing connection with its write buffer.
struct OutConn {
    stream: TcpStream,
    /// Encoded frames not yet (fully) written, FIFO.
    pending: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written; a partial frame
    /// resumes from here on the next flush, wherever it runs.
    offset: usize,
    /// A write error occurred; frames to this destination are discarded.
    broken: bool,
    /// Whether `EPOLLOUT` is currently armed on the poll shard (only
    /// while bytes are pending, to avoid level-triggered busy-wakes).
    armed: bool,
}

/// One accepted inbound connection, owned by its pump thread.
struct InConn {
    stream: TcpStream,
    /// Recycled receive buffer; complete frames are split off zero-copy.
    buf: BytesMut,
    /// The destination port whose listener accepted this stream.
    port: Arc<TcpShared>,
}

struct TcpShared {
    locality: u32,
    mesh: Arc<Mesh>,
    outbound_tx: Sender<Message>,
    outbound_rx: Receiver<Message>,
    inbound_tx: Sender<Message>,
    inbound_rx: Receiver<Message>,
    /// Per-destination outgoing connections; also serialises `pump_send`
    /// (a pump that loses the `try_lock` race simply yields — another
    /// thread is already writing). Pump threads take the lock (blocking,
    /// but only for the duration of one flush) to finish writes on
    /// `EPOLLOUT`.
    conns: Mutex<Vec<Option<OutConn>>>,
    receiver: RwLock<Option<ReceiveHandler>>,
    notify: RwLock<Option<NotifyFn>>,
    faults: RwLock<Option<Arc<FaultPlan>>>,
    /// Encoded frames parked by delay/reorder fault injection, keyed by
    /// destination. Counted in `outbound_backlog` so quiescence checks
    /// see them.
    reorder: Mutex<FaultStage<(usize, Vec<u8>)>>,
    stats: PortStats,
    /// Messages mid-pump (same contract as the simulated backend).
    processing: AtomicUsize,
    /// Frames staged on this port's write buffers but not yet written to
    /// a socket. The receiver-side `in_wire` gauge lives in the
    /// *destination's* process, so a sender needs its own count of
    /// not-yet-on-the-wire frames for quiescence across process
    /// boundaries.
    staged: AtomicUsize,
}

impl TcpShared {
    fn notify(&self) {
        if let Some(n) = self.notify.read().as_ref() {
            n();
        }
    }
}

/// Decrements the processing gauge on drop (panic-safe).
struct ProcessingGuard<'a>(&'a AtomicUsize);

impl<'a> ProcessingGuard<'a> {
    fn enter(gauge: &'a AtomicUsize) -> Self {
        gauge.fetch_add(1, Ordering::Acquire);
        ProcessingGuard(gauge)
    }
}

impl Drop for ProcessingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

/// The loopback-TCP network connecting all localities of a cluster.
///
/// In all-in-one mode every locality's endpoint lives here; in
/// multi-process mode ([`TcpTransport::from_bootstrap`] with a
/// [`TcpBootstrap`] hosting a single rank) only the hosted ranks have
/// ports, and the address book routes everything else over real
/// process-crossing sockets.
pub struct TcpTransport {
    /// Endpoint per locality id; `None` for ranks hosted elsewhere.
    ports: Vec<Option<Arc<TcpShared>>>,
    mesh: Arc<Mesh>,
    tuning: TcpTuning,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Bind one loopback listener per locality and start the default
    /// pump pool (one event-loop thread).
    ///
    /// # Errors
    /// Fails if a listener cannot be bound on `127.0.0.1` or a poller
    /// cannot be created.
    pub fn new(localities: u32) -> std::io::Result<Arc<Self>> {
        TcpTransport::with_tuning(localities, TcpTuning::default())
    }

    /// [`TcpTransport::new`] with explicit [`TcpTuning`].
    ///
    /// All-in-one mode is the degenerate bootstrap where every rank is
    /// hosted in this process ([`TcpBootstrap::in_process`]).
    ///
    /// # Errors
    /// Fails if a listener cannot be bound on `127.0.0.1` or a poller
    /// cannot be created.
    pub fn with_tuning(localities: u32, tuning: TcpTuning) -> std::io::Result<Arc<Self>> {
        assert!(localities > 0, "transport needs at least one locality");
        TcpTransport::from_bootstrap(TcpBootstrap::in_process(localities)?, tuning)
    }

    /// Build the transport over a completed boot handshake: the
    /// bootstrap's address book names every rank, its listeners are the
    /// ranks this process hosts. One code path serves in-process,
    /// address-book and rendezvous boots.
    ///
    /// # Errors
    /// Fails if a poller cannot be created or a listener rejects
    /// non-blocking mode.
    pub fn from_bootstrap(
        bootstrap: TcpBootstrap,
        tuning: TcpTuning,
    ) -> std::io::Result<Arc<Self>> {
        let TcpBootstrap { local, addrs } = bootstrap;
        let localities = addrs.len() as u32;
        assert!(localities > 0, "transport needs at least one locality");
        assert!(
            localities < (1 << 24),
            "locality id must fit the token scheme"
        );
        let pump_threads = tuning.pump_threads.max(1);
        let shards: Vec<Arc<Poller>> = (0..pump_threads)
            .map(|_| Poller::new().map(Arc::new))
            .collect::<std::io::Result<_>>()?;
        let mesh = Arc::new(Mesh {
            addrs,
            in_wire: (0..localities).map(|_| AtomicU64::new(0)).collect(),
            shutdown: AtomicBool::new(false),
            shards,
        });
        let mut ports: Vec<Option<Arc<TcpShared>>> = (0..localities).map(|_| None).collect();
        for (rank, _) in &local {
            let (outbound_tx, outbound_rx) = unbounded();
            let (inbound_tx, inbound_rx) = unbounded();
            ports[*rank as usize] = Some(Arc::new(TcpShared {
                locality: *rank,
                mesh: Arc::clone(&mesh),
                outbound_tx,
                outbound_rx,
                inbound_tx,
                inbound_rx,
                conns: Mutex::new((0..localities).map(|_| None).collect()),
                receiver: RwLock::new(None),
                notify: RwLock::new(None),
                faults: RwLock::new(None),
                reorder: Mutex::new(FaultStage::default()),
                stats: PortStats::default(),
                processing: AtomicUsize::new(0),
                staged: AtomicUsize::new(0),
            }));
        }
        // Shard the hosted listeners over the pump pool; each thread owns
        // the listeners (and the inbound streams they accept) of its
        // shard. Hosted ranks are enumerated in order, so the all-in-one
        // mode keeps its historical `locality % pump_threads` layout.
        let mut shard_listeners: Vec<Vec<(u32, TcpListener)>> =
            (0..pump_threads).map(|_| Vec::new()).collect();
        for (idx, (rank, listener)) in local.into_iter().enumerate() {
            listener.set_nonblocking(true)?;
            shard_listeners[idx % pump_threads].push((rank, listener));
        }
        let pumps = shard_listeners
            .into_iter()
            .enumerate()
            .map(|(shard, listeners)| {
                let poller = Arc::clone(&mesh.shards[shard]);
                let mesh = Arc::clone(&mesh);
                let ports = ports.clone();
                std::thread::Builder::new()
                    .name(format!("rpx-tcp-pump{shard}"))
                    .spawn(move || run_pump(poller, mesh, ports, listeners))
                    .expect("spawn pump thread")
            })
            .collect();
        Ok(Arc::new(TcpTransport {
            ports,
            mesh,
            tuning: TcpTuning { pump_threads },
            pumps: Mutex::new(pumps),
        }))
    }

    /// Number of localities in the cluster (hosted here or not).
    pub fn localities(&self) -> u32 {
        self.mesh.addrs.len() as u32
    }

    /// The effective tuning (after clamping).
    pub fn tuning(&self) -> TcpTuning {
        self.tuning
    }

    /// The loopback address `locality`'s listener is bound to. External
    /// clients (benchmark harnesses) can connect raw `TcpStream`s here
    /// and write encoded frames.
    ///
    /// # Panics
    /// Panics if `locality` is out of range.
    pub fn listen_addr(&self, locality: u32) -> SocketAddr {
        self.mesh.addrs[locality as usize]
    }

    /// The port of `locality`.
    ///
    /// # Panics
    /// Panics if `locality` is out of range or hosted by another
    /// process.
    pub fn port(&self, locality: u32) -> TcpPort {
        assert!(
            (locality as usize) < self.ports.len(),
            "locality {locality} out of range"
        );
        let shared = self.ports[locality as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("locality {locality} is not hosted by this process"));
        TcpPort {
            shared: Arc::clone(shared),
        }
    }

    /// The localities whose endpoints live in this process.
    pub fn hosted(&self) -> Vec<u32> {
        self.ports
            .iter()
            .filter_map(|p| p.as_ref().map(|s| s.locality))
            .collect()
    }
}

impl Transport for TcpTransport {
    fn localities(&self) -> u32 {
        TcpTransport::localities(self)
    }

    fn port(&self, locality: u32) -> Arc<dyn TransportPort> {
        Arc::new(TcpTransport::port(self, locality))
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.mesh.shutdown.store(true, Ordering::Release);
        // Drop every outgoing stream (closing removes it from its
        // shard's poller), unaccounting frames that never hit the wire.
        for port in self.ports.iter().flatten() {
            let mut conns = port.conns.lock();
            for (dst, slot) in conns.iter_mut().enumerate() {
                if let Some(conn) = slot.take() {
                    self.mesh.in_wire[dst].fetch_sub(conn.pending.len() as u64, Ordering::AcqRel);
                }
            }
        }
        // Wake every pump thread; each drains its inbound streams once
        // and exits. Shutdown cost is O(pump_threads), independent of
        // the number of open connections.
        for shard in &self.mesh.shards {
            shard.wake();
        }
        for h in self.pumps.lock().drain(..) {
            let _ = h.join();
        }
    }
}

// ---- the event loop ---------------------------------------------------

/// One pump thread: multiplex this shard's listeners, inbound streams
/// and outbound flush work through a single poller.
fn run_pump(
    poller: Arc<Poller>,
    mesh: Arc<Mesh>,
    ports: Vec<Option<Arc<TcpShared>>>,
    listeners: Vec<(u32, TcpListener)>,
) {
    let mut inconns: HashMap<u64, InConn> = HashMap::new();
    let mut next_in_id: u64 = 0;
    let mut events = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_LEN];
    for (locality, listener) in &listeners {
        let _ = poller.register(raw_fd(listener), listener_token(*locality), Interest::READ);
    }
    loop {
        if poller.wait(&mut events, Some(POLL_TICK)).is_err() {
            break;
        }
        let shutting_down = mesh.shutdown.load(Ordering::Acquire);
        for ev in &events {
            match ev.token >> TOKEN_CLASS_SHIFT {
                CLASS_LISTENER => {
                    let locality = (ev.token & 0xFF_FFFF) as usize;
                    let (Some((_, listener)), Some(port)) = (
                        listeners.iter().find(|(l, _)| *l as usize == locality),
                        ports.get(locality).and_then(|p| p.as_ref()),
                    ) else {
                        continue;
                    };
                    accept_ready(
                        &poller,
                        port,
                        listener,
                        &mut inconns,
                        &mut next_in_id,
                        shutting_down,
                    );
                }
                CLASS_OUT => {
                    let src = ((ev.token >> 24) & 0xFF_FFFF) as usize;
                    let dst = (ev.token & 0xFF_FFFF) as usize;
                    // Outgoing streams exist only for hosted sources.
                    let Some(port) = ports.get(src).and_then(|p| p.as_ref()) else {
                        continue;
                    };
                    port.stats.event_wakeups.fetch_add(1, Ordering::Relaxed);
                    let mut conns = port.conns.lock();
                    if let Some(conn) = conns[dst].as_mut() {
                        flush_conn(port, dst, conn);
                        // EPOLLOUT is only armed while bytes pend, so a
                        // readable-flagged event here means error or
                        // peer hang-up, never data.
                        if ev.readable && !conn.broken {
                            break_conn(port, dst, conn);
                        }
                        update_write_interest(port, dst, conn);
                    }
                }
                CLASS_IN => {
                    if let Some(conn) = inconns.get_mut(&ev.token) {
                        conn.port
                            .stats
                            .event_wakeups
                            .fetch_add(1, Ordering::Relaxed);
                        if !service_in_conn(conn, &mut scratch) {
                            let conn = inconns.remove(&ev.token).expect("present");
                            poller.deregister(raw_fd(&conn.stream));
                        }
                    }
                }
                _ => {}
            }
        }
        if shutting_down {
            // Final drain: frames already in kernel buffers still reach
            // the inbound queue (and settle the in-wire gauge).
            for conn in inconns.values_mut() {
                let _ = service_in_conn(conn, &mut scratch);
            }
            break;
        }
    }
}

/// Accept everything queued on a ready listener, registering each new
/// stream for reads on this shard.
fn accept_ready(
    poller: &Poller,
    port: &Arc<TcpShared>,
    listener: &TcpListener,
    inconns: &mut HashMap<u64, InConn>,
    next_in_id: &mut u64,
    shutting_down: bool,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutting_down {
                    continue; // drain the queue, admit nobody
                }
                port.stats.event_wakeups.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = in_token(*next_in_id);
                *next_in_id += 1;
                if poller
                    .register(raw_fd(&stream), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                inconns.insert(
                    token,
                    InConn {
                        stream,
                        buf: BytesMut::with_capacity(RECV_BUF_INIT),
                        port: Arc::clone(port),
                    },
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// If the buffer holds a partial frame whose advertised length is known,
/// the extra bytes needed to complete it (so one `reserve` covers even a
/// multi-megabyte frame); 0 otherwise.
fn frame_need(buf: &BytesMut) -> usize {
    if buf.len() < 4 {
        return 0;
    }
    match check_body_len(u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"))) {
        Ok(body_len) => (4 + body_len).saturating_sub(buf.len()),
        Err(_) => 0, // desync; extract_frames will kill the connection
    }
}

/// Read a ready inbound stream until it would block, decoding complete
/// frames zero-copy into the port's inbound queue. Returns `false` when
/// the connection is finished (EOF, error, or framing desync) and
/// should be dropped.
fn service_in_conn(conn: &mut InConn, scratch: &mut [u8]) -> bool {
    loop {
        conn.buf.reserve(frame_need(&conn.buf).max(READ_MIN));
        let (ptr, spare) = conn.buf.spare_capacity_raw();
        // SAFETY: `ptr` is the spare capacity of `conn.buf`, valid for
        // `spare` writes; `advance_len` below commits only bytes the
        // kernel actually wrote.
        let n = match unsafe { read_vectored_spare(raw_fd(&conn.stream), (ptr, spare), scratch) } {
            Ok(0) => {
                // EOF: deliver what is complete, drop the rest.
                let _ = extract_frames(conn);
                return false;
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                let _ = extract_frames(conn);
                return false;
            }
        };
        conn.port
            .stats
            .readv_batches
            .fetch_add(1, Ordering::Relaxed);
        let main_n = n.min(spare);
        // SAFETY: the kernel initialized the first `main_n` spare bytes.
        unsafe { conn.buf.advance_len(main_n) };
        if n > main_n {
            conn.buf.put_slice(&scratch[..n - main_n]);
        }
        if !extract_frames(conn) {
            return false;
        }
        if n < spare + scratch.len() {
            return true; // socket drained
        }
    }
}

/// Split every complete frame off the receive buffer as one refcounted
/// chunk and decode them in place; payloads are zero-copy slices of the
/// chunk. Returns `false` on framing desync (connection must die).
fn extract_frames(conn: &mut InConn) -> bool {
    let mut consumed = 0;
    let mut desync = false;
    {
        let data: &[u8] = &conn.buf;
        while data.len() - consumed >= 4 {
            let prefix =
                u32::from_le_bytes(data[consumed..consumed + 4].try_into().expect("4 bytes"));
            match check_body_len(prefix) {
                Ok(body_len) => {
                    if data.len() - consumed - 4 < body_len {
                        break; // partial tail; next readv completes it
                    }
                    consumed += 4 + body_len;
                }
                Err(_) => {
                    desync = true;
                    break;
                }
            }
        }
    }
    if consumed > 0 {
        let chunk = conn.buf.split_to(consumed).freeze();
        let dst = conn.port.locality as usize;
        let mut off = 0;
        let mut delivered = false;
        let mut frames: u64 = 0;
        while off < chunk.len() {
            let body_len =
                u32::from_le_bytes(chunk[off..off + 4].try_into().expect("4 bytes")) as usize;
            let body = &chunk[off + 4..off + 4 + body_len];
            match decode_frame_in_place(body) {
                Ok(view) => {
                    let start = off + 4 + view.payload_offset();
                    let payload = chunk.slice(start..start + view.payload.len());
                    // Publish to the inbound queue *before* dropping the
                    // in-wire gauge so quiescence checks never miss the
                    // frame.
                    let _ = conn.port.inbound_tx.send(view.with_payload(payload));
                    delivered = true;
                }
                Err(_) => {
                    conn.port
                        .stats
                        .decode_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            frames += 1;
            off += 4 + body_len;
        }
        // One wakeup and one in-wire settlement per decoded batch, not
        // per frame: the sleeper only needs to learn that the inbound
        // queue became non-empty, and the gauge only drops after every
        // frame of the batch is already published.
        conn.port.mesh.unwire_n(dst, frames);
        if delivered {
            conn.port.notify();
        }
    }
    if desync {
        // The stream is desynchronised beyond recovery: count one
        // failure and abandon the connection.
        conn.port
            .stats
            .decode_failures
            .fetch_add(1, Ordering::Relaxed);
        conn.port.mesh.unwire(conn.port.locality as usize);
        return false;
    }
    true
}

// ---- the write path ---------------------------------------------------

/// Flush as much of `conn`'s write buffer as the socket accepts without
/// blocking, batching frames into vectored writes. Returns `true` if
/// any bytes were written.
fn flush_conn(shared: &TcpShared, dst: usize, conn: &mut OutConn) -> bool {
    if conn.broken {
        return false;
    }
    let mut wrote = false;
    'flush: while let Some(front) = conn.pending.front() {
        let result = {
            let mut bufs: Vec<IoSlice<'_>> =
                Vec::with_capacity(WRITEV_BATCH.min(conn.pending.len()));
            bufs.push(IoSlice::new(&front[conn.offset..]));
            for frame in conn.pending.iter().skip(1).take(WRITEV_BATCH - 1) {
                bufs.push(IoSlice::new(frame));
            }
            conn.stream.write_vectored(&bufs)
        };
        match result {
            Ok(0) => {
                break_conn(shared, dst, conn);
                break;
            }
            Ok(mut n) => {
                wrote = true;
                while n > 0 {
                    let front_remaining = conn
                        .pending
                        .front()
                        .expect("written bytes imply a frame")
                        .len()
                        - conn.offset;
                    if n >= front_remaining {
                        conn.pending.pop_front();
                        conn.offset = 0;
                        n -= front_remaining;
                        shared.stats.writev_frames.fetch_add(1, Ordering::Relaxed);
                        shared.staged.fetch_sub(1, Ordering::AcqRel);
                    } else {
                        conn.offset += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue 'flush,
            Err(_) => {
                break_conn(shared, dst, conn);
                break;
            }
        }
    }
    wrote
}

/// Mark a connection broken and unaccount its never-delivered frames so
/// quiescence checks do not wait for them forever.
fn break_conn(shared: &TcpShared, dst: usize, conn: &mut OutConn) {
    shared.mesh.in_wire[dst].fetch_sub(conn.pending.len() as u64, Ordering::AcqRel);
    shared
        .staged
        .fetch_sub(conn.pending.len(), Ordering::AcqRel);
    conn.pending.clear();
    conn.offset = 0;
    conn.broken = true;
    shared
        .mesh
        .out_shard(shared.locality, dst as u32)
        .deregister(raw_fd(&conn.stream));
    conn.armed = false;
}

/// Arm `EPOLLOUT` on the connection's shard while (and only while)
/// bytes are pending, so a `WouldBlock`ed flush resumes as soon as the
/// kernel drains instead of waiting for the next scheduler pump.
fn update_write_interest(shared: &TcpShared, dst: usize, conn: &mut OutConn) {
    if conn.broken {
        conn.armed = false;
        return;
    }
    let want = !conn.pending.is_empty();
    if want != conn.armed {
        let interest = if want {
            Interest::WRITE
        } else {
            Interest {
                readable: false,
                writable: false,
            }
        };
        let _ = shared
            .mesh
            .out_shard(shared.locality, dst as u32)
            .reregister(
                raw_fd(&conn.stream),
                out_token(shared.locality, dst as u32),
                interest,
            );
        conn.armed = want;
    }
}

/// A locality's endpoint on the loopback-TCP transport.
#[derive(Clone)]
pub struct TcpPort {
    shared: Arc<TcpShared>,
}

impl TcpPort {
    /// This port's locality id.
    pub fn locality(&self) -> u32 {
        self.shared.locality
    }

    /// Traffic statistics (byte counters are frame bytes on the wire).
    pub fn stats(&self) -> &PortStats {
        &self.shared.stats
    }

    /// Install the handler invoked (from pump threads) for every
    /// delivered message.
    pub fn set_receiver(&self, handler: ReceiveHandler) {
        *self.shared.receiver.write() = Some(handler);
    }

    /// Install a wake-up hook called whenever traffic lands on this
    /// port's queues.
    pub fn set_notify(&self, notify: NotifyFn) {
        *self.shared.notify.write() = Some(notify);
    }

    /// Install (or clear) a failure-injection plan for this port's
    /// outbound messages.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.shared.faults.write() = plan;
    }

    /// Enqueue a message for transmission. Cheap and syscall-free; the
    /// socket work happens in [`TcpPort::pump_send`].
    ///
    /// # Panics
    /// Panics if `message.dst` is out of range or `message.src` does not
    /// match this port.
    pub fn send(&self, message: Message) {
        assert_eq!(message.src, self.shared.locality, "src must be this port");
        assert!(
            (message.dst as usize) < self.shared.mesh.addrs.len(),
            "destination {} out of range",
            message.dst
        );
        self.shared.stats.enqueued.fetch_add(1, Ordering::Relaxed);
        self.shared
            .outbound_tx
            .send(message)
            .expect("outbound channel lives as long as the transport");
        self.shared.notify();
    }

    /// Pump outbound messages: encode queued messages into frames, stage
    /// them on per-destination write buffers and drive non-blocking
    /// vectored writes. Returns `true` if any work was done.
    pub fn pump_send(&self) -> bool {
        let shared = &self.shared;
        // Another thread already pumping this port's sockets? Yield.
        let Some(mut conns) = shared.conns.try_lock() else {
            return false;
        };
        let mut did_work = false;
        // Release delay/reorder-parked frames that are due (their
        // statistics were charged when they first passed below).
        let mut released = Vec::new();
        shared.reorder.lock().drain_ready(&mut released);
        for (dst, frame) in released {
            let _guard = ProcessingGuard::enter(&shared.processing);
            did_work = true;
            stage_frame(shared, &mut conns, dst, frame);
        }
        for _ in 0..PUMP_BATCH {
            let Ok(message) = shared.outbound_rx.try_recv() else {
                break;
            };
            let _guard = ProcessingGuard::enter(&shared.processing);
            did_work = true;
            shared.stats.sent_messages.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .sent_bytes
                .fetch_add(wire_len(&message) as u64, Ordering::Relaxed);
            // Failure injection, mirroring the simulated backend: the
            // send cost is paid, then the wire loses, mangles, duplicates,
            // delays or reorders the frame.
            let plan = shared.faults.read().clone();
            let (action, delay, window) = match &plan {
                Some(p) => (p.decide(), p.delay, p.reorder_window.unwrap_or(1)),
                None => (FaultAction::Deliver, std::time::Duration::ZERO, 1),
            };
            if action != FaultAction::Reorder {
                // Everything reaching the wire overtakes parked frames
                // (dropped messages consumed a wire slot too).
                shared.reorder.lock().on_pass();
            }
            let dst = message.dst as usize;
            match action {
                FaultAction::Drop => continue,
                FaultAction::Corrupt => {
                    let mut frame = encode_frame(&message);
                    corrupt_frame(&mut frame);
                    stage_frame(shared, &mut conns, dst, frame);
                }
                FaultAction::Duplicate => {
                    let frame = encode_frame(&message);
                    stage_frame(shared, &mut conns, dst, frame.clone());
                    stage_frame(shared, &mut conns, dst, frame);
                }
                FaultAction::Delay => {
                    // No delivery clock on this backend: park the frame
                    // with the delay as its (sole) release deadline.
                    let frame = encode_frame(&message);
                    shared
                        .reorder
                        .lock()
                        .hold_for((dst, frame), u64::MAX, delay);
                }
                FaultAction::Reorder => {
                    let frame = encode_frame(&message);
                    shared.reorder.lock().hold((dst, frame), window);
                }
                FaultAction::Deliver => {
                    stage_frame(shared, &mut conns, dst, encode_frame(&message))
                }
            }
        }
        // Flush every connection with buffered bytes (including leftovers
        // from earlier pumps that hit WouldBlock), then leave EPOLLOUT
        // armed on any that still hold bytes so the pump threads finish
        // the job without waiting for the next scheduler pump.
        for (dst, slot) in conns.iter_mut().enumerate() {
            if let Some(conn) = slot {
                if !conn.pending.is_empty() {
                    did_work |= flush_conn(shared, dst, conn);
                }
                update_write_interest(shared, dst, conn);
            }
        }
        did_work
    }

    /// Deliver received messages to the handler on the calling thread.
    /// Returns `true` if any message was delivered.
    pub fn pump_recv(&self) -> bool {
        let handler = self.shared.receiver.read().clone();
        let Some(handler) = handler else {
            return false;
        };
        let mut did_work = false;
        for _ in 0..PUMP_BATCH {
            let Ok(message) = self.shared.inbound_rx.try_recv() else {
                break;
            };
            let _guard = ProcessingGuard::enter(&self.shared.processing);
            did_work = true;
            self.shared
                .stats
                .received_messages
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .received_bytes
                .fetch_add(wire_len(&message) as u64, Ordering::Relaxed);
            handler(message);
        }
        did_work
    }

    /// Convenience: one full pump pass (send then receive).
    pub fn pump(&self) -> bool {
        let s = self.pump_send();
        let r = self.pump_recv();
        s || r
    }

    /// Messages queued but not yet written to a socket: the outbound
    /// queue, frames parked by delay/reorder fault injection, and frames
    /// staged on write buffers. The staged term is what lets a
    /// quiescence check in *this* process see frames still owed to a
    /// rank hosted elsewhere (whose `inflight_backlog` it cannot
    /// observe).
    pub fn outbound_backlog(&self) -> usize {
        self.shared.outbound_rx.len()
            + self.shared.reorder.lock().len()
            + self.shared.staged.load(Ordering::Acquire)
    }

    /// Frames on the wire towards this port (write buffers + kernel +
    /// pump threads) plus decoded messages awaiting `pump_recv`.
    pub fn inflight_backlog(&self) -> usize {
        self.shared.mesh.in_wire[self.shared.locality as usize].load(Ordering::Acquire) as usize
            + self.shared.inbound_rx.len()
    }

    /// Messages currently mid-pump on this port.
    pub fn processing(&self) -> usize {
        self.shared.processing.load(Ordering::Acquire)
    }
}

/// Stage an encoded frame on the write buffer towards `dst`, accounting
/// it in the in-wire gauge. Frames to unreachable/broken destinations
/// are discarded (the wire "lost" them).
fn stage_frame(shared: &TcpShared, conns: &mut [Option<OutConn>], dst: usize, frame: Vec<u8>) {
    let Some(conn) = ensure_conn(shared, conns, dst) else {
        return;
    };
    if conn.broken {
        return;
    }
    shared.mesh.in_wire[dst].fetch_add(1, Ordering::AcqRel);
    shared.staged.fetch_add(1, Ordering::AcqRel);
    conn.pending.push_back(frame);
}

/// Get (or lazily establish) the outgoing connection to `dst`,
/// registering it (with no interest armed yet) on its poll shard.
fn ensure_conn<'a>(
    shared: &TcpShared,
    conns: &'a mut [Option<OutConn>],
    dst: usize,
) -> Option<&'a mut OutConn> {
    if conns[dst].is_none() {
        let stream = TcpStream::connect(shared.mesh.addrs[dst]).ok()?;
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true).ok()?;
        // Empty interest: EPOLLOUT is armed only while bytes pend;
        // error/hang-up conditions are still reported.
        let _ = shared.mesh.out_shard(shared.locality, dst as u32).register(
            raw_fd(&stream),
            out_token(shared.locality, dst as u32),
            Interest {
                readable: false,
                writable: false,
            },
        );
        conns[dst] = Some(OutConn {
            stream,
            pending: VecDeque::new(),
            offset: 0,
            broken: false,
            armed: false,
        });
    }
    conns[dst].as_mut()
}

impl TransportPort for TcpPort {
    fn locality(&self) -> u32 {
        TcpPort::locality(self)
    }
    fn stats(&self) -> &PortStats {
        TcpPort::stats(self)
    }
    fn send(&self, message: Message) {
        TcpPort::send(self, message)
    }
    fn pump_send(&self) -> bool {
        TcpPort::pump_send(self)
    }
    fn pump_recv(&self) -> bool {
        TcpPort::pump_recv(self)
    }
    fn set_receiver(&self, handler: ReceiveHandler) {
        TcpPort::set_receiver(self, handler)
    }
    fn set_notify(&self, notify: NotifyFn) {
        TcpPort::set_notify(self, notify)
    }
    fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        TcpPort::set_fault_plan(self, plan)
    }
    fn outbound_backlog(&self) -> usize {
        TcpPort::outbound_backlog(self)
    }
    fn inflight_backlog(&self) -> usize {
        TcpPort::inflight_backlog(self)
    }
    fn processing(&self) -> usize {
        TcpPort::processing(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame_len;
    use crate::message::MessageKind;
    use bytes::Bytes;
    use std::time::{Duration, Instant};

    fn msg(src: u32, dst: u32, payload: &[u8]) -> Message {
        Message::new(
            src,
            dst,
            MessageKind::Parcel,
            Bytes::copy_from_slice(payload),
        )
    }

    fn pump_until<F: Fn() -> bool>(ports: &[TcpPort], done: F, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !done() {
            for p in ports {
                p.pump();
            }
            if Instant::now() > deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    #[test]
    fn message_travels_over_real_sockets() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        a.send(msg(0, 1, b"over tcp"));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || !got.lock().is_empty(),
            Duration::from_secs(30)
        ));
        assert_eq!(got.lock()[0].as_ref(), b"over tcp");
        assert_eq!(
            a.stats().sent_bytes.load(Ordering::Relaxed),
            frame_len(8) as u64
        );
        assert_eq!(
            b.stats().received_bytes.load(Ordering::Relaxed),
            frame_len(8) as u64
        );
    }

    #[test]
    fn fifo_order_preserved_per_link() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload[0])));
        for i in 0..50u8 {
            a.send(msg(0, 1, &[i]));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 50,
            Duration::from_secs(30)
        ));
        assert_eq!(*got.lock(), (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn large_payload_crosses_kernel_buffers() {
        // Larger than a default loopback socket buffer: forces the
        // WouldBlock path, EPOLLOUT-resumed flushes and multi-readv
        // reassembly on the receive side.
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let payload: Vec<u8> = (0..3 * 1024 * 1024u32).map(|i| i as u8).collect();
        let expect = payload.clone();
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        a.send(msg(0, 1, &payload));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || !got.lock().is_empty(),
            Duration::from_secs(60)
        ));
        assert_eq!(got.lock()[0].as_ref(), &expect[..]);
    }

    #[test]
    fn corrupt_fault_counts_decode_failure() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::corrupt_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"abcdef"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 5
                && b.stats().decode_failures.load(Ordering::SeqCst) == 5,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn drop_fault_loses_the_message() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::drop_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"x"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 5,
            Duration::from_secs(30)
        ));
        // Give stragglers a chance, then confirm nothing else arrives.
        std::thread::sleep(Duration::from_millis(50));
        for p in [&a, &b] {
            p.pump();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn send_to_self_is_allowed() {
        let transport = TcpTransport::new(1).expect("bind loopback");
        let a = transport.port(0);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        a.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.send(msg(0, 0, b"self"));
        assert!(pump_until(
            std::slice::from_ref(&a),
            || hits.load(Ordering::SeqCst) == 1,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn teardown_joins_all_threads_quickly() {
        let t0 = Instant::now();
        {
            let transport = TcpTransport::new(4).expect("bind loopback");
            let a = transport.port(0);
            transport.port(1).set_receiver(Arc::new(|_| {}));
            a.send(msg(0, 1, b"x"));
            a.pump_send();
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "teardown hung");
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        a.set_fault_plan(Some(Arc::new(FaultPlan::duplicate_every(2))));
        for _ in 0..10 {
            a.send(msg(0, 1, b"dup"));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || hits.load(Ordering::SeqCst) == 15,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn reorder_fault_delivers_everything() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        let a = transport.port(0);
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload[0])));
        a.set_fault_plan(Some(Arc::new(FaultPlan::reorder_window(4))));
        for i in 0..16u8 {
            a.send(msg(0, 1, &[i]));
        }
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || got.lock().len() == 16,
            Duration::from_secs(30)
        ));
        assert_eq!(a.outbound_backlog(), 0, "stage fully drained");
        let mut seen = got.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<u8>>(), "nothing lost");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_panics() {
        let transport = TcpTransport::new(2).expect("bind loopback");
        transport.port(0).send(msg(0, 7, b"x"));
    }

    /// Threads the process is running, per /proc (Linux).
    #[cfg(target_os = "linux")]
    fn os_thread_count() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Connect a raw client to `addr`, retrying briefly if the accept
    /// queue is momentarily full.
    fn connect_client(addr: SocketAddr) -> TcpStream {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match TcpStream::connect(addr) {
                Ok(s) => return s,
                Err(e) => {
                    assert!(Instant::now() < deadline, "connect failed for 30s: {e}");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn thread_count_is_o_pump_threads_not_o_connections() {
        const CONNS: usize = 256;
        let before = os_thread_count();
        let transport = TcpTransport::new(2).expect("bind loopback");
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let addr = transport.listen_addr(1);
        let mut clients = Vec::with_capacity(CONNS);
        for i in 0..CONNS {
            let mut c = connect_client(addr);
            c.write_all(&encode_frame(&msg(0, 1, &[i as u8])))
                .expect("client write");
            clients.push(c);
        }
        // All 256 streams live and accepted once every frame arrived.
        assert!(pump_until(
            std::slice::from_ref(&b),
            || hits.load(Ordering::SeqCst) == CONNS as u64,
            Duration::from_secs(60)
        ));
        let during = os_thread_count();
        let budget = transport.tuning().pump_threads + 2;
        assert!(
            during <= before + budget,
            "{CONNS} connections cost {} extra threads (budget {budget})",
            during - before
        );
        drop(clients);
    }

    #[test]
    fn shutdown_is_fast_with_many_open_connections() {
        const CONNS: usize = 256;
        let transport = TcpTransport::new(2).expect("bind loopback");
        let b = transport.port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let addr = transport.listen_addr(1);
        let mut clients = Vec::with_capacity(CONNS);
        for i in 0..CONNS {
            let mut c = connect_client(addr);
            c.write_all(&encode_frame(&msg(0, 1, &[i as u8])))
                .expect("client write");
            clients.push(c);
        }
        assert!(pump_until(
            std::slice::from_ref(&b),
            || hits.load(Ordering::SeqCst) == CONNS as u64,
            Duration::from_secs(60)
        ));
        drop(b);
        let t0 = Instant::now();
        drop(transport);
        let took = t0.elapsed();
        assert!(
            took < Duration::from_millis(100),
            "teardown with {CONNS} open connections took {took:?}"
        );
        drop(clients);
    }

    #[test]
    fn pump_pool_is_shardable() {
        let transport =
            TcpTransport::with_tuning(4, TcpTuning { pump_threads: 2 }).expect("bind loopback");
        assert_eq!(transport.tuning().pump_threads, 2);
        let ports: Vec<TcpPort> = (0..4).map(|l| transport.port(l)).collect();
        let hits = Arc::new(AtomicU64::new(0));
        for p in &ports {
            let h = Arc::clone(&hits);
            p.set_receiver(Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // All-to-all traffic across both shards.
        for src in 0..4u32 {
            for dst in 0..4u32 {
                ports[src as usize].send(msg(src, dst, b"shard"));
            }
        }
        assert!(pump_until(
            &ports,
            || hits.load(Ordering::SeqCst) == 16,
            Duration::from_secs(30)
        ));
    }

    #[test]
    fn split_transports_exchange_over_rank_handshake() {
        // Two transports in one test process stand in for two worker
        // processes: each hosts a single rank, discovered through the
        // rendezvous handshake, and traffic crosses real sockets between
        // "processes".
        let rdv = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let h0 = std::thread::spawn(move || {
            TcpBootstrap::rendezvous(0, 2, rdv, Duration::from_secs(5)).unwrap()
        });
        let h1 = std::thread::spawn(move || {
            TcpBootstrap::rendezvous(1, 2, rdv, Duration::from_secs(5)).unwrap()
        });
        let t0 = TcpTransport::from_bootstrap(h0.join().unwrap(), TcpTuning::default()).unwrap();
        let t1 = TcpTransport::from_bootstrap(h1.join().unwrap(), TcpTuning::default()).unwrap();
        assert_eq!(t0.hosted(), vec![0]);
        assert_eq!(t1.hosted(), vec![1]);
        assert_eq!(t0.localities(), 2);
        let a = t0.port(0);
        let b = t1.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        let echoed = Arc::new(Mutex::new(Vec::new()));
        let e = Arc::clone(&echoed);
        a.set_receiver(Arc::new(move |m: Message| e.lock().push(m.payload.clone())));
        a.send(msg(0, 1, b"cross-process"));
        b.send(msg(1, 0, b"and back"));
        assert!(pump_until(
            &[a.clone(), b.clone()],
            || !got.lock().is_empty() && !echoed.lock().is_empty(),
            Duration::from_secs(30)
        ));
        assert_eq!(got.lock()[0].as_ref(), b"cross-process");
        assert_eq!(echoed.lock()[0].as_ref(), b"and back");
        // Sender-side staged accounting settled on both sides.
        assert_eq!(a.outbound_backlog(), 0);
        assert_eq!(b.outbound_backlog(), 0);
    }

    #[test]
    #[should_panic(expected = "not hosted by this process")]
    fn remote_rank_port_panics() {
        let rdv = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let h0 = std::thread::spawn(move || {
            TcpBootstrap::rendezvous(0, 2, rdv, Duration::from_secs(5)).unwrap()
        });
        let h1 = std::thread::spawn(move || {
            TcpBootstrap::rendezvous(1, 2, rdv, Duration::from_secs(5)).unwrap()
        });
        let t0 = TcpTransport::from_bootstrap(h0.join().unwrap(), TcpTuning::default()).unwrap();
        let _t1 = TcpTransport::from_bootstrap(h1.join().unwrap(), TcpTuning::default()).unwrap();
        let _ = t0.port(1);
    }

    #[test]
    fn zero_copy_payload_aliases_receive_chunk() {
        // Two coalesced-size messages in one burst: both payloads should
        // come out of the same refcounted receive chunk (same backing
        // allocation region), proving the zero-copy path is in use.
        let transport = TcpTransport::new(2).expect("bind loopback");
        let b = transport.port(1);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        b.set_receiver(Arc::new(move |m: Message| g.lock().push(m.payload.clone())));
        let addr = transport.listen_addr(1);
        let mut c = connect_client(addr);
        let mut burst = Vec::new();
        burst.extend_from_slice(&encode_frame(&msg(0, 1, &[7u8; 100])));
        burst.extend_from_slice(&encode_frame(&msg(0, 1, &[9u8; 100])));
        c.write_all(&burst).expect("client write");
        assert!(pump_until(
            std::slice::from_ref(&b),
            || got.lock().len() == 2,
            Duration::from_secs(30)
        ));
        let got = got.lock();
        assert_eq!(got[0].as_ref(), &[7u8; 100][..]);
        assert_eq!(got[1].as_ref(), &[9u8; 100][..]);
        // When the burst arrived in one readv (the overwhelmingly common
        // case on loopback), both payloads must live in the same chunk:
        // the pointer gap equals their wire distance. A split arrival
        // (two batches) legitimately yields two chunks — skip then.
        if b.stats().readv_batches.load(Ordering::Relaxed) == 1 {
            let p0 = got[0].as_ref().as_ptr() as usize;
            let p1 = got[1].as_ref().as_ptr() as usize;
            assert_eq!(p1 - p0, frame_len(100), "payloads were copied");
        }
    }
}
