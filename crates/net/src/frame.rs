//! The wire frame format shared by every transport backend.
//!
//! A [`Message`] travels as one length-prefixed frame. Two frame versions
//! share the kind byte: the high bit ([`SEQ_FLAG`]) marks a *sequenced*
//! frame carrying the reliability sublayer's per-destination sequence
//! number; without it the layout is the original seq-less frame, so
//! unreliable traffic pays zero extra bytes. Bits 5–6 ([`CLASS_MASK`])
//! carry the message's [`DeliveryClass`]; the zero pattern is Lossless,
//! so frames from before delivery classes decode unchanged.
//!
//! ```text
//! v1: [len: u32 LE][src: u32 LE][dst: u32 LE][kind: u8][crc: u32 LE][payload…]
//! v2: [len: u32 LE][src: u32 LE][dst: u32 LE][kind|0x80][seq: u64 LE][crc: u32 LE][payload…]
//! ```
//!
//! `len` counts every byte after the length field itself, which is what a
//! streaming reader needs to know how much to pull off a socket. `crc` is
//! an FNV-1a checksum over `src`, `dst`, the kind byte (version bit
//! included), the seq field when present, and the payload: a flipped bit
//! anywhere in a frame is detected at decode time, counted as a decode
//! failure and dropped — the uniform receive-side fault contract both
//! [`crate::SimTransport`] and [`crate::TcpTransport`] honour.
//!
//! The simulated fabric moves `Message` structs directly (no copy on the
//! hot path) but charges **frame** bytes to its byte counters and routes
//! corruption through this codec, so `/network/*` statistics and fault
//! behaviour are identical across backends.

use bytes::Bytes;

use crate::message::{DeliveryClass, Message, MessageKind};

/// Bytes of frame overhead ahead of the payload for an **unsequenced**
/// frame: `len(4) + src(4) + dst(4) + kind(1) + crc(4)`.
pub const FRAME_HEADER_LEN: usize = 17;

/// Extra header bytes a sequenced (v2) frame carries: the `seq u64`.
pub const SEQ_OVERHEAD: usize = 8;

/// Kind-byte flag marking a sequenced (v2) frame.
pub const SEQ_FLAG: u8 = 0x80;

/// Kind-byte bits carrying the [`DeliveryClass`]: `0x00` Lossless,
/// `0x20` BestEffort, `0x40` Coalesce (`0x60` is invalid and rejected
/// as [`FrameError::BadKind`]). Zero means Lossless, so pre-class
/// frames decode under their historical contract.
pub const CLASS_MASK: u8 = 0x60;

/// Frame-body bytes ahead of the payload for an unsequenced frame
/// (everything the length prefix counts except the payload itself).
const BODY_HEADER_LEN: usize = 13;

/// Upper bound on a frame body; larger length prefixes are rejected as
/// garbage before any allocation happens.
pub const MAX_FRAME_BODY: usize = 256 * 1024 * 1024;

/// Total bytes an **unsequenced** message of `payload` payload bytes
/// occupies on the wire.
pub fn frame_len(payload: usize) -> usize {
    FRAME_HEADER_LEN + payload
}

/// Total bytes `message` occupies on the wire (accounts for the seq
/// field of sequenced frames). This is what byte counters charge.
pub fn wire_len(message: &Message) -> usize {
    frame_len(message.len())
        + if message.seq.is_some() {
            SEQ_OVERHEAD
        } else {
            0
        }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the header (or the advertised body) requires.
    Truncated,
    /// The length prefix is below the minimum body size or above
    /// [`MAX_FRAME_BODY`].
    BadLength(u32),
    /// The kind byte is not a known [`MessageKind`] (version and class
    /// bits aside), or carries the invalid `0x60` class pattern.
    BadKind(u8),
    /// The checksum did not match (bit rot / injected corruption).
    Checksum,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadLength(l) => write!(f, "implausible frame length {l}"),
            FrameError::BadKind(k) => write!(f, "unknown message kind {k}"),
            FrameError::Checksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a over the checksummed region (src, dst, kind byte, optional seq,
/// payload).
fn checksum(src: u32, dst: u32, kind_byte: u8, seq: Option<u64>, payload: &[u8]) -> u32 {
    const OFFSET: u32 = 0x811c_9dc5;
    const PRIME: u32 = 0x0100_0193;
    let mut h = OFFSET;
    let mut eat = |b: u8| {
        h ^= b as u32;
        h = h.wrapping_mul(PRIME);
    };
    for b in src.to_le_bytes() {
        eat(b);
    }
    for b in dst.to_le_bytes() {
        eat(b);
    }
    eat(kind_byte);
    if let Some(seq) = seq {
        for b in seq.to_le_bytes() {
            eat(b);
        }
    }
    for &b in payload {
        eat(b);
    }
    h
}

/// Encode `message` into one self-delimiting frame (v2 when the message
/// carries a sequence number, v1 otherwise).
pub fn encode_frame(message: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(wire_len(message));
    let seq_extra = if message.seq.is_some() {
        SEQ_OVERHEAD
    } else {
        0
    };
    let body_len = (BODY_HEADER_LEN + seq_extra + message.len()) as u32;
    let kind_byte = message.kind as u8
        | message.class.bits()
        | if message.seq.is_some() { SEQ_FLAG } else { 0 };
    out.extend_from_slice(&body_len.to_le_bytes());
    out.extend_from_slice(&message.src.to_le_bytes());
    out.extend_from_slice(&message.dst.to_le_bytes());
    out.push(kind_byte);
    if let Some(seq) = message.seq {
        out.extend_from_slice(&seq.to_le_bytes());
    }
    let crc = checksum(
        message.src,
        message.dst,
        kind_byte,
        message.seq,
        &message.payload,
    );
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&message.payload);
    out
}

/// A decoded frame borrowing its payload from the receive buffer.
///
/// Produced by [`decode_frame_in_place`]: all header fields are parsed
/// and the checksum is verified, but the payload is a slice into the
/// caller's buffer — no allocation, no copy. The event-loop transport
/// promotes the slice to an owned [`Bytes`] view of its (refcounted)
/// receive chunk in O(1); [`FrameView::to_message`] is the copying
/// fallback for callers without a shareable buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// Source locality.
    pub src: u32,
    /// Destination locality.
    pub dst: u32,
    /// Message kind (version and class bits stripped).
    pub kind: MessageKind,
    /// Delivery class carried in the kind byte's [`CLASS_MASK`] bits.
    pub class: DeliveryClass,
    /// Reliability sequence number (v2 frames only).
    pub seq: Option<u64>,
    /// Payload bytes, borrowed from the frame body.
    pub payload: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Byte offset of the payload within the frame *body* this view was
    /// decoded from (header fields plus the seq for v2 frames).
    pub fn payload_offset(&self) -> usize {
        BODY_HEADER_LEN + if self.seq.is_some() { SEQ_OVERHEAD } else { 0 }
    }

    /// Promote to an owned [`Message`], copying the payload.
    pub fn to_message(&self) -> Message {
        self.with_payload(Bytes::copy_from_slice(self.payload))
    }

    /// Build the [`Message`] around an owned payload the caller already
    /// holds (typically a zero-copy [`Bytes::slice`] of the receive
    /// buffer covering exactly the bytes of [`FrameView::payload`]).
    pub fn with_payload(&self, payload: Bytes) -> Message {
        debug_assert_eq!(payload.as_ref(), self.payload, "payload mismatch");
        let message = Message::new(self.src, self.dst, self.kind, payload).with_class(self.class);
        match self.seq {
            Some(s) => message.with_seq(s),
            None => message,
        }
    }
}

/// Decode a frame *body* in place: parse and checksum-verify without
/// allocating, returning a [`FrameView`] that borrows the payload.
///
/// Accept/reject behaviour is identical to [`decode_frame_body`] (which
/// is implemented on top of this): same errors for truncation, unknown
/// kinds and checksum mismatches, byte for byte.
pub fn decode_frame_in_place(body: &[u8]) -> Result<FrameView<'_>, FrameError> {
    if body.len() < BODY_HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let src = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
    let dst = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
    let kind_byte = body[8];
    let kind = MessageKind::try_from(kind_byte & !(SEQ_FLAG | CLASS_MASK))
        .map_err(|_| FrameError::BadKind(kind_byte))?;
    let class =
        DeliveryClass::from_bits(kind_byte & CLASS_MASK).ok_or(FrameError::BadKind(kind_byte))?;
    let mut at = 9;
    let seq = if kind_byte & SEQ_FLAG != 0 {
        if body.len() < BODY_HEADER_LEN + SEQ_OVERHEAD {
            return Err(FrameError::Truncated);
        }
        let seq = u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
        at += 8;
        Some(seq)
    } else {
        None
    };
    let crc = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
    let payload = &body[at + 4..];
    if crc != checksum(src, dst, kind_byte, seq, payload) {
        return Err(FrameError::Checksum);
    }
    Ok(FrameView {
        src,
        dst,
        kind,
        class,
        seq,
        payload,
    })
}

/// Decode a frame *body* (everything after the 4-byte length prefix)
/// into an owned [`Message`] (the payload is copied).
///
/// Streaming readers pull the length prefix first, then hand the body
/// here; [`decode_frame`] wraps both steps for contiguous buffers.
pub fn decode_frame_body(body: &[u8]) -> Result<Message, FrameError> {
    decode_frame_in_place(body).map(|view| view.to_message())
}

/// Validate a length prefix before allocating a body buffer for it.
pub fn check_body_len(len: u32) -> Result<usize, FrameError> {
    let len = len as usize;
    if !(BODY_HEADER_LEN..=MAX_FRAME_BODY).contains(&len) {
        return Err(FrameError::BadLength(len as u32));
    }
    Ok(len)
}

/// Decode one frame from the start of `buf`, returning the message and
/// the number of bytes consumed.
pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated);
    }
    let body_len = check_body_len(u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")))?;
    let total = 4 + body_len;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let message = decode_frame_body(&buf[4..total])?;
    Ok((message, total))
}

/// Flip the last byte of an encoded frame so that decoding fails its
/// checksum (fault injection). The last byte is always inside the
/// checksummed region — payload when one exists, the crc itself for
/// empty payloads — so [`decode_frame`] returns [`FrameError::Checksum`]
/// for both frame versions.
pub fn corrupt_frame(frame: &mut [u8]) {
    debug_assert!(frame.len() >= FRAME_HEADER_LEN);
    let last = frame.len() - 1;
    frame[last] ^= 0xA5;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(payload: &[u8]) -> Message {
        Message::new(
            3,
            7,
            MessageKind::Coalesced,
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let m = msg(b"hello frame");
        let frame = encode_frame(&m);
        assert_eq!(frame.len(), frame_len(m.len()));
        assert_eq!(frame.len(), wire_len(&m));
        let (d, consumed) = decode_frame(&frame).unwrap();
        assert_eq!(consumed, frame.len());
        assert_eq!(d.src, 3);
        assert_eq!(d.dst, 7);
        assert_eq!(d.kind, MessageKind::Coalesced);
        assert_eq!(d.seq, None);
        assert_eq!(d.payload.as_ref(), b"hello frame");
    }

    #[test]
    fn sequenced_roundtrip_preserves_seq() {
        let m = msg(b"sequenced").with_seq(0xdead_beef_0042);
        let frame = encode_frame(&m);
        assert_eq!(frame.len(), wire_len(&m));
        assert_eq!(frame.len(), frame_len(m.len()) + SEQ_OVERHEAD);
        let (d, consumed) = decode_frame(&frame).unwrap();
        assert_eq!(consumed, frame.len());
        assert_eq!(d.seq, Some(0xdead_beef_0042));
        assert_eq!(d.kind, MessageKind::Coalesced);
        assert_eq!(d.payload.as_ref(), b"sequenced");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let m = Message::new(0, 0, MessageKind::Control, Bytes::new());
        let (d, consumed) = decode_frame(&encode_frame(&m)).unwrap();
        assert_eq!(consumed, FRAME_HEADER_LEN);
        assert!(d.is_empty());

        let m = Message::new(0, 0, MessageKind::Ack, Bytes::new()).with_seq(0);
        let (d, consumed) = decode_frame(&encode_frame(&m)).unwrap();
        assert_eq!(consumed, FRAME_HEADER_LEN + SEQ_OVERHEAD);
        assert_eq!(d.seq, Some(0));
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        for m in [msg(b"0123456789"), msg(b"0123456789").with_seq(77)] {
            let frame = encode_frame(&m);
            for cut in 0..frame.len() {
                assert!(
                    decode_frame(&frame[..cut]).is_err(),
                    "cut at {cut} must not decode"
                );
            }
        }
    }

    #[test]
    fn corruption_fails_checksum() {
        for m in [
            msg(b"payload bytes"),
            msg(b"payload bytes").with_seq(3),
            Message::new(1, 2, MessageKind::Parcel, Bytes::new()),
            Message::new(1, 2, MessageKind::Parcel, Bytes::new()).with_seq(9),
        ] {
            let mut frame = encode_frame(&m);
            corrupt_frame(&mut frame);
            assert!(matches!(decode_frame(&frame), Err(FrameError::Checksum)));
        }
    }

    #[test]
    fn garbled_seq_fails_checksum() {
        let mut frame = encode_frame(&msg(b"x").with_seq(5));
        frame[14] ^= 0x01; // inside the seq field (bytes 13..21)
        assert!(matches!(decode_frame(&frame), Err(FrameError::Checksum)));
    }

    #[test]
    fn in_place_view_matches_owned_decode() {
        for m in [
            msg(b"zero copy"),
            msg(b"zero copy").with_seq(17),
            Message::new(1, 2, MessageKind::Parcel, Bytes::new()),
        ] {
            let frame = encode_frame(&m);
            let body = &frame[4..];
            let view = decode_frame_in_place(body).unwrap();
            assert_eq!(view.src, m.src);
            assert_eq!(view.dst, m.dst);
            assert_eq!(view.kind, m.kind);
            assert_eq!(view.seq, m.seq);
            assert_eq!(view.payload, m.payload.as_ref());
            // The reported payload offset locates the payload in the body.
            let off = view.payload_offset();
            assert_eq!(&body[off..], view.payload);
            // Owned promotion paths agree with the copying decoder.
            let owned = decode_frame_body(body).unwrap();
            assert_eq!(view.to_message(), owned);
            let shared = Bytes::copy_from_slice(view.payload);
            assert_eq!(view.with_payload(shared), owned);
        }
    }

    #[test]
    fn class_bits_roundtrip_on_the_wire() {
        for class in [
            DeliveryClass::Lossless,
            DeliveryClass::BestEffort,
            DeliveryClass::Coalesce,
        ] {
            for m in [
                msg(b"classed").with_class(class),
                msg(b"classed").with_class(class).with_seq(41),
            ] {
                let frame = encode_frame(&m);
                // The class costs zero extra wire bytes.
                assert_eq!(frame.len(), wire_len(&m));
                let (d, _) = decode_frame(&frame).unwrap();
                assert_eq!(d.class, class);
                assert_eq!(d, m);
                let view = decode_frame_in_place(&frame[4..]).unwrap();
                assert_eq!(view.class, class);
                assert_eq!(view.to_message(), m);
            }
        }
    }

    #[test]
    fn bad_kind_and_bad_length_are_rejected() {
        let mut frame = encode_frame(&msg(b"x"));
        frame[12] = 99; // kind byte: 0x63 = the invalid 0x60 class pattern
        assert!(matches!(decode_frame(&frame), Err(FrameError::BadKind(99))));

        let mut frame = encode_frame(&msg(b"x"));
        frame[12] = 0x1f; // valid class bits, unknown kind
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::BadKind(0x1f))
        ));

        let mut frame = encode_frame(&msg(b"x"));
        frame[0..4].copy_from_slice(&(MAX_FRAME_BODY as u32 + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::BadLength(_))
        ));

        // Length prefix smaller than the body header.
        let small = 3u32.to_le_bytes();
        assert!(matches!(
            decode_frame(&small),
            Err(FrameError::BadLength(3))
        ));
    }
}
