//! The link cost model.

use std::time::Duration;

/// Cost parameters of a point-to-point link (LogP-style).
///
/// * `send_overhead` / `recv_overhead` — fixed per-*message* CPU cost on
///   each side (message setup, handshaking, protocol work). This is the
///   cost message coalescing amortises.
/// * `per_byte` — CPU/transfer cost per payload byte (inverse bandwidth),
///   charged on the sender.
/// * `latency` — propagation delay between send completion and delivery
///   eligibility; *not* a CPU cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkModel {
    /// Per-message sender-side CPU overhead.
    pub send_overhead: Duration,
    /// Per-message receiver-side CPU overhead.
    pub recv_overhead: Duration,
    /// Sender-side CPU/wire cost per payload byte.
    pub per_byte: Duration,
    /// Propagation latency.
    pub latency: Duration,
    /// Eager-protocol size limit: messages larger than this use a
    /// rendezvous protocol (MPI-style) and pay [`LinkModel::rendezvous_extra`]
    /// additional delivery delay plus a second send overhead for the
    /// handshake. This is the mechanism that penalises oversized
    /// coalesced messages on real MPI stacks.
    pub eager_threshold: usize,
    /// Sender stall for rendezvous-protocol messages: the
    /// request-to-send/clear-to-send round trip during which the sending
    /// progress thread is blocked (MPI synchronous-send behaviour).
    pub rendezvous_extra: Duration,
}

impl LinkModel {
    /// A model in the range of an MPI stack on the paper's testbed:
    /// 20 µs/msg send, 15 µs/msg receive, ~1 GiB/s, 10 µs latency.
    pub fn cluster() -> Self {
        LinkModel {
            send_overhead: Duration::from_micros(20),
            recv_overhead: Duration::from_micros(15),
            per_byte: Duration::from_nanos(1),
            latency: Duration::from_micros(10),
            // Intel-MPI-era inter-node eager limit and a handshake RTT.
            eager_threshold: 16 * 1024,
            rendezvous_extra: Duration::from_micros(30),
        }
    }

    /// Override the eager/rendezvous crossover (used by scaled-down
    /// workloads whose payloads shrank proportionally).
    pub fn with_eager_threshold(mut self, bytes: usize) -> Self {
        self.eager_threshold = bytes;
        self
    }

    /// A free network (all costs zero): useful in unit tests that assert
    /// on functional behaviour only.
    pub fn zero() -> Self {
        LinkModel {
            send_overhead: Duration::ZERO,
            recv_overhead: Duration::ZERO,
            per_byte: Duration::ZERO,
            latency: Duration::ZERO,
            eager_threshold: usize::MAX,
            rendezvous_extra: Duration::ZERO,
        }
    }

    /// Whether a message of `bytes` payload uses the rendezvous protocol.
    pub fn is_rendezvous(&self, bytes: usize) -> bool {
        bytes > self.eager_threshold
    }

    /// Sender-side cost for one message of `bytes` payload bytes.
    /// Rendezvous messages pay the fixed overhead twice (the handshake
    /// message) plus the RTS/CTS round trip, during which the sending
    /// progress thread is stalled — the fixed per-message price that
    /// makes oversized coalesced batches lose (Fig. 6's right edge).
    pub fn send_cost(&self, bytes: usize) -> Duration {
        let base = self.send_overhead + self.per_byte * (bytes as u32);
        if self.is_rendezvous(bytes) {
            base + self.send_overhead + self.rendezvous_extra
        } else {
            base
        }
    }

    /// Delivery delay (beyond sender CPU costs) for one message:
    /// propagation plus store-and-forward transfer time.
    pub fn delivery_delay(&self, bytes: usize) -> Duration {
        self.latency + self.per_byte * (bytes as u32)
    }

    /// Receiver-side CPU cost for one message.
    pub fn recv_cost(&self) -> Duration {
        self.recv_overhead
    }

    /// Total fixed (size-independent) cost per message — the quantity
    /// coalescing divides by the number of parcels per message.
    pub fn per_message_cost(&self) -> Duration {
        self.send_overhead + self.recv_overhead
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_cost_scales_with_bytes() {
        let m = LinkModel::cluster();
        let small = m.send_cost(16);
        let large = m.send_cost(16 * 1024); // still eager at exactly 16 KiB
        assert!(large > small);
        assert_eq!(large - small, m.per_byte * ((16 * 1024 - 16) as u32));
    }

    #[test]
    fn rendezvous_crossover_penalises_large_messages() {
        let m = LinkModel::cluster();
        assert!(!m.is_rendezvous(16 * 1024));
        assert!(m.is_rendezvous(16 * 1024 + 1));
        // The handshake adds a second fixed overhead plus the RTS/CTS
        // stall on the send side.
        let eager = m.send_cost(16 * 1024);
        let rendezvous = m.send_cost(16 * 1024 + 1);
        assert!(
            rendezvous >= eager + m.send_overhead + m.rendezvous_extra - Duration::from_nanos(10)
        );
        // Delivery delay is store-and-forward regardless of protocol.
        assert!(m.delivery_delay(32 * 1024) >= m.latency);
        // Custom thresholds for scaled-down workloads.
        let scaled = m.with_eager_threshold(1024);
        assert!(scaled.is_rendezvous(2048));
    }

    #[test]
    fn fixed_cost_is_size_independent() {
        let m = LinkModel::cluster();
        assert_eq!(m.recv_cost(), m.recv_overhead);
        assert_eq!(m.per_message_cost(), Duration::from_micros(35));
    }

    #[test]
    fn zero_model_is_free() {
        let m = LinkModel::zero();
        assert_eq!(m.send_cost(1_000_000), Duration::ZERO);
        assert_eq!(m.recv_cost(), Duration::ZERO);
    }

    #[test]
    fn coalescing_arithmetic_favours_batching() {
        // k parcels of b bytes sent separately vs coalesced: the fixed
        // overhead shrinks k-fold while byte cost is unchanged — the core
        // economics of the paper.
        let m = LinkModel::cluster();
        let k = 128u32;
        let b = 16usize;
        let separate = (m.send_cost(b) + m.recv_cost()) * k;
        let coalesced = m.send_cost(b * k as usize) + m.recv_cost();
        assert!(coalesced < separate / 10);
    }
}
