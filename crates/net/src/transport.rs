//! The transport abstraction: the seam between the parcel layer and
//! whatever moves bytes between localities.
//!
//! Everything above `rpx-net` talks to a [`TransportPort`] trait object;
//! the two implementations are
//!
//! * [`crate::SimTransport`] — the in-process simulated fabric charging
//!   [`LinkModel`] costs in real CPU time (the reproduction's default),
//! * [`crate::TcpTransport`] — real loopback TCP sockets with
//!   length-prefixed frames and genuine per-message syscall overhead,
//!   multiplexed by a small event-loop pump pool ([`TcpTuning`]).
//!
//! Both are pumped by scheduler background work ([`TransportPort::pump_send`]
//! / [`TransportPort::pump_recv`]), so their progress cost lands in the
//! `/threads/background-work` account and the paper's Eq. 4 network
//! overhead measures them identically. [`TransportKind`] is the builder
//! knob the runtime exposes.

use std::sync::Arc;

use crate::fabric::{PortStats, SimTransport};
use crate::fault::FaultPlan;
use crate::message::Message;
use crate::model::LinkModel;
use crate::shm::ShmTuning;
use crate::tcp::{TcpTransport, TcpTuning};

/// Handler invoked (from pump threads) for every delivered message.
pub type ReceiveHandler = Arc<dyn Fn(Message) + Send + Sync>;

/// Wake-up hook called when traffic lands on a port's queues.
pub type NotifyFn = Arc<dyn Fn() + Send + Sync>;

/// A network connecting the localities of one cluster.
///
/// Object-safe: the runtime holds an `Arc<dyn Transport>` and hands each
/// locality its [`TransportPort`].
pub trait Transport: Send + Sync {
    /// Number of localities this transport connects.
    fn localities(&self) -> u32;

    /// The endpoint of `locality`.
    ///
    /// # Panics
    /// Panics if `locality` is out of range.
    fn port(&self, locality: u32) -> Arc<dyn TransportPort>;
}

/// One locality's endpoint on a [`Transport`].
///
/// ## Contract
///
/// * [`send`](TransportPort::send) is cheap and non-blocking: it enqueues
///   and wakes the notify hook; the real transmission work happens in
///   [`pump_send`](TransportPort::pump_send), which background workers
///   call repeatedly.
/// * [`pump_recv`](TransportPort::pump_recv) delivers due messages to the
///   installed receive handler on the *calling* thread — receive-side
///   work is charged to whoever pumps, exactly like HPX parcelport
///   progress functions.
/// * Both pumps are safe to call concurrently from many threads and
///   process a bounded batch per call.
/// * A frame that arrives corrupted must increment
///   [`PortStats::decode_failures`] and be dropped — never delivered,
///   never fatal.
/// * Backlog/processing accessors must be conservative: a quiescence
///   check that observes all of them zero may conclude no message is in
///   flight anywhere in the transport.
pub trait TransportPort: Send + Sync {
    /// This port's locality id.
    fn locality(&self) -> u32;

    /// Traffic statistics (bytes counters measure bytes on the wire,
    /// i.e. frame lengths, so backends are comparable).
    fn stats(&self) -> &PortStats;

    /// Enqueue a message for transmission.
    ///
    /// # Panics
    /// Panics if `message.src` is not this port or `message.dst` is out
    /// of range.
    fn send(&self, message: Message);

    /// Drive outbound progress. Returns `true` if any work was done.
    fn pump_send(&self) -> bool;

    /// Deliver received messages to the handler. Returns `true` if any
    /// message was delivered.
    fn pump_recv(&self) -> bool;

    /// One full pump pass (send then receive).
    fn pump(&self) -> bool {
        let s = self.pump_send();
        let r = self.pump_recv();
        s || r
    }

    /// Install the handler invoked for every delivered message.
    fn set_receiver(&self, handler: ReceiveHandler);

    /// Install a wake-up hook called whenever traffic lands on this
    /// port's queues.
    fn set_notify(&self, notify: NotifyFn);

    /// Install (or clear) a failure-injection plan for this port's
    /// outbound messages (drops/corruption happen after send-side costs,
    /// like a wire fault).
    fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>);

    /// Messages queued but not yet put on the wire.
    fn outbound_backlog(&self) -> usize;

    /// Messages on the wire towards this port, not yet delivered.
    fn inflight_backlog(&self) -> usize;

    /// Messages currently mid-pump on this port.
    fn processing(&self) -> usize;
}

/// Which transport backend a cluster is built on — the builder knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// The in-process simulated fabric, charging the given [`LinkModel`]
    /// costs in real CPU time on pump threads.
    Sim(LinkModel),
    /// Real loopback TCP sockets (`127.0.0.1`): length-prefixed frames
    /// multiplexed by an event-loop pump pool (default tuning: one pump
    /// thread), vectored I/O, zero-copy frame decode.
    TcpLoopback,
    /// [`TransportKind::TcpLoopback`] with explicit [`TcpTuning`]
    /// (e.g. more pump threads for very large connection fan-in).
    TcpTuned(TcpTuning),
    /// The TCP transport with the shared-memory backend enabled:
    /// same-host destinations are reached through SPSC byte rings in
    /// shared segments (heap in all-in-one mode, mmap'd `/dev/shm`
    /// files across processes) with doorbell wakeups; remote hosts and
    /// oversize frames ride TCP ([`ShmTuning`] carries both knobs).
    Shm(ShmTuning),
}

impl Default for TransportKind {
    fn default() -> Self {
        TransportKind::Sim(LinkModel::cluster())
    }
}

impl TransportKind {
    /// Build the transport for `localities` localities.
    ///
    /// # Errors
    /// Only the TCP backend can fail (socket binding).
    pub fn build(&self, localities: u32) -> std::io::Result<Arc<dyn Transport>> {
        match self {
            TransportKind::Sim(model) => Ok(SimTransport::new(localities, *model)),
            TransportKind::TcpLoopback => Ok(TcpTransport::new(localities)?),
            TransportKind::TcpTuned(tuning) => Ok(TcpTransport::with_tuning(localities, *tuning)?),
            TransportKind::Shm(tuning) => Ok(TcpTransport::with_tuning_shm(localities, *tuning)?),
        }
    }

    /// The link cost model, if this is the simulated backend.
    pub fn link_model(&self) -> Option<LinkModel> {
        match self {
            TransportKind::Sim(model) => Some(*model),
            TransportKind::TcpLoopback | TransportKind::TcpTuned(_) | TransportKind::Shm(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_the_right_backend() {
        let sim = TransportKind::Sim(LinkModel::zero()).build(2).unwrap();
        assert_eq!(sim.localities(), 2);
        assert_eq!(sim.port(1).locality(), 1);

        let tcp = TransportKind::TcpLoopback.build(2).unwrap();
        assert_eq!(tcp.localities(), 2);
        assert_eq!(tcp.port(0).locality(), 0);

        let tuned = TransportKind::TcpTuned(TcpTuning { pump_threads: 2 })
            .build(2)
            .unwrap();
        assert_eq!(tuned.localities(), 2);
        assert_eq!(tuned.port(1).locality(), 1);

        let shm = TransportKind::Shm(ShmTuning::default()).build(2).unwrap();
        assert_eq!(shm.localities(), 2);
        assert_eq!(shm.port(0).locality(), 0);
    }

    #[test]
    fn kind_reports_its_link_model() {
        assert_eq!(
            TransportKind::Sim(LinkModel::zero()).link_model(),
            Some(LinkModel::zero())
        );
        assert_eq!(TransportKind::TcpLoopback.link_model(), None);
        assert_eq!(
            TransportKind::TcpTuned(TcpTuning::default()).link_model(),
            None
        );
        assert_eq!(TransportKind::Shm(ShmTuning::default()).link_model(), None);
        assert_eq!(
            TransportKind::default().link_model(),
            Some(LinkModel::cluster())
        );
    }
}
