//! # rpx-net
//!
//! The in-process **software network fabric** standing in for the paper's
//! cluster interconnect (ROSTAM's Marvin nodes with Intel MPI).
//!
//! ## Substitution rationale
//!
//! The phenomenon the paper studies — per-message software overhead
//! dominating fine-grained communication, and coalescing amortising it —
//! does not require a physical wire, only that:
//!
//! 1. every message costs a fixed per-message software overhead on the
//!    sending and receiving CPUs (driver/MPI stack work),
//! 2. bytes cost transfer time proportional to size (bandwidth),
//! 3. delivery happens after a propagation latency,
//! 4. those CPU costs are paid *by scheduler threads as background work*,
//!    where HPX pays them.
//!
//! [`LinkModel`] parameterises (1)–(3); [`Fabric`] charges the CPU costs in
//! real time (busy-spinning the pumping thread) so they appear in the
//! `/threads/background-work` account exactly like HPX's parcelport
//! progress functions. Message pumping is done by [`NetPort::pump_send`] /
//! [`NetPort::pump_recv`], which the runtime registers as scheduler
//! background work.
//!
//! The default model (≈20 µs per message send, ≈15 µs receive, 1 GB/s,
//! 10 µs latency) is in the range of MPI per-message costs on the paper's
//! 2013-era cluster; `repro` experiments sweep it where relevant.

#![warn(missing_docs)]

pub mod fabric;
pub mod fault;
pub mod message;
pub mod model;

pub use fabric::{Fabric, NetPort, PortStats};
pub use fault::{FaultAction, FaultPlan};
pub use message::{Message, MessageKind};
pub use model::LinkModel;
