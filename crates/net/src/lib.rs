//! # rpx-net
//!
//! The **network layer**: a pluggable [`Transport`] abstraction with two
//! backends standing in for the paper's cluster interconnect (ROSTAM's
//! Marvin nodes with Intel MPI).
//!
//! ## The transport seam
//!
//! Everything above this crate sends through `Arc<dyn TransportPort>`;
//! which backend sits behind the trait is a [`TransportKind`] builder
//! knob:
//!
//! * [`SimTransport`] (default) — the in-process simulated fabric. The
//!   phenomenon the paper studies — per-message software overhead
//!   dominating fine-grained communication, and coalescing amortising
//!   it — does not require a physical wire, only that:
//!
//!   1. every message costs a fixed per-message software overhead on the
//!      sending and receiving CPUs (driver/MPI stack work),
//!   2. bytes cost transfer time proportional to size (bandwidth),
//!   3. delivery happens after a propagation latency,
//!   4. those CPU costs are paid *by scheduler threads as background
//!      work*, where HPX pays them.
//!
//!   [`LinkModel`] parameterises (1)–(3); the fabric charges the CPU
//!   costs in real time (busy-spinning the pumping thread) so they appear
//!   in the `/threads/background-work` account exactly like HPX's
//!   parcelport progress functions. The default model (≈20 µs per message
//!   send, ≈15 µs receive, 1 GB/s, 10 µs latency) is in the range of MPI
//!   per-message costs on the paper's 2013-era cluster.
//!
//! * [`TcpTransport`] — real loopback-TCP sockets with length-prefixed
//!   [`frame`]s: genuine per-message syscall overhead instead of a
//!   modelled one, used to validate that conclusions drawn on the sim
//!   carry over to a real kernel network path.
//!
//! Both backends are pumped by [`TransportPort::pump_send`] /
//! [`TransportPort::pump_recv`], which the runtime registers as scheduler
//! background work — so Eq. 4 network overhead measures them identically.

#![warn(missing_docs)]

pub mod bootstrap;
pub mod fabric;
pub mod fault;
pub mod frame;
pub mod message;
pub mod model;
pub mod reliability;
pub mod shm;
pub mod tcp;
pub mod transport;

pub use bootstrap::{
    BootstrapError, BootstrapMode, HostId, TcpBootstrap, Topology, BOOTSTRAP_MAGIC,
    BOOTSTRAP_VERSION,
};
pub use fabric::{Fabric, NetPort, PortStats, SimPort, SimTransport};
pub use fault::{FaultAction, FaultPlan, FaultStage};
pub use frame::{
    corrupt_frame, decode_frame, decode_frame_in_place, encode_frame, frame_len, wire_len,
    FrameError, FrameView, CLASS_MASK, FRAME_HEADER_LEN, MAX_FRAME_BODY, SEQ_FLAG, SEQ_OVERHEAD,
};
pub use message::{DeliveryClass, Message, MessageKind};
pub use model::LinkModel;
pub use reliability::{DeliveryError, ReliabilityConfig, ReliablePort, ReliableTransport};
pub use shm::{ShmNamespace, ShmSegment, ShmTuning};
pub use tcp::{TcpPort, TcpTransport, TcpTuning};
pub use transport::{NotifyFn, ReceiveHandler, Transport, TransportKind, TransportPort};
