//! Shared-memory ring stress: two transports bootstrapped as separate
//! ranks on one host (the mapped-segment, cross-process wiring) push far
//! more traffic than a ring holds, so the cursors wrap the byte buffer
//! hundreds of times while the reliability layer rides out duplicate and
//! reorder faults on the same path. Exactly-once delivery and quiescence
//! accounting must survive all of it.
//!
//! Rings here are deliberately tiny (1 KiB data per direction) so a run
//! exercises the full/backpressure/doorbell machinery constantly; the
//! default 4 MiB rings would never wrap under test-sized traffic.

use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use rpx_net::{
    FaultPlan, Message, MessageKind, ReliabilityConfig, ReliablePort, ShmTuning, TcpBootstrap,
    TcpTransport, TcpTuning, TransportPort,
};

const RING_BYTES: usize = 1024;
const MESSAGES: u32 = 2_000;

/// Two transports joined by the rank handshake, shm enabled with tiny
/// rings. On Linux the pair maps a real `/dev/shm` segment; elsewhere
/// the wiring degrades to TCP and the invariants still hold.
fn split_pair(ring_bytes: usize) -> (Arc<TcpTransport>, Arc<TcpTransport>) {
    let rdv = TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap();
    let h0 = std::thread::spawn(move || {
        TcpBootstrap::rendezvous(0, 2, rdv, Duration::from_secs(5)).unwrap()
    });
    let h1 = std::thread::spawn(move || {
        TcpBootstrap::rendezvous(1, 2, rdv, Duration::from_secs(5)).unwrap()
    });
    let tuning = ShmTuning {
        tcp: TcpTuning::default(),
        ring_bytes,
    };
    let t0 = TcpTransport::from_bootstrap_shm(h0.join().unwrap(), tuning).unwrap();
    let t1 = TcpTransport::from_bootstrap_shm(h1.join().unwrap(), tuning).unwrap();
    (t0, t1)
}

fn pump_until(ports: &[Arc<ReliablePort>], done: impl Fn() -> bool, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !done() {
        for p in ports {
            p.pump();
        }
        if Instant::now() > deadline {
            return false;
        }
        std::thread::yield_now();
    }
    true
}

/// Sequence-stamped payload (4-byte LE index plus padding so frames are
/// big enough to wrap a 1 KiB ring quickly).
fn stamped(i: u32) -> Bytes {
    let mut p = vec![0u8; 24];
    p[..4].copy_from_slice(&i.to_le_bytes());
    Bytes::from(p)
}

fn index_of(m: &Message) -> u32 {
    u32::from_le_bytes(m.payload[..4].try_into().unwrap())
}

/// Drive `MESSAGES` sequence-stamped messages each way between the split
/// pair under `plan` on both outbound wires, with reliability providing
/// exactly-once. Returns the per-index delivery counts observed on each
/// side.
fn run_bidirectional_stress(plan: &Arc<FaultPlan>) -> (Vec<u64>, Vec<u64>) {
    let (t0, t1) = split_pair(RING_BYTES);
    let cfg = ReliabilityConfig::default();
    let a = ReliablePort::new(Arc::new(t0.port(0)), cfg);
    let b = ReliablePort::new(Arc::new(t1.port(1)), cfg);
    a.set_fault_plan(Some(Arc::clone(plan)));
    b.set_fault_plan(Some(Arc::clone(plan)));

    let counts_b = Arc::new(Mutex::new(vec![0u64; MESSAGES as usize]));
    let counts_a = Arc::new(Mutex::new(vec![0u64; MESSAGES as usize]));
    let delivered = Arc::new(AtomicU64::new(0));
    {
        let (c, d) = (Arc::clone(&counts_b), Arc::clone(&delivered));
        b.set_receiver(Arc::new(move |m: Message| {
            c.lock()[index_of(&m) as usize] += 1;
            d.fetch_add(1, Ordering::SeqCst);
        }));
        let (c, d) = (Arc::clone(&counts_a), Arc::clone(&delivered));
        a.set_receiver(Arc::new(move |m: Message| {
            c.lock()[index_of(&m) as usize] += 1;
            d.fetch_add(1, Ordering::SeqCst);
        }));
    }

    for i in 0..MESSAGES {
        a.send(Message::new(0, 1, MessageKind::Parcel, stamped(i)));
        b.send(Message::new(1, 0, MessageKind::Parcel, stamped(i)));
        // Interleave sends with pumping so the tiny rings never deadlock
        // the unreliable sender-side queue growth.
        if i % 16 == 0 {
            a.pump();
            b.pump();
        }
    }
    let total = 2 * MESSAGES as u64;
    assert!(
        pump_until(
            &[Arc::clone(&a), Arc::clone(&b)],
            || delivered.load(Ordering::SeqCst) >= total,
            60
        ),
        "stalled at {}/{total} deliveries",
        delivered.load(Ordering::SeqCst)
    );
    // Quiescence: both directions drain completely, including frames
    // parked in ring memory (the shared inflight gauges).
    assert!(
        pump_until(
            &[Arc::clone(&a), Arc::clone(&b)],
            || a.outbound_backlog() == 0
                && b.outbound_backlog() == 0
                && a.inflight_backlog() == 0
                && b.inflight_backlog() == 0,
            60
        ),
        "backlogs never drained"
    );
    let ca = counts_a.lock().clone();
    let cb = counts_b.lock().clone();
    (ca, cb)
}

fn assert_exactly_once(side: &str, counts: &[u64]) {
    for (i, &n) in counts.iter().enumerate() {
        assert_eq!(n, 1, "{side}: message {i} delivered {n} times");
    }
}

#[test]
fn wraparound_exactly_once_under_duplicates() {
    // ~2000 × ~53-byte frames each way through 1 KiB rings ≈ 100+ full
    // wraps per direction, with every 5th frame duplicated on the wire.
    let plan = Arc::new(FaultPlan::duplicate_every(5));
    let (a, b) = run_bidirectional_stress(&plan);
    assert!(plan.duplicated() > 0, "plan injected duplicates");
    assert_exactly_once("a", &a);
    assert_exactly_once("b", &b);
}

#[test]
fn wraparound_exactly_once_under_reorder() {
    let plan = Arc::new(FaultPlan::reorder_window(4));
    let (a, b) = run_bidirectional_stress(&plan);
    assert!(plan.reordered() > 0, "plan reordered frames");
    assert_exactly_once("a", &a);
    assert_exactly_once("b", &b);
}

/// The raw (unreliable) ring path under the same wrap pressure: every
/// frame sent with no faults arrives exactly once, in order per
/// direction, even though the ring wraps constantly and the producer
/// parks on Full repeatedly.
#[test]
fn wraparound_preserves_fifo_without_faults() {
    let (t0, t1) = split_pair(RING_BYTES);
    let a = t0.port(0);
    let b = t1.port(1);
    let got = Arc::new(Mutex::new(Vec::with_capacity(MESSAGES as usize)));
    let g = Arc::clone(&got);
    b.set_receiver(Arc::new(move |m: Message| g.lock().push(index_of(&m))));
    for i in 0..MESSAGES {
        a.send(Message::new(0, 1, MessageKind::Parcel, stamped(i)));
        if i % 16 == 0 {
            a.pump_send();
            b.pump_recv();
        }
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while got.lock().len() < MESSAGES as usize && Instant::now() < deadline {
        a.pump();
        b.pump();
        std::thread::yield_now();
    }
    let got = got.lock();
    assert_eq!(got.len(), MESSAGES as usize, "all frames arrived");
    assert!(
        got.iter().zip(got.iter().skip(1)).all(|(x, y)| x < y),
        "single-path FIFO held across wraparounds"
    );
}
