//! Out-of-order frames must survive receive-buffer reuse.
//!
//! The event-loop TCP backend hands the reliability layer payloads that
//! are zero-copy slices of a refcounted receive chunk. A message that
//! sits around (delivered out of order, stashed by the application, or
//! parked anywhere above the transport) keeps its chunk alive while the
//! per-connection buffer recycles underneath — if the transport ever
//! handed out a slice of memory it later reuses, the stashed payloads
//! would be garbled by subsequent traffic. This test reorders hundreds
//! of sequenced frames over real sockets, stashes every delivered
//! payload *without copying*, keeps the wire busy long past buffer
//! turnover, and then checks every byte.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use rpx_net::{
    FaultPlan, Message, MessageKind, ReliabilityConfig, ReliablePort, ReliableTransport,
    TcpTransport, TransportPort,
};

/// Deterministic payload for message `i`: index-stamped header plus a
/// varying-length fill pattern (so adjacent frames differ in size and
/// content).
fn payload_for(i: u32) -> Vec<u8> {
    let len = 512 + (i as usize % 700);
    let mut p = Vec::with_capacity(4 + len);
    p.extend_from_slice(&i.to_le_bytes());
    p.extend((0..len).map(|j| (i as u8).wrapping_mul(7).wrapping_add(j as u8)));
    p
}

fn pump_until<F: Fn() -> bool>(ports: &[&Arc<ReliablePort>], done: F, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while !done() {
        for p in ports {
            p.pump();
        }
        if Instant::now() > deadline {
            return false;
        }
        std::thread::yield_now();
    }
    true
}

#[test]
fn reordered_frames_survive_receive_buffer_reuse() {
    const MESSAGES: u32 = 300;
    let tcp = TcpTransport::new(2).expect("bind loopback");
    let reliable = ReliableTransport::new(tcp, ReliabilityConfig::default());
    let a = reliable.reliable_port(0);
    let b = reliable.reliable_port(1);

    // Stash every delivered payload as-is: `m.payload` is (and must
    // remain) a live view of the transport's receive chunk.
    let stash: Arc<Mutex<Vec<(u64, Bytes)>>> = Arc::new(Mutex::new(Vec::new()));
    let s = Arc::clone(&stash);
    b.set_receiver(Arc::new(move |m: Message| {
        s.lock()
            .push((m.seq.expect("sequenced"), m.payload.clone()));
    }));

    // Reorder aggressively at the sender's wire stage.
    a.set_fault_plan(Some(Arc::new(FaultPlan::reorder_window(4))));
    for i in 0..MESSAGES {
        a.send(Message::new(
            0,
            1,
            MessageKind::Parcel,
            Bytes::from(payload_for(i)),
        ));
    }
    assert!(
        pump_until(
            &[&a, &b],
            || stash.lock().len() == MESSAGES as usize,
            Duration::from_secs(60)
        ),
        "only {} of {MESSAGES} delivered",
        stash.lock().len()
    );

    // Keep the link busy well past several receive-buffer generations
    // (~1 MiB of further traffic through the same connection) so any
    // wrongly reused memory gets overwritten.
    let churn_seen = Arc::new(std::sync::atomic::AtomicU64::new(0));
    {
        let before = stash.lock().len();
        let c = Arc::clone(&churn_seen);
        let s = Arc::clone(&stash);
        b.set_receiver(Arc::new(move |_m: Message| {
            c.fetch_add(1, Ordering::SeqCst);
            let _ = &s; // keep the stash alive in both closures
        }));
        a.set_fault_plan(None);
        for i in 0..256u32 {
            a.send(Message::new(
                0,
                1,
                MessageKind::Parcel,
                Bytes::from(vec![0xAA; 4096 + (i as usize % 64)]),
            ));
        }
        assert!(pump_until(
            &[&a, &b],
            || churn_seen.load(Ordering::SeqCst) == 256,
            Duration::from_secs(60)
        ));
        assert_eq!(stash.lock().len(), before, "stash mutated by churn");
    }

    let stash = stash.lock();
    // The reorder plan must actually have inverted delivery somewhere —
    // otherwise this test proves nothing about out-of-order survival.
    let inversions = stash.windows(2).filter(|w| w[0].0 > w[1].0).count();
    assert!(inversions > 0, "no out-of-order delivery observed");

    // Every stashed payload is still byte-perfect, keyed by its embedded
    // index (delivery order is scrambled; content must not be).
    let mut seen = vec![false; MESSAGES as usize];
    for (seq, payload) in stash.iter() {
        let i = u32::from_le_bytes(payload[..4].try_into().expect("index header"));
        assert!(
            (i as usize) < seen.len() && !seen[i as usize],
            "bad or duplicate index {i} (seq {seq})"
        );
        seen[i as usize] = true;
        assert_eq!(
            payload.as_ref(),
            payload_for(i).as_slice(),
            "payload {i} garbled after buffer reuse"
        );
    }
    assert!(seen.iter().all(|&s| s), "missing payloads");
}
