//! Transport conformance suite: property tests for the wire frame codec
//! plus a behavioural harness run against **both** backends
//! ([`SimTransport`] and [`TcpTransport`]), including the fault-injection
//! (drop + corrupt) paths. Anything that claims to implement
//! [`rpx_net::TransportPort`] must pass these unchanged.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::prelude::*;

use rpx_net::{
    decode_frame, encode_frame, frame_len, FaultPlan, FrameError, LinkModel, Message, MessageKind,
    TransportKind, TransportPort, FRAME_HEADER_LEN,
};

/// Deterministic pseudo-random payload of `len` bytes (cheap to build
/// even for the >64 KiB cases, unlike a per-byte strategy).
fn payload(len: usize, seed: u8) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect::<Vec<u8>>(),
    )
}

fn kinds() -> impl Strategy<Value = MessageKind> {
    (0u8..3).prop_map(|k| match k {
        0 => MessageKind::Parcel,
        1 => MessageKind::Coalesced,
        _ => MessageKind::Control,
    })
}

/// Payload lengths spanning the interesting regimes: empty, tiny,
/// mid-sized, and >64 KiB (the rendezvous regime).
fn payload_len() -> impl Strategy<Value = usize> {
    (0u8..4, any::<u64>()).prop_map(|(regime, v)| match regime {
        0 => 0,
        1 => 1 + (v % 255) as usize,
        2 => 1_000 + (v % 4_000) as usize,
        _ => 65_537 + (v % 24_463) as usize,
    })
}

/// Small payload lengths (including empty) for the rejection properties.
fn small_len() -> impl Strategy<Value = usize> {
    (0u8..2, any::<u64>()).prop_map(|(regime, v)| match regime {
        0 => 0,
        _ => 1 + (v % 511) as usize,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity for arbitrary messages, including
    /// zero-length and >64 KiB payloads.
    #[test]
    fn frame_roundtrip(
        src in 0u32..64,
        dst in 0u32..64,
        kind in kinds(),
        len in payload_len(),
        seed in any::<u8>(),
    ) {
        let message = Message::new(src, dst, kind, payload(len, seed));
        let frame = encode_frame(&message);
        prop_assert_eq!(frame.len(), frame_len(len));
        let (decoded, consumed) = decode_frame(&frame).expect("roundtrip");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(decoded.src, src);
        prop_assert_eq!(decoded.dst, dst);
        prop_assert_eq!(decoded.kind, kind);
        prop_assert_eq!(decoded.payload.as_ref(), message.payload.as_ref());
    }

    /// Every proper prefix of a valid frame is rejected, never panics.
    #[test]
    fn truncated_frames_are_rejected(
        len in small_len(),
        seed in any::<u8>(),
        cut_sel in 0u32..10_000,
    ) {
        let message = Message::new(1, 2, MessageKind::Parcel, payload(len, seed));
        let frame = encode_frame(&message);
        let cut = (frame.len() * cut_sel as usize) / 10_000;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_frame(&frame[..cut]).is_err());
    }

    /// Flipping any bit of the checksummed region (everything after the
    /// length prefix) makes the frame undecodable — corruption cannot
    /// smuggle a wrong message through.
    #[test]
    fn garbled_frames_are_rejected(
        len in small_len(),
        seed in any::<u8>(),
        pos_sel in 0u32..10_000,
        bit in 0u8..8,
    ) {
        let message = Message::new(3, 4, MessageKind::Coalesced, payload(len, seed));
        let mut frame = encode_frame(&message);
        // Skip the 4-byte length prefix: garbling the length is a framing
        // error with stream-specific recovery, not a codec property.
        let span = frame.len() - 4;
        let pos = (4 + (span * pos_sel as usize) / 10_000).min(frame.len() - 1);
        frame[pos] ^= 1 << bit;
        prop_assert!(decode_frame(&frame).is_err());
    }

    /// Arbitrary byte soup never decodes to success with a wrong length
    /// and never panics.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        match decode_frame(&bytes) {
            Ok((_, consumed)) => prop_assert!(consumed >= FRAME_HEADER_LEN),
            Err(FrameError::Truncated | FrameError::BadLength(_)
                | FrameError::BadKind(_) | FrameError::Checksum) => {}
        }
    }
}

// ---------------------------------------------------------------------
// Behavioural conformance harness, run against both backends.
// ---------------------------------------------------------------------

/// The two backends under test. Sim uses a zero-cost link so conformance
/// runs are fast; cost charging is covered by the fabric's own tests.
fn backends() -> Vec<(&'static str, TransportKind)> {
    vec![
        ("sim", TransportKind::Sim(LinkModel::zero())),
        ("tcp", TransportKind::TcpLoopback),
    ]
}

fn pump_all(ports: &[Arc<dyn TransportPort>]) {
    for p in ports {
        p.pump();
    }
}

fn pump_until(ports: &[Arc<dyn TransportPort>], done: impl Fn() -> bool, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !done() {
        pump_all(ports);
        if Instant::now() > deadline {
            return false;
        }
        std::thread::yield_now();
    }
    true
}

/// Faithful delivery: every sent message arrives exactly once, in FIFO
/// order per link, with frame bytes accounted on both sides.
fn check_delivery(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let src = transport.port(0);
    let dst = transport.port(1);
    let got: Arc<Mutex<Vec<Bytes>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    dst.set_receiver(Arc::new(move |m: Message| sink.lock().push(m.payload)));

    let payloads: Vec<Bytes> = (0..40).map(|i| payload(i * 7 % 200, i as u8)).collect();
    let mut wire_bytes = 0u64;
    for p in &payloads {
        wire_bytes += frame_len(p.len()) as u64;
        src.send(Message::new(0, 1, MessageKind::Parcel, p.clone()));
    }
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || got.lock().len() == payloads.len(),
            30
        ),
        "[{name}] delivery incomplete: {}/{}",
        got.lock().len(),
        payloads.len()
    );
    assert_eq!(&*got.lock(), &payloads, "[{name}] FIFO order violated");
    assert_eq!(
        src.stats().sent_messages.load(Ordering::Relaxed),
        payloads.len() as u64,
        "[{name}]"
    );
    assert_eq!(
        src.stats().sent_bytes.load(Ordering::Relaxed),
        wire_bytes,
        "[{name}] sent bytes must be frame bytes"
    );
    assert_eq!(
        dst.stats().received_bytes.load(Ordering::Relaxed),
        wire_bytes,
        "[{name}] received bytes must be frame bytes"
    );
    assert_eq!(
        dst.stats().decode_failures.load(Ordering::Relaxed),
        0,
        "[{name}]"
    );
}

/// Drop faults: every n-th message vanishes, the rest arrive; nothing
/// hangs and the backlog drains to zero (quiescence stays sound).
fn check_drop_faults(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let src = transport.port(0);
    let dst = transport.port(1);
    let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink = Arc::clone(&got);
    dst.set_receiver(Arc::new(move |_| {
        sink.fetch_add(1, Ordering::SeqCst);
    }));
    let plan = Arc::new(FaultPlan::drop_every(3));
    src.set_fault_plan(Some(Arc::clone(&plan)));
    for i in 0..30u32 {
        src.send(Message::new(
            0,
            1,
            MessageKind::Parcel,
            payload(16, i as u8),
        ));
    }
    let expect = 30 - 30 / 3;
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || got.load(Ordering::SeqCst) == expect,
            30
        ),
        "[{name}] expected {expect}, got {}",
        got.load(Ordering::SeqCst)
    );
    assert_eq!(plan.dropped(), 30 / 3, "[{name}]");
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || src.outbound_backlog() == 0 && dst.inflight_backlog() == 0,
            30
        ),
        "[{name}] backlog failed to drain"
    );
}

/// Corrupt faults: every n-th frame fails its checksum at the receiver,
/// increments `decode_failures` and is dropped — on both backends.
fn check_corrupt_faults(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let src = transport.port(0);
    let dst = transport.port(1);
    let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink = Arc::clone(&got);
    dst.set_receiver(Arc::new(move |_| {
        sink.fetch_add(1, Ordering::SeqCst);
    }));
    let plan = Arc::new(FaultPlan::corrupt_every(4));
    src.set_fault_plan(Some(Arc::clone(&plan)));
    for i in 0..40u32 {
        src.send(Message::new(
            0,
            1,
            MessageKind::Parcel,
            payload(32, i as u8),
        ));
    }
    let expect = 40 - 40 / 4;
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || got.load(Ordering::SeqCst) == expect
                && dst.stats().decode_failures.load(Ordering::SeqCst) == 40 / 4,
            30
        ),
        "[{name}] delivered {}, decode failures {}",
        got.load(Ordering::SeqCst),
        dst.stats().decode_failures.load(Ordering::SeqCst)
    );
    assert_eq!(plan.corrupted(), 40 / 4, "[{name}]");
}

/// All-to-all traffic on four localities: no cross-talk, no loss.
fn check_all_to_all(name: &str, kind: TransportKind) {
    const N: u32 = 4;
    const PER_PAIR: u64 = 10;
    let transport = kind.build(N).expect("build transport");
    let ports: Vec<Arc<dyn TransportPort>> = (0..N).map(|i| transport.port(i)).collect();
    let received: Vec<Arc<std::sync::atomic::AtomicU64>> = (0..N)
        .map(|_| Arc::new(std::sync::atomic::AtomicU64::new(0)))
        .collect();
    for (i, port) in ports.iter().enumerate() {
        let counter = Arc::clone(&received[i]);
        let me = i as u32;
        port.set_receiver(Arc::new(move |m: Message| {
            assert_eq!(m.dst, me, "misrouted message");
            counter.fetch_add(1, Ordering::SeqCst);
        }));
    }
    for src in 0..N {
        for dst in 0..N {
            if src == dst {
                continue;
            }
            for k in 0..PER_PAIR {
                ports[src as usize].send(Message::new(
                    src,
                    dst,
                    MessageKind::Parcel,
                    payload(8, k as u8),
                ));
            }
        }
    }
    let expect = PER_PAIR * (N as u64 - 1);
    assert!(
        pump_until(
            &ports,
            || received.iter().all(|r| r.load(Ordering::SeqCst) == expect),
            30
        ),
        "[{name}] all-to-all incomplete: {:?}",
        received
            .iter()
            .map(|r| r.load(Ordering::SeqCst))
            .collect::<Vec<_>>()
    );
}

#[test]
fn conformance_delivery_both_backends() {
    for (name, kind) in backends() {
        check_delivery(name, kind);
    }
}

#[test]
fn conformance_drop_faults_both_backends() {
    for (name, kind) in backends() {
        check_drop_faults(name, kind);
    }
}

#[test]
fn conformance_corrupt_faults_both_backends() {
    for (name, kind) in backends() {
        check_corrupt_faults(name, kind);
    }
}

#[test]
fn conformance_all_to_all_both_backends() {
    for (name, kind) in backends() {
        check_all_to_all(name, kind);
    }
}
