//! Transport conformance suite: property tests for the wire frame codec
//! plus a behavioural harness run against **both** backends
//! ([`SimTransport`] and [`TcpTransport`]), including the fault-injection
//! (drop + corrupt) paths. Anything that claims to implement
//! [`rpx_net::TransportPort`] must pass these unchanged.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::prelude::*;

use rpx_net::{
    decode_frame, encode_frame, frame_len, FaultPlan, FrameError, LinkModel, Message, MessageKind,
    ReliabilityConfig, ReliableTransport, ShmTuning, TcpTuning, TransportKind, TransportPort,
    FRAME_HEADER_LEN, SEQ_OVERHEAD,
};

/// Deterministic pseudo-random payload of `len` bytes (cheap to build
/// even for the >64 KiB cases, unlike a per-byte strategy).
fn payload(len: usize, seed: u8) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect::<Vec<u8>>(),
    )
}

fn kinds() -> impl Strategy<Value = MessageKind> {
    (0u8..3).prop_map(|k| match k {
        0 => MessageKind::Parcel,
        1 => MessageKind::Coalesced,
        _ => MessageKind::Control,
    })
}

/// Payload lengths spanning the interesting regimes: empty, tiny,
/// mid-sized, and >64 KiB (the rendezvous regime).
fn payload_len() -> impl Strategy<Value = usize> {
    (0u8..4, any::<u64>()).prop_map(|(regime, v)| match regime {
        0 => 0,
        1 => 1 + (v % 255) as usize,
        2 => 1_000 + (v % 4_000) as usize,
        _ => 65_537 + (v % 24_463) as usize,
    })
}

/// Small payload lengths (including empty) for the rejection properties.
fn small_len() -> impl Strategy<Value = usize> {
    (0u8..2, any::<u64>()).prop_map(|(regime, v)| match regime {
        0 => 0,
        _ => 1 + (v % 511) as usize,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity for arbitrary messages, including
    /// zero-length and >64 KiB payloads.
    #[test]
    fn frame_roundtrip(
        src in 0u32..64,
        dst in 0u32..64,
        kind in kinds(),
        len in payload_len(),
        seed in any::<u8>(),
    ) {
        let message = Message::new(src, dst, kind, payload(len, seed));
        let frame = encode_frame(&message);
        prop_assert_eq!(frame.len(), frame_len(len));
        let (decoded, consumed) = decode_frame(&frame).expect("roundtrip");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(decoded.src, src);
        prop_assert_eq!(decoded.dst, dst);
        prop_assert_eq!(decoded.kind, kind);
        prop_assert_eq!(decoded.payload.as_ref(), message.payload.as_ref());
    }

    /// Sequenced (v2) frames roundtrip with their seq intact and cost
    /// exactly [`SEQ_OVERHEAD`] extra wire bytes.
    #[test]
    fn sequenced_frame_roundtrip(
        src in 0u32..64,
        dst in 0u32..64,
        kind in kinds(),
        len in payload_len(),
        seed in any::<u8>(),
        seq in any::<u64>(),
    ) {
        let message = Message::new(src, dst, kind, payload(len, seed)).with_seq(seq);
        let frame = encode_frame(&message);
        prop_assert_eq!(frame.len(), frame_len(len) + SEQ_OVERHEAD);
        let (decoded, consumed) = decode_frame(&frame).expect("roundtrip");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(decoded.seq, Some(seq));
        prop_assert_eq!(decoded.kind, kind);
        prop_assert_eq!(decoded.payload.as_ref(), message.payload.as_ref());
    }

    /// Garbling any checksummed byte of a sequenced frame (seq field
    /// included) is detected.
    #[test]
    fn garbled_sequenced_frames_are_rejected(
        len in small_len(),
        seed in any::<u8>(),
        seq in any::<u64>(),
        pos_sel in 0u32..10_000,
        bit in 0u8..8,
    ) {
        let message = Message::new(3, 4, MessageKind::Coalesced, payload(len, seed)).with_seq(seq);
        let mut frame = encode_frame(&message);
        let span = frame.len() - 4;
        let pos = (4 + (span * pos_sel as usize) / 10_000).min(frame.len() - 1);
        frame[pos] ^= 1 << bit;
        prop_assert!(decode_frame(&frame).is_err());
    }

    /// Every proper prefix of a valid frame is rejected, never panics.
    #[test]
    fn truncated_frames_are_rejected(
        len in small_len(),
        seed in any::<u8>(),
        cut_sel in 0u32..10_000,
    ) {
        let message = Message::new(1, 2, MessageKind::Parcel, payload(len, seed));
        let frame = encode_frame(&message);
        let cut = (frame.len() * cut_sel as usize) / 10_000;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_frame(&frame[..cut]).is_err());
    }

    /// Flipping any bit of the checksummed region (everything after the
    /// length prefix) makes the frame undecodable — corruption cannot
    /// smuggle a wrong message through.
    #[test]
    fn garbled_frames_are_rejected(
        len in small_len(),
        seed in any::<u8>(),
        pos_sel in 0u32..10_000,
        bit in 0u8..8,
    ) {
        let message = Message::new(3, 4, MessageKind::Coalesced, payload(len, seed));
        let mut frame = encode_frame(&message);
        // Skip the 4-byte length prefix: garbling the length is a framing
        // error with stream-specific recovery, not a codec property.
        let span = frame.len() - 4;
        let pos = (4 + (span * pos_sel as usize) / 10_000).min(frame.len() - 1);
        frame[pos] ^= 1 << bit;
        prop_assert!(decode_frame(&frame).is_err());
    }

    /// Arbitrary byte soup never decodes to success with a wrong length
    /// and never panics.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        match decode_frame(&bytes) {
            Ok((_, consumed)) => prop_assert!(consumed >= FRAME_HEADER_LEN),
            Err(FrameError::Truncated | FrameError::BadLength(_)
                | FrameError::BadKind(_) | FrameError::Checksum) => {}
        }
    }
}

// ---------------------------------------------------------------------
// Behavioural conformance harness, run against both backends.
// ---------------------------------------------------------------------

/// The backends under test. Sim uses a zero-cost link so conformance
/// runs are fast; cost charging is covered by the fabric's own tests.
/// The shm leg routes every same-host frame through SPSC rings (small
/// rings force the full/backpressure/doorbell paths under load); faults
/// and byte accounting must behave identically to the socket path.
fn backends() -> Vec<(&'static str, TransportKind)> {
    vec![
        ("sim", TransportKind::Sim(LinkModel::zero())),
        ("tcp", TransportKind::TcpLoopback),
        (
            "shm",
            TransportKind::Shm(ShmTuning {
                tcp: TcpTuning::default(),
                ring_bytes: 64 * 1024,
            }),
        ),
    ]
}

fn pump_all(ports: &[Arc<dyn TransportPort>]) {
    for p in ports {
        p.pump();
    }
}

fn pump_until(ports: &[Arc<dyn TransportPort>], done: impl Fn() -> bool, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !done() {
        pump_all(ports);
        if Instant::now() > deadline {
            return false;
        }
        std::thread::yield_now();
    }
    true
}

/// Faithful delivery: every sent message arrives exactly once, in FIFO
/// order per link, with frame bytes accounted on both sides.
fn check_delivery(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let src = transport.port(0);
    let dst = transport.port(1);
    let got: Arc<Mutex<Vec<Bytes>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    dst.set_receiver(Arc::new(move |m: Message| sink.lock().push(m.payload)));

    let payloads: Vec<Bytes> = (0..40).map(|i| payload(i * 7 % 200, i as u8)).collect();
    let mut wire_bytes = 0u64;
    for p in &payloads {
        wire_bytes += frame_len(p.len()) as u64;
        src.send(Message::new(0, 1, MessageKind::Parcel, p.clone()));
    }
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || got.lock().len() == payloads.len(),
            30
        ),
        "[{name}] delivery incomplete: {}/{}",
        got.lock().len(),
        payloads.len()
    );
    assert_eq!(&*got.lock(), &payloads, "[{name}] FIFO order violated");
    assert_eq!(
        src.stats().sent_messages.load(Ordering::Relaxed),
        payloads.len() as u64,
        "[{name}]"
    );
    assert_eq!(
        src.stats().sent_bytes.load(Ordering::Relaxed),
        wire_bytes,
        "[{name}] sent bytes must be frame bytes"
    );
    assert_eq!(
        dst.stats().received_bytes.load(Ordering::Relaxed),
        wire_bytes,
        "[{name}] received bytes must be frame bytes"
    );
    assert_eq!(
        dst.stats().decode_failures.load(Ordering::Relaxed),
        0,
        "[{name}]"
    );
}

/// Drop faults: every n-th message vanishes, the rest arrive; nothing
/// hangs and the backlog drains to zero (quiescence stays sound).
fn check_drop_faults(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let src = transport.port(0);
    let dst = transport.port(1);
    let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink = Arc::clone(&got);
    dst.set_receiver(Arc::new(move |_| {
        sink.fetch_add(1, Ordering::SeqCst);
    }));
    let plan = Arc::new(FaultPlan::drop_every(3));
    src.set_fault_plan(Some(Arc::clone(&plan)));
    for i in 0..30u32 {
        src.send(Message::new(
            0,
            1,
            MessageKind::Parcel,
            payload(16, i as u8),
        ));
    }
    let expect = 30 - 30 / 3;
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || got.load(Ordering::SeqCst) == expect,
            30
        ),
        "[{name}] expected {expect}, got {}",
        got.load(Ordering::SeqCst)
    );
    assert_eq!(plan.dropped(), 30 / 3, "[{name}]");
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || src.outbound_backlog() == 0 && dst.inflight_backlog() == 0,
            30
        ),
        "[{name}] backlog failed to drain"
    );
}

/// Corrupt faults: every n-th frame fails its checksum at the receiver,
/// increments `decode_failures` and is dropped — on both backends.
fn check_corrupt_faults(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let src = transport.port(0);
    let dst = transport.port(1);
    let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink = Arc::clone(&got);
    dst.set_receiver(Arc::new(move |_| {
        sink.fetch_add(1, Ordering::SeqCst);
    }));
    let plan = Arc::new(FaultPlan::corrupt_every(4));
    src.set_fault_plan(Some(Arc::clone(&plan)));
    for i in 0..40u32 {
        src.send(Message::new(
            0,
            1,
            MessageKind::Parcel,
            payload(32, i as u8),
        ));
    }
    let expect = 40 - 40 / 4;
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || got.load(Ordering::SeqCst) == expect
                && dst.stats().decode_failures.load(Ordering::SeqCst) == 40 / 4,
            30
        ),
        "[{name}] delivered {}, decode failures {}",
        got.load(Ordering::SeqCst),
        dst.stats().decode_failures.load(Ordering::SeqCst)
    );
    assert_eq!(plan.corrupted(), 40 / 4, "[{name}]");
}

/// All-to-all traffic on four localities: no cross-talk, no loss.
fn check_all_to_all(name: &str, kind: TransportKind) {
    const N: u32 = 4;
    const PER_PAIR: u64 = 10;
    let transport = kind.build(N).expect("build transport");
    let ports: Vec<Arc<dyn TransportPort>> = (0..N).map(|i| transport.port(i)).collect();
    let received: Vec<Arc<std::sync::atomic::AtomicU64>> = (0..N)
        .map(|_| Arc::new(std::sync::atomic::AtomicU64::new(0)))
        .collect();
    for (i, port) in ports.iter().enumerate() {
        let counter = Arc::clone(&received[i]);
        let me = i as u32;
        port.set_receiver(Arc::new(move |m: Message| {
            assert_eq!(m.dst, me, "misrouted message");
            counter.fetch_add(1, Ordering::SeqCst);
        }));
    }
    for src in 0..N {
        for dst in 0..N {
            if src == dst {
                continue;
            }
            for k in 0..PER_PAIR {
                ports[src as usize].send(Message::new(
                    src,
                    dst,
                    MessageKind::Parcel,
                    payload(8, k as u8),
                ));
            }
        }
    }
    let expect = PER_PAIR * (N as u64 - 1);
    assert!(
        pump_until(
            &ports,
            || received.iter().all(|r| r.load(Ordering::SeqCst) == expect),
            30
        ),
        "[{name}] all-to-all incomplete: {:?}",
        received
            .iter()
            .map(|r| r.load(Ordering::SeqCst))
            .collect::<Vec<_>>()
    );
}

/// Duplicate faults: every n-th message arrives twice; nothing is lost.
fn check_duplicate_faults(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let src = transport.port(0);
    let dst = transport.port(1);
    let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink = Arc::clone(&got);
    dst.set_receiver(Arc::new(move |_| {
        sink.fetch_add(1, Ordering::SeqCst);
    }));
    let plan = Arc::new(FaultPlan::duplicate_every(5));
    src.set_fault_plan(Some(Arc::clone(&plan)));
    for i in 0..30u32 {
        src.send(Message::new(0, 1, MessageKind::Parcel, payload(8, i as u8)));
    }
    let expect = 30 + 30 / 5;
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || got.load(Ordering::SeqCst) == expect,
            30
        ),
        "[{name}] expected {expect} deliveries, got {}",
        got.load(Ordering::SeqCst)
    );
    assert_eq!(plan.duplicated(), 30 / 5, "[{name}]");
}

/// Reorder faults: every w-th message is displaced but still delivered;
/// the holding stage drains to zero so quiescence stays sound.
fn check_reorder_faults(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let src = transport.port(0);
    let dst = transport.port(1);
    let got: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    dst.set_receiver(Arc::new(move |m: Message| sink.lock().push(m.payload[0])));
    let plan = Arc::new(FaultPlan::reorder_window(4));
    src.set_fault_plan(Some(Arc::clone(&plan)));
    for i in 0..24u8 {
        src.send(Message::new(
            0,
            1,
            MessageKind::Parcel,
            Bytes::copy_from_slice(&[i]),
        ));
    }
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || got.lock().len() == 24,
            30
        ),
        "[{name}] reordered traffic incomplete: {}/24",
        got.lock().len()
    );
    assert!(plan.reordered() > 0, "[{name}]");
    assert_eq!(src.outbound_backlog(), 0, "[{name}] stage must drain");
    let mut seen = got.lock().clone();
    seen.sort_unstable();
    assert_eq!(seen, (0..24).collect::<Vec<u8>>(), "[{name}] nothing lost");
}

/// Delay faults: every n-th message arrives late but arrives; backlog
/// drains.
fn check_delay_faults(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let src = transport.port(0);
    let dst = transport.port(1);
    let got = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sink = Arc::clone(&got);
    dst.set_receiver(Arc::new(move |_| {
        sink.fetch_add(1, Ordering::SeqCst);
    }));
    let plan = Arc::new(FaultPlan::delay_every(3, Duration::from_millis(5)));
    src.set_fault_plan(Some(Arc::clone(&plan)));
    for i in 0..15u32 {
        src.send(Message::new(0, 1, MessageKind::Parcel, payload(8, i as u8)));
    }
    assert!(
        pump_until(
            &[Arc::clone(&src), Arc::clone(&dst)],
            || got.load(Ordering::SeqCst) == 15,
            30
        ),
        "[{name}] delayed traffic incomplete: {}/15",
        got.load(Ordering::SeqCst)
    );
    assert_eq!(plan.delayed(), 15 / 3, "[{name}]");
    assert_eq!(src.outbound_backlog(), 0, "[{name}]");
}

/// Reliability over a chaotic wire (drop + corrupt + duplicate +
/// reorder): every message is delivered exactly once, the unacked queue
/// drains, and no delivery failure fires.
fn check_reliable_exactly_once(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let reliable = ReliableTransport::new(
        transport,
        ReliabilityConfig {
            rto_initial: Duration::from_millis(2),
            ..Default::default()
        },
    );
    let src = reliable.reliable_port(0);
    let dst = reliable.reliable_port(1);
    let got: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&got);
    dst.set_receiver(Arc::new(move |m: Message| {
        sink.lock()
            .push(m.seq.expect("reliable traffic is sequenced"));
    }));
    src.set_fault_plan(Some(Arc::new(FaultPlan::chaos())));
    let n = 120u64;
    for i in 0..n {
        src.send(Message::new(
            0,
            1,
            MessageKind::Parcel,
            payload(16, i as u8),
        ));
    }
    let ports: Vec<Arc<dyn TransportPort>> = vec![src.clone(), dst.clone()];
    assert!(
        pump_until(
            &ports,
            || got.lock().len() as u64 == n && src.unacked() == 0,
            30
        ),
        "[{name}] reliable delivery incomplete: {}/{} (unacked {})",
        got.lock().len(),
        n,
        src.unacked()
    );
    // Settle: nothing extra may trickle in afterwards.
    std::thread::sleep(Duration::from_millis(10));
    pump_all(&ports);
    let mut seqs = got.lock().clone();
    assert_eq!(seqs.len() as u64, n, "[{name}] duplicate leaked through");
    seqs.sort_unstable();
    assert_eq!(seqs, (0..n).collect::<Vec<u64>>(), "[{name}] loss");
    assert_eq!(
        src.stats().delivery_failures.load(Ordering::SeqCst),
        0,
        "[{name}]"
    );
    assert!(
        src.stats().retransmits.load(Ordering::SeqCst) > 0,
        "[{name}] chaos must exercise retransmission"
    );
}

/// Exhausted retries surface a DeliveryError and drain the queue — an
/// explicit failure, never a silent hang.
fn check_reliable_give_up(name: &str, kind: TransportKind) {
    let transport = kind.build(2).expect("build transport");
    let reliable = ReliableTransport::new(
        transport,
        ReliabilityConfig {
            rto_initial: Duration::from_micros(300),
            rto_max: Duration::from_micros(600),
            max_retries: 2,
            ..Default::default()
        },
    );
    let src = reliable.reliable_port(0);
    let dst = reliable.reliable_port(1);
    dst.set_receiver(Arc::new(|_| {}));
    // Total blackout: every frame (retransmits included) is dropped.
    src.set_fault_plan(Some(Arc::new(FaultPlan::drop_every(1))));
    src.send(Message::new(0, 1, MessageKind::Parcel, payload(8, 1)));
    let ports: Vec<Arc<dyn TransportPort>> = vec![src.clone(), dst.clone()];
    assert!(
        pump_until(
            &ports,
            || src.stats().delivery_failures.load(Ordering::SeqCst) == 1,
            30
        ),
        "[{name}] give-up budget never fired"
    );
    let failures = src.take_delivery_failures();
    assert_eq!(failures.len(), 1, "[{name}]");
    assert_eq!(failures[0].dst, 1, "[{name}]");
    assert_eq!(src.unacked(), 0, "[{name}] abandoned entry must leave");
    assert_eq!(src.outbound_backlog(), 0, "[{name}] no silent hang");
}

#[test]
fn conformance_duplicate_faults_both_backends() {
    for (name, kind) in backends() {
        check_duplicate_faults(name, kind);
    }
}

#[test]
fn conformance_reorder_faults_both_backends() {
    for (name, kind) in backends() {
        check_reorder_faults(name, kind);
    }
}

#[test]
fn conformance_delay_faults_both_backends() {
    for (name, kind) in backends() {
        check_delay_faults(name, kind);
    }
}

#[test]
fn conformance_reliable_exactly_once_both_backends() {
    for (name, kind) in backends() {
        check_reliable_exactly_once(name, kind);
    }
}

#[test]
fn conformance_reliable_give_up_both_backends() {
    for (name, kind) in backends() {
        check_reliable_give_up(name, kind);
    }
}

#[test]
fn conformance_delivery_both_backends() {
    for (name, kind) in backends() {
        check_delivery(name, kind);
    }
}

#[test]
fn conformance_drop_faults_both_backends() {
    for (name, kind) in backends() {
        check_drop_faults(name, kind);
    }
}

#[test]
fn conformance_corrupt_faults_both_backends() {
    for (name, kind) in backends() {
        check_corrupt_faults(name, kind);
    }
}

#[test]
fn conformance_all_to_all_both_backends() {
    for (name, kind) in backends() {
        check_all_to_all(name, kind);
    }
}
