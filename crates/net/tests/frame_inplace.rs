//! Equivalence suite for the borrowing frame decoder.
//!
//! [`decode_frame_in_place`] must accept and reject *exactly* the same
//! inputs as the owned decoder ([`decode_frame_body`]) — same `Ok`
//! contents, same `FrameError` — across truncation at every cut point,
//! random garbling, >64 KiB payloads, and checksum failures. The event
//! loop trusts this equivalence when it deserialises coalesced batches
//! straight out of the receive buffer.

use bytes::Bytes;
use proptest::prelude::*;

use rpx_net::frame::decode_frame_body;
use rpx_net::{decode_frame_in_place, encode_frame, Message, MessageKind, FRAME_HEADER_LEN};

/// Deterministic pseudo-random payload (cheap for the >64 KiB cases).
fn payload(len: usize, seed: u8) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect::<Vec<u8>>(),
    )
}

fn kinds() -> impl Strategy<Value = MessageKind> {
    (0u8..4).prop_map(|k| match k {
        0 => MessageKind::Parcel,
        1 => MessageKind::Coalesced,
        2 => MessageKind::Control,
        _ => MessageKind::Ack,
    })
}

/// Payload lengths spanning empty, tiny, mid-sized, and >64 KiB.
fn payload_len() -> impl Strategy<Value = usize> {
    (0u8..4, any::<u64>()).prop_map(|(regime, v)| match regime {
        0 => 0,
        1 => 1 + (v % 255) as usize,
        2 => 1_000 + (v % 4_000) as usize,
        _ => 65_537 + (v % 8_191) as usize,
    })
}

fn message() -> impl Strategy<Value = Message> {
    (
        0u32..64,
        0u32..64,
        kinds(),
        payload_len(),
        any::<u8>(),
        proptest::option::of(any::<u64>()),
    )
        .prop_map(|(src, dst, kind, len, seed, seq)| {
            let m = Message::new(src, dst, kind, payload(len, seed));
            match seq {
                Some(s) => m.with_seq(s),
                None => m,
            }
        })
}

/// Both decoders applied to the same body must agree exactly.
fn assert_equivalent(body: &[u8]) {
    let owned = decode_frame_body(body);
    let borrowed = decode_frame_in_place(body);
    match (owned, borrowed) {
        (Ok(o), Ok(v)) => {
            assert_eq!(o, v.to_message(), "owned and in-place decode diverge");
            assert_eq!(v.payload, o.payload.as_ref());
        }
        (Err(oe), Err(ve)) => assert_eq!(oe, ve, "owned and in-place errors diverge"),
        (o, v) => panic!("accept/reject divergence: owned={o:?} in-place={v:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid frames (sequenced and not, payloads up to >64 KiB) decode
    /// identically, and the borrowed payload aliases the input buffer
    /// (zero copies).
    #[test]
    fn valid_frames_decode_identically(m in message()) {
        let frame = encode_frame(&m);
        let body = &frame[4..];
        assert_equivalent(body);
        let view = decode_frame_in_place(body).expect("valid frame");
        prop_assert_eq!(view.src, m.src);
        prop_assert_eq!(view.dst, m.dst);
        prop_assert_eq!(view.kind, m.kind);
        prop_assert_eq!(view.seq, m.seq);
        prop_assert_eq!(view.payload, m.payload.as_ref());
        if !m.payload.is_empty() {
            // Borrowing decoder must point into `frame`, not a copy.
            let base = body.as_ptr() as usize;
            let p = view.payload.as_ptr() as usize;
            prop_assert!(p >= base && p + view.payload.len() <= base + body.len());
            prop_assert_eq!(p - base, view.payload_offset());
        }
    }

    /// Truncation at every cut point is rejected identically by both
    /// decoders (`proptest` picks the frame, we sweep all prefixes —
    /// cheap because rejects bail before touching the payload).
    #[test]
    fn truncations_agree(
        src in 0u32..64,
        dst in 0u32..64,
        kind in kinds(),
        len in 0usize..300,
        seed in any::<u8>(),
        seq in proptest::option::of(any::<u64>()),
    ) {
        let m = match seq {
            Some(s) => Message::new(src, dst, kind, payload(len, seed)).with_seq(s),
            None => Message::new(src, dst, kind, payload(len, seed)),
        };
        let frame = encode_frame(&m);
        let body = &frame[4..];
        for cut in 0..body.len() {
            assert_equivalent(&body[..cut]);
            prop_assert!(decode_frame_in_place(&body[..cut]).is_err());
        }
    }

    /// Flipping any bit anywhere in the body leaves the two decoders in
    /// agreement (typically both reject with `Checksum`, `BadKind`, or —
    /// for seq-flag flips — `Truncated`).
    #[test]
    fn garbled_frames_agree(
        m in message(),
        pos_sel in 0u32..10_000,
        bit in 0u8..8,
    ) {
        let mut frame = encode_frame(&m);
        let body_len = frame.len() - 4;
        let pos = 4 + (body_len * pos_sel as usize) / 10_000;
        let pos = pos.min(frame.len() - 1);
        frame[pos] ^= 1 << bit;
        assert_equivalent(&frame[4..]);
    }

    /// Corrupting a payload byte specifically trips the checksum in both
    /// decoders with the same error.
    #[test]
    fn checksum_failures_agree(
        src in 0u32..64,
        dst in 0u32..64,
        kind in kinds(),
        len in 1usize..70_000,
        seed in any::<u8>(),
        seq in proptest::option::of(any::<u64>()),
        pos_sel in 0u32..10_000,
    ) {
        let m = match seq {
            Some(s) => Message::new(src, dst, kind, payload(len, seed)).with_seq(s),
            None => Message::new(src, dst, kind, payload(len, seed)),
        };
        let mut frame = encode_frame(&m);
        let payload_start = FRAME_HEADER_LEN + if m.seq.is_some() { 8 } else { 0 };
        let pos = payload_start + (m.payload.len() * pos_sel as usize) / 10_000;
        let pos = pos.min(frame.len() - 1);
        frame[pos] ^= 0xff;
        let body = &frame[4..];
        assert_eq!(
            decode_frame_in_place(body).unwrap_err(),
            rpx_net::FrameError::Checksum
        );
        assert_equivalent(body);
    }
}
