//! Property tests for the reliability state machines.
//!
//! Two angles:
//!
//! * **Receive window** — a raw sender replays an arbitrary schedule of
//!   sequenced frames (duplicates, arbitrary interleavings) at a
//!   [`ReliablePort`] receiver. The upper handler must see every seq
//!   exactly once, the acks flowing back must be monotone in their
//!   cumulative field, and the out-of-order window must drain to empty
//!   (no leak) once the schedule completes.
//!
//! * **Retransmit queue** — a reliable sender pushes traffic through a
//!   wire with arbitrary drop/duplicate/reorder periods. Delivery must
//!   be exactly-once, the unacked queue must drain to zero, and no
//!   delivery failure may fire while drops are intermittent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use proptest::prelude::*;

use rpx_net::{
    FaultPlan, LinkModel, Message, MessageKind, ReliabilityConfig, ReliablePort, ReliableTransport,
    SimTransport, Transport, TransportPort,
};

fn msg(src: u32, dst: u32, seed: u8) -> Message {
    Message::new(
        src,
        dst,
        MessageKind::Parcel,
        Bytes::copy_from_slice(&[seed, seed.wrapping_mul(7)]),
    )
}

fn pump_until(ports: &[Arc<dyn TransportPort>], done: impl Fn() -> bool, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !done() {
        for p in ports {
            p.pump();
        }
        if Instant::now() > deadline {
            return false;
        }
    }
    true
}

/// Seed-driven LCG step (the vendored proptest stub has no flat-map or
/// sampling combinators, so dups and shuffles are derived from seeds).
fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

/// A schedule of sequenced-frame arrivals: a permutation of `0..n` with
/// some seqs repeated (wire duplicates / crossed retransmits).
fn schedule() -> impl Strategy<Value = Vec<u64>> {
    (2u64..24, any::<u64>(), any::<u64>()).prop_map(|(n, dup_seed, shuffle_seed)| {
        let mut all: Vec<u64> = (0..n).collect();
        let mut s = dup_seed | 1;
        let dups = lcg(&mut s) % (n.min(6) + 1);
        for _ in 0..dups {
            let pick = lcg(&mut s) % n;
            all.push(pick);
        }
        // Deterministic Fisher–Yates driven by the seed.
        let mut s = shuffle_seed | 1;
        for i in (1..all.len()).rev() {
            let j = lcg(&mut s) as usize % (i + 1);
            all.swap(i, j);
        }
        all
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Receive window: arbitrary arrival schedules (reordered, with
    /// duplicates) produce exactly-once upward delivery, monotone acks
    /// and an empty window at quiescence.
    #[test]
    fn recv_window_is_exactly_once_and_acks_are_monotone(sched in schedule()) {
        let sim = SimTransport::new(2, LinkModel::zero());
        // Receiver side is reliable; the sender stays raw so the test
        // fully controls seq stamping and observes raw ack frames.
        let recv_port: Arc<ReliablePort> =
            ReliablePort::new(Transport::port(sim.as_ref(), 1), ReliabilityConfig {
                ack_interval: Duration::from_micros(50),
                ack_threshold: 4,
                ..Default::default()
            });
        let raw = Transport::port(sim.as_ref(), 0);

        let delivered: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&delivered);
        recv_port.set_receiver(Arc::new(move |m: Message| {
            sink.lock().push(m.seq.expect("sequenced"));
        }));

        // The raw sender observes the acks coming back.
        let acks: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let ack_sink = Arc::clone(&acks);
        raw.set_receiver(Arc::new(move |m: Message| {
            assert_eq!(m.kind, MessageKind::Ack);
            let cum = u64::from_le_bytes(m.payload[0..8].try_into().unwrap());
            ack_sink.lock().push(cum);
        }));

        let n = *sched.iter().max().unwrap() + 1;
        for &seq in &sched {
            raw.send(msg(0, 1, seq as u8).with_seq(seq));
        }
        let ports: Vec<Arc<dyn TransportPort>> = vec![Arc::clone(&raw), recv_port.clone()];
        prop_assert!(
            pump_until(&ports, || delivered.lock().len() as u64 == n, 20),
            "delivered {}/{n}",
            delivered.lock().len()
        );
        // Let the final ack timer fire and drain: the last ack must
        // converge on the full cumulative frontier.
        prop_assert!(
            pump_until(&ports, || acks.lock().last() == Some(&n), 20),
            "final ack never converged: {:?}",
            acks.lock().last()
        );

        // Exactly once: each seq delivered a single time.
        let mut seqs = delivered.lock().clone();
        prop_assert_eq!(seqs.len() as u64, n, "duplicate leaked upward");
        seqs.sort_unstable();
        prop_assert_eq!(seqs, (0..n).collect::<Vec<u64>>());

        // Acks monotone, converging on n.
        let acks = acks.lock().clone();
        prop_assert!(!acks.is_empty(), "no ack ever sent");
        prop_assert!(acks.windows(2).all(|w| w[0] <= w[1]), "acks regressed: {acks:?}");
        prop_assert_eq!(*acks.last().unwrap(), n);

        // Window leak check: everything contiguous, nothing retained.
        prop_assert_eq!(recv_port.recv_window_len(), 0);

        // Duplicates in the schedule were counted, not delivered.
        let dups = sched.len() as u64 - n;
        prop_assert_eq!(
            recv_port.stats().duplicates_suppressed.load(Ordering::Relaxed),
            dups
        );
    }

    /// Retransmit queue: arbitrary drop/duplicate/reorder wires still
    /// yield exactly-once delivery with a fully drained send queue.
    #[test]
    fn retransmit_queue_survives_arbitrary_wires(
        n in 4u64..48,
        drop_period in proptest::option::of(2u64..8),
        dup_period in proptest::option::of(2u64..8),
        reorder_window in proptest::option::of(2u64..6),
    ) {
        let sim = SimTransport::new(2, LinkModel::zero());
        let reliable = ReliableTransport::new(sim, ReliabilityConfig {
            rto_initial: Duration::from_micros(500),
            ..Default::default()
        });
        let a = reliable.reliable_port(0);
        let b = reliable.reliable_port(1);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        b.set_receiver(Arc::new(move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let mut plan = FaultPlan::default();
        plan.drop_every = drop_period;
        plan.duplicate_every = dup_period;
        plan.reorder_window = reorder_window;
        a.set_fault_plan(Some(Arc::new(plan)));
        for i in 0..n {
            a.send(msg(0, 1, i as u8));
        }
        let ports: Vec<Arc<dyn TransportPort>> = vec![a.clone(), b.clone()];
        prop_assert!(
            pump_until(
                &ports,
                || hits.load(Ordering::SeqCst) == n && a.unacked() == 0,
                20
            ),
            "delivered {}/{n}, unacked {}",
            hits.load(Ordering::SeqCst),
            a.unacked()
        );
        // Settle until every in-flight frame (including reorder-stage
        // holds of late retransmits) has drained, then confirm nothing
        // leaked and no duplicate trickled upward.
        prop_assert!(
            pump_until(
                &ports,
                || a.outbound_backlog() == 0 && b.recv_window_len() == 0,
                20
            ),
            "backlog {} window {}",
            a.outbound_backlog(),
            b.recv_window_len()
        );
        prop_assert_eq!(hits.load(Ordering::SeqCst), n, "duplicate delivery");
        prop_assert_eq!(a.stats().delivery_failures.load(Ordering::SeqCst), 0);
    }
}
