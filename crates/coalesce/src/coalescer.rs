//! The per-action coalescer plugged into the parcel port.
//!
//! One [`Coalescer`] serves one coalesced action: it fans parcels out to
//! per-destination [`CoalescingQueue`]s (coalescing only combines parcels
//! "bound to the same destination") and implements the parcel port's
//! [`ParcelInterceptor`] interface — the RPX analogue of flagging an
//! action with `HPX_ACTION_USES_MESSAGE_COALESCING`.
//!
//! Two parameter-sharing modes exist:
//!
//! * **Global** (the paper's setup, and the default): every destination
//!   queue reads one shared [`ParamsHandle`] and records into one shared
//!   [`CoalescingCounters`] — one knob per action.
//! * **Per-destination** ([`Coalescer::per_destination`]): each
//!   destination owns a private [`ParamsHandle`] (seeded from the shared
//!   action-level handle) and private [`CoalescingCounters`] that forward
//!   to the action-level aggregate. A per-destination adaptive controller
//!   (`rpx-adaptive`) can then steer a hot peer and a cold peer to
//!   different operating points simultaneously.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use rpx_counters::CounterRegistry;
use rpx_parcel::{Parcel, ParcelInterceptor, SendPath};
use rpx_util::TimerService;

use crate::counters::CoalescingCounters;
use crate::params::{CoalescingParams, ParamsHandle};
use crate::queue::{CoalescingQueue, FlushPolicy};

/// Everything one destination owns: its queue plus the parameter handle
/// and counters the queue reads (shared with the action in global mode,
/// private in per-destination mode).
#[derive(Clone)]
struct DestState {
    params: ParamsHandle,
    counters: Arc<CoalescingCounters>,
    queue: Arc<CoalescingQueue>,
}

/// The coalescing plug-in for one action.
pub struct Coalescer {
    action_name: String,
    params: ParamsHandle,
    policy: FlushPolicy,
    per_destination: bool,
    timer: Arc<TimerService>,
    path: Arc<dyn SendPath>,
    counters: Arc<CoalescingCounters>,
    dests: RwLock<HashMap<u32, DestState>>,
}

impl Coalescer {
    /// Create a coalescer for `action_name` emitting through `path`.
    pub fn new(
        action_name: &str,
        params: CoalescingParams,
        timer: Arc<TimerService>,
        path: Arc<dyn SendPath>,
    ) -> Arc<Self> {
        Self::with_handle(action_name, ParamsHandle::new(params), timer, path)
    }

    /// Create a coalescer sharing an existing parameter handle (used when
    /// several localities' coalescers are steered by one global knob, as
    /// in the paper's parameter sweeps).
    pub fn with_handle(
        action_name: &str,
        params: ParamsHandle,
        timer: Arc<TimerService>,
        path: Arc<dyn SendPath>,
    ) -> Arc<Self> {
        Self::with_handle_policy(action_name, params, FlushPolicy::Append, timer, path)
    }

    /// Create a coalescer with an explicit per-destination flush policy.
    ///
    /// [`FlushPolicy::Mailbox`] is what
    /// [`DeliveryClass::Coalesce`](rpx_parcel::DeliveryClass::Coalesce)
    /// actions install: one newest-wins slot per destination.
    pub fn with_handle_policy(
        action_name: &str,
        params: ParamsHandle,
        policy: FlushPolicy,
        timer: Arc<TimerService>,
        path: Arc<dyn SendPath>,
    ) -> Arc<Self> {
        Self::build(action_name, params, policy, false, timer, path)
    }

    /// Create a coalescer in **per-destination** mode: every destination
    /// gets a private parameter handle seeded from the current value of
    /// `params` plus private counters forwarding to the action-level
    /// aggregate, so each (action, destination) pair can be steered
    /// independently.
    pub fn per_destination(
        action_name: &str,
        params: ParamsHandle,
        policy: FlushPolicy,
        timer: Arc<TimerService>,
        path: Arc<dyn SendPath>,
    ) -> Arc<Self> {
        Self::build(action_name, params, policy, true, timer, path)
    }

    fn build(
        action_name: &str,
        params: ParamsHandle,
        policy: FlushPolicy,
        per_destination: bool,
        timer: Arc<TimerService>,
        path: Arc<dyn SendPath>,
    ) -> Arc<Self> {
        Arc::new(Coalescer {
            action_name: action_name.to_string(),
            params,
            policy,
            per_destination,
            timer,
            path,
            counters: CoalescingCounters::new(),
            dests: RwLock::new(HashMap::new()),
        })
    }

    /// The action this coalescer serves.
    pub fn action_name(&self) -> &str {
        &self.action_name
    }

    /// The flush policy this coalescer's queues use.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// The live-tunable parameter handle (shared with the adaptive
    /// controller).
    pub fn params(&self) -> &ParamsHandle {
        &self.params
    }

    /// The per-action counters (the aggregate across all destinations).
    pub fn counters(&self) -> &Arc<CoalescingCounters> {
        &self.counters
    }

    /// Whether each destination owns private parameters.
    pub fn is_per_destination(&self) -> bool {
        self.per_destination
    }

    /// The parameter handle steering parcels bound for `dst`, creating
    /// the destination state on first use.
    ///
    /// In global mode this is the shared action-level handle; in
    /// per-destination mode it is `dst`'s private handle.
    pub fn params_for(&self, dst: u32) -> ParamsHandle {
        self.dest_for(dst).params
    }

    /// The counters recording parcels bound for `dst`, creating the
    /// destination state on first use.
    ///
    /// In global mode this is the action-level aggregate; in
    /// per-destination mode it is `dst`'s private set (which forwards to
    /// the aggregate).
    pub fn counters_for(&self, dst: u32) -> Arc<CoalescingCounters> {
        self.dest_for(dst).counters
    }

    /// Destinations this coalescer has seen traffic for (or had state
    /// created for via [`Coalescer::params_for`]), unordered.
    pub fn destinations(&self) -> Vec<u32> {
        self.dests.read().keys().copied().collect()
    }

    /// Register this action's `/coalescing/*` counters in `registry`.
    pub fn register_counters(&self, registry: &CounterRegistry) {
        self.counters.register(registry, &self.action_name);
    }

    /// Parcels currently buffered across all destinations.
    pub fn pending(&self) -> usize {
        self.dests.read().values().map(|d| d.queue.pending()).sum()
    }

    fn dest_for(&self, dst: u32) -> DestState {
        if let Some(d) = self.dests.read().get(&dst) {
            return d.clone();
        }
        let mut dests = self.dests.write();
        dests
            .entry(dst)
            .or_insert_with(|| {
                let (params, counters) = if self.per_destination {
                    (
                        ParamsHandle::new(self.params.load()),
                        CoalescingCounters::with_parent(Arc::clone(&self.counters)),
                    )
                } else {
                    (self.params.clone(), Arc::clone(&self.counters))
                };
                let queue = CoalescingQueue::with_policy(
                    dst,
                    params.clone(),
                    self.policy,
                    Arc::clone(&self.timer),
                    Arc::clone(&self.path),
                    Arc::clone(&counters),
                );
                DestState {
                    params,
                    counters,
                    queue,
                }
            })
            .clone()
    }
}

impl ParcelInterceptor for Coalescer {
    fn submit(&self, parcel: Parcel) {
        self.dest_for(parcel.dest_locality).queue.submit(parcel);
    }

    fn flush(&self) {
        let queues: Vec<_> = self
            .dests
            .read()
            .values()
            .map(|d| Arc::clone(&d.queue))
            .collect();
        for q in queues {
            q.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Mutex;
    use rpx_agas::Gid;
    use rpx_parcel::{ActionId, ParcelBatch};
    use std::time::Duration;

    struct MockPath {
        batches: Mutex<Vec<(u32, Vec<Parcel>)>>,
    }
    impl SendPath for MockPath {
        fn emit(&self, dst: u32, batch: ParcelBatch) {
            self.batches.lock().push((dst, batch.into_vec()));
        }
    }

    fn parcel(id: u64, dst: u32) -> Parcel {
        Parcel {
            id,
            src_locality: 0,
            dest_locality: dst,
            dest_object: Gid::INVALID,
            action: ActionId(0),
            args: Bytes::new(),
            continuation: Gid::INVALID,
        }
    }

    fn coalescer(params: CoalescingParams) -> (Arc<Coalescer>, Arc<MockPath>, Arc<TimerService>) {
        let path = Arc::new(MockPath {
            batches: Mutex::new(Vec::new()),
        });
        let timer = Arc::new(TimerService::new("coalescer-test"));
        let c = Coalescer::new("act", params, Arc::clone(&timer), path.clone() as _);
        (c, path, timer)
    }

    #[test]
    fn destinations_coalesce_independently() {
        let (c, path, _t) = coalescer(CoalescingParams::new(3, Duration::from_secs(10)));
        // Interleave two destinations; each must fill its own queue.
        for i in 0..3 {
            c.submit(parcel(i, 1));
            c.submit(parcel(100 + i, 2));
        }
        let batches = path.batches.lock();
        assert_eq!(batches.len(), 2);
        for (dst, batch) in batches.iter() {
            assert_eq!(batch.len(), 3);
            assert!(batch.iter().all(|p| p.dest_locality == *dst));
        }
    }

    #[test]
    fn flush_drains_every_destination() {
        let (c, path, _t) = coalescer(CoalescingParams::new(100, Duration::from_secs(10)));
        c.submit(parcel(1, 0));
        c.submit(parcel(2, 1));
        c.submit(parcel(3, 2));
        assert_eq!(c.pending(), 3);
        c.flush();
        assert_eq!(c.pending(), 0);
        assert_eq!(path.batches.lock().len(), 3);
    }

    #[test]
    fn shared_params_apply_to_all_queues() {
        let (c, path, _t) = coalescer(CoalescingParams::new(100, Duration::from_secs(10)));
        c.submit(parcel(1, 1));
        c.submit(parcel(2, 2));
        c.params().set_nparcels(2);
        c.submit(parcel(3, 1));
        c.submit(parcel(4, 2));
        assert_eq!(path.batches.lock().len(), 2, "both queues flushed at 2");
    }

    #[test]
    fn counters_aggregate_across_destinations() {
        let (c, _path, _t) = coalescer(CoalescingParams::new(2, Duration::from_secs(10)));
        for dst in 0..4 {
            c.submit(parcel(dst as u64 * 2, dst));
            c.submit(parcel(dst as u64 * 2 + 1, dst));
        }
        assert_eq!(c.counters().parcels.get(), 8);
        assert_eq!(c.counters().messages.get(), 4);
        assert_eq!(c.counters().parcels_per_message.ratio(), 2.0);
    }

    #[test]
    fn counter_registration_uses_action_name() {
        let (c, _path, _t) = coalescer(CoalescingParams::default());
        let reg = CounterRegistry::new(0);
        c.register_counters(&reg);
        assert!(reg.query("/coalescing/count/parcels@act").is_ok());
        assert_eq!(c.action_name(), "act");
    }

    #[test]
    fn mailbox_policy_applies_per_destination() {
        let path = Arc::new(MockPath {
            batches: Mutex::new(Vec::new()),
        });
        let timer = Arc::new(TimerService::new("coalescer-mailbox"));
        let c = Coalescer::with_handle_policy(
            "sync",
            ParamsHandle::new(CoalescingParams::new(100, Duration::from_secs(10))),
            crate::queue::FlushPolicy::Mailbox,
            Arc::clone(&timer),
            path.clone() as _,
        );
        assert_eq!(c.policy(), crate::queue::FlushPolicy::Mailbox);
        // Ten updates to each of two destinations: one slot each.
        for i in 0..10 {
            c.submit(parcel(i, 1));
            c.submit(parcel(100 + i, 2));
        }
        assert_eq!(c.pending(), 2);
        c.flush();
        let batches = path.batches.lock();
        assert_eq!(batches.len(), 2);
        for (dst, batch) in batches.iter() {
            assert_eq!(batch.len(), 1);
            let expect = if *dst == 1 { 9 } else { 109 };
            assert_eq!(batch[0].id, expect, "newest value for dst {dst}");
        }
    }

    #[test]
    fn per_destination_params_are_independent() {
        let path = Arc::new(MockPath {
            batches: Mutex::new(Vec::new()),
        });
        let timer = Arc::new(TimerService::new("coalescer-perdest"));
        let c = Coalescer::per_destination(
            "act",
            ParamsHandle::new(CoalescingParams::new(100, Duration::from_secs(10))),
            FlushPolicy::Append,
            Arc::clone(&timer),
            path.clone() as _,
        );
        assert!(c.is_per_destination());
        // Seeded from the shared handle...
        assert_eq!(c.params_for(1).load().nparcels, 100);
        // ...but tuning dst 1 leaves dst 2 alone.
        c.params_for(1).set_nparcels(2);
        assert_eq!(c.params_for(1).load().nparcels, 2);
        assert_eq!(c.params_for(2).load().nparcels, 100);
        c.submit(parcel(1, 1));
        c.submit(parcel(2, 1));
        c.submit(parcel(3, 2));
        c.submit(parcel(4, 2));
        let batches = path.batches.lock();
        assert_eq!(batches.len(), 1, "only dst 1 hit its threshold");
        assert_eq!(batches[0].0, 1);
        let mut dests = c.destinations();
        dests.sort_unstable();
        assert_eq!(dests, vec![1, 2]);
    }

    #[test]
    fn per_destination_counters_split_and_aggregate() {
        let path = Arc::new(MockPath {
            batches: Mutex::new(Vec::new()),
        });
        let timer = Arc::new(TimerService::new("coalescer-perdest-counters"));
        let c = Coalescer::per_destination(
            "act",
            ParamsHandle::new(CoalescingParams::new(2, Duration::from_secs(10))),
            FlushPolicy::Append,
            Arc::clone(&timer),
            path.clone() as _,
        );
        for i in 0..6 {
            c.submit(parcel(i, 1));
        }
        for i in 0..2 {
            c.submit(parcel(100 + i, 2));
        }
        assert_eq!(c.counters_for(1).parcels.get(), 6);
        assert_eq!(c.counters_for(2).parcels.get(), 2);
        assert_eq!(c.counters_for(1).messages.get(), 3);
        // The action-level aggregate still matches the paper's counters.
        assert_eq!(c.counters().parcels.get(), 8);
        assert_eq!(c.counters().messages.get(), 4);
    }

    #[test]
    fn global_mode_params_for_returns_shared_handle() {
        let (c, _path, _t) = coalescer(CoalescingParams::new(10, Duration::from_secs(10)));
        assert!(!c.is_per_destination());
        c.params_for(3).set_nparcels(5);
        assert_eq!(c.params().load().nparcels, 5, "global handle is shared");
        assert_eq!(c.params_for(7).load().nparcels, 5);
    }

    #[test]
    fn concurrent_multi_destination_conservation() {
        let (c, path, _t) = coalescer(CoalescingParams::new(4, Duration::from_millis(2)));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..250u64 {
                        c.submit(parcel(t * 1000 + i, (i % 3) as u32));
                    }
                });
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        let batches = path.batches.lock();
        let mut seen = std::collections::HashSet::new();
        for (dst, batch) in batches.iter() {
            for p in batch {
                assert_eq!(p.dest_locality, *dst, "batch mixes destinations");
                assert!(seen.insert(p.id));
            }
        }
        assert_eq!(seen.len(), 1000);
    }
}
