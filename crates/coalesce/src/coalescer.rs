//! The per-action coalescer plugged into the parcel port.
//!
//! One [`Coalescer`] serves one coalesced action: it fans parcels out to
//! per-destination [`CoalescingQueue`]s (coalescing only combines parcels
//! "bound to the same destination"), shares one [`ParamsHandle`] and one
//! [`CoalescingCounters`] across them, and implements the parcel port's
//! [`ParcelInterceptor`] interface — the RPX analogue of flagging an
//! action with `HPX_ACTION_USES_MESSAGE_COALESCING`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use rpx_counters::CounterRegistry;
use rpx_parcel::{Parcel, ParcelInterceptor, SendPath};
use rpx_util::TimerService;

use crate::counters::CoalescingCounters;
use crate::params::{CoalescingParams, ParamsHandle};
use crate::queue::{CoalescingQueue, FlushPolicy};

/// The coalescing plug-in for one action.
pub struct Coalescer {
    action_name: String,
    params: ParamsHandle,
    policy: FlushPolicy,
    timer: Arc<TimerService>,
    path: Arc<dyn SendPath>,
    counters: Arc<CoalescingCounters>,
    queues: RwLock<HashMap<u32, Arc<CoalescingQueue>>>,
}

impl Coalescer {
    /// Create a coalescer for `action_name` emitting through `path`.
    pub fn new(
        action_name: &str,
        params: CoalescingParams,
        timer: Arc<TimerService>,
        path: Arc<dyn SendPath>,
    ) -> Arc<Self> {
        Self::with_handle(action_name, ParamsHandle::new(params), timer, path)
    }

    /// Create a coalescer sharing an existing parameter handle (used when
    /// several localities' coalescers are steered by one global knob, as
    /// in the paper's parameter sweeps).
    pub fn with_handle(
        action_name: &str,
        params: ParamsHandle,
        timer: Arc<TimerService>,
        path: Arc<dyn SendPath>,
    ) -> Arc<Self> {
        Self::with_handle_policy(action_name, params, FlushPolicy::Append, timer, path)
    }

    /// Create a coalescer with an explicit per-destination flush policy.
    ///
    /// [`FlushPolicy::Mailbox`] is what
    /// [`DeliveryClass::Coalesce`](rpx_parcel::DeliveryClass::Coalesce)
    /// actions install: one newest-wins slot per destination.
    pub fn with_handle_policy(
        action_name: &str,
        params: ParamsHandle,
        policy: FlushPolicy,
        timer: Arc<TimerService>,
        path: Arc<dyn SendPath>,
    ) -> Arc<Self> {
        Arc::new(Coalescer {
            action_name: action_name.to_string(),
            params,
            policy,
            timer,
            path,
            counters: CoalescingCounters::new(),
            queues: RwLock::new(HashMap::new()),
        })
    }

    /// The action this coalescer serves.
    pub fn action_name(&self) -> &str {
        &self.action_name
    }

    /// The flush policy this coalescer's queues use.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// The live-tunable parameter handle (shared with the adaptive
    /// controller).
    pub fn params(&self) -> &ParamsHandle {
        &self.params
    }

    /// The per-action counters.
    pub fn counters(&self) -> &Arc<CoalescingCounters> {
        &self.counters
    }

    /// Register this action's `/coalescing/*` counters in `registry`.
    pub fn register_counters(&self, registry: &CounterRegistry) {
        self.counters.register(registry, &self.action_name);
    }

    /// Parcels currently buffered across all destinations.
    pub fn pending(&self) -> usize {
        self.queues.read().values().map(|q| q.pending()).sum()
    }

    fn queue_for(&self, dst: u32) -> Arc<CoalescingQueue> {
        if let Some(q) = self.queues.read().get(&dst) {
            return Arc::clone(q);
        }
        let mut queues = self.queues.write();
        Arc::clone(queues.entry(dst).or_insert_with(|| {
            CoalescingQueue::with_policy(
                dst,
                self.params.clone(),
                self.policy,
                Arc::clone(&self.timer),
                Arc::clone(&self.path),
                Arc::clone(&self.counters),
            )
        }))
    }
}

impl ParcelInterceptor for Coalescer {
    fn submit(&self, parcel: Parcel) {
        self.queue_for(parcel.dest_locality).submit(parcel);
    }

    fn flush(&self) {
        let queues: Vec<_> = self.queues.read().values().cloned().collect();
        for q in queues {
            q.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Mutex;
    use rpx_agas::Gid;
    use rpx_parcel::{ActionId, ParcelBatch};
    use std::time::Duration;

    struct MockPath {
        batches: Mutex<Vec<(u32, Vec<Parcel>)>>,
    }
    impl SendPath for MockPath {
        fn emit(&self, dst: u32, batch: ParcelBatch) {
            self.batches.lock().push((dst, batch.into_vec()));
        }
    }

    fn parcel(id: u64, dst: u32) -> Parcel {
        Parcel {
            id,
            src_locality: 0,
            dest_locality: dst,
            dest_object: Gid::INVALID,
            action: ActionId(0),
            args: Bytes::new(),
            continuation: Gid::INVALID,
        }
    }

    fn coalescer(params: CoalescingParams) -> (Arc<Coalescer>, Arc<MockPath>, Arc<TimerService>) {
        let path = Arc::new(MockPath {
            batches: Mutex::new(Vec::new()),
        });
        let timer = Arc::new(TimerService::new("coalescer-test"));
        let c = Coalescer::new("act", params, Arc::clone(&timer), path.clone() as _);
        (c, path, timer)
    }

    #[test]
    fn destinations_coalesce_independently() {
        let (c, path, _t) = coalescer(CoalescingParams::new(3, Duration::from_secs(10)));
        // Interleave two destinations; each must fill its own queue.
        for i in 0..3 {
            c.submit(parcel(i, 1));
            c.submit(parcel(100 + i, 2));
        }
        let batches = path.batches.lock();
        assert_eq!(batches.len(), 2);
        for (dst, batch) in batches.iter() {
            assert_eq!(batch.len(), 3);
            assert!(batch.iter().all(|p| p.dest_locality == *dst));
        }
    }

    #[test]
    fn flush_drains_every_destination() {
        let (c, path, _t) = coalescer(CoalescingParams::new(100, Duration::from_secs(10)));
        c.submit(parcel(1, 0));
        c.submit(parcel(2, 1));
        c.submit(parcel(3, 2));
        assert_eq!(c.pending(), 3);
        c.flush();
        assert_eq!(c.pending(), 0);
        assert_eq!(path.batches.lock().len(), 3);
    }

    #[test]
    fn shared_params_apply_to_all_queues() {
        let (c, path, _t) = coalescer(CoalescingParams::new(100, Duration::from_secs(10)));
        c.submit(parcel(1, 1));
        c.submit(parcel(2, 2));
        c.params().set_nparcels(2);
        c.submit(parcel(3, 1));
        c.submit(parcel(4, 2));
        assert_eq!(path.batches.lock().len(), 2, "both queues flushed at 2");
    }

    #[test]
    fn counters_aggregate_across_destinations() {
        let (c, _path, _t) = coalescer(CoalescingParams::new(2, Duration::from_secs(10)));
        for dst in 0..4 {
            c.submit(parcel(dst as u64 * 2, dst));
            c.submit(parcel(dst as u64 * 2 + 1, dst));
        }
        assert_eq!(c.counters().parcels.get(), 8);
        assert_eq!(c.counters().messages.get(), 4);
        assert_eq!(c.counters().parcels_per_message.ratio(), 2.0);
    }

    #[test]
    fn counter_registration_uses_action_name() {
        let (c, _path, _t) = coalescer(CoalescingParams::default());
        let reg = CounterRegistry::new(0);
        c.register_counters(&reg);
        assert!(reg.query("/coalescing/count/parcels@act").is_ok());
        assert_eq!(c.action_name(), "act");
    }

    #[test]
    fn mailbox_policy_applies_per_destination() {
        let path = Arc::new(MockPath {
            batches: Mutex::new(Vec::new()),
        });
        let timer = Arc::new(TimerService::new("coalescer-mailbox"));
        let c = Coalescer::with_handle_policy(
            "sync",
            ParamsHandle::new(CoalescingParams::new(100, Duration::from_secs(10))),
            crate::queue::FlushPolicy::Mailbox,
            Arc::clone(&timer),
            path.clone() as _,
        );
        assert_eq!(c.policy(), crate::queue::FlushPolicy::Mailbox);
        // Ten updates to each of two destinations: one slot each.
        for i in 0..10 {
            c.submit(parcel(i, 1));
            c.submit(parcel(100 + i, 2));
        }
        assert_eq!(c.pending(), 2);
        c.flush();
        let batches = path.batches.lock();
        assert_eq!(batches.len(), 2);
        for (dst, batch) in batches.iter() {
            assert_eq!(batch.len(), 1);
            let expect = if *dst == 1 { 9 } else { 109 };
            assert_eq!(batch[0].id, expect, "newest value for dst {dst}");
        }
    }

    #[test]
    fn concurrent_multi_destination_conservation() {
        let (c, path, _t) = coalescer(CoalescingParams::new(4, Duration::from_millis(2)));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..250u64 {
                        c.submit(parcel(t * 1000 + i, (i % 3) as u32));
                    }
                });
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        let batches = path.batches.lock();
        let mut seen = std::collections::HashSet::new();
        for (dst, batch) in batches.iter() {
            for p in batch {
                assert_eq!(p.dest_locality, *dst, "batch mixes destinations");
                assert!(seen.insert(p.id));
            }
        }
        assert_eq!(seen.len(), 1000);
    }
}
