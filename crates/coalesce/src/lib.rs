//! # rpx-coalesce
//!
//! **Parcel coalescing** — the paper's primary mechanism (§II-B,
//! Algorithm 1), implemented as a plug-in over the parcel subsystem's
//! interceptor interface, just as the paper implements it as an HPX
//! plug-in enabled per action with `HPX_ACTION_USES_MESSAGE_COALESCING`.
//!
//! The design revolves around the paper's two control parameters:
//!
//! * **`nparcels`** — how many parcels to coalesce into one message
//!   (queue length). Note this is a *count*, the paper's deliberate
//!   departure from the buffer-*size* triggers of Active Pebbles, AM++
//!   and Charm++.
//! * **`interval`** — the wait time in microseconds: when the first parcel
//!   enters an empty queue a flush timer is armed; if the queue has not
//!   filled when it fires, the queue is flushed anyway. This guarantees
//!   progress (no deadlock by starvation).
//!
//! Two further rules from the paper:
//!
//! * a **maximum buffer size** caps memory ("we employ a limit on the
//!   maximum size of the buffer in order to avoid memory overflow"),
//! * the **sparse-traffic bypass**: parcels are only coalesced "when the
//!   time between them is less than the maximum wait time" — if the gap
//!   since the previous parcel exceeds `interval`, the parcel is sent
//!   immediately, effectively disabling coalescing for sparse phases.
//!
//! Parameters are shared through an atomically updatable
//! [`ParamsHandle`], so the adaptive controller (`rpx-adaptive`) can
//! re-tune a live application — the capability Fig. 9 of the paper is
//! building towards.
//!
//! The plug-in also registers the five `/coalescing/*` performance
//! counters the paper added to HPX (see [`counters`]).

#![warn(missing_docs)]

pub mod coalescer;
pub mod counters;
pub mod params;
pub mod queue;

pub use coalescer::Coalescer;
pub use counters::CoalescingCounters;
pub use params::{CoalescingParams, ParamsHandle};
pub use queue::{CoalescingQueue, FlushPolicy};
