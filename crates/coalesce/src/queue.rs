//! The per-destination coalescing queue — Algorithm 1 of the paper.
//!
//! ```text
//! procedure Coalescing Message Handler
//!     nparcels ← number of parcels to coalesce in a message
//!     interval ← wait time in microseconds
//!     s       ← state of arriving parcel
//!     tslp    ← time since last parcel
//!     if tslp > interval then
//!         send parcel                    (sparse-traffic bypass)
//!     switch s do
//!         case First:
//!             Start Flush timer
//!             Queue Parcel
//!         case ¬First ∧ ¬Last:
//!             Queue Parcel
//!         case Last (QueueFull):
//!             Stop Flush timer
//!             Flush queued parcels
//! ```
//!
//! A queue exists per (action, destination) pair; parameters and counters
//! are shared across the destinations of one action.
//!
//! The submit path is allocation-free in steady state: buffers are drawn
//! from a per-queue [`BufferPool`] pre-sized to `nparcels`, flushed batches
//! travel as [`ParcelBatch`] and return their backing `Vec` to the pool
//! when the transport drops them, and counter updates and timestamping
//! happen outside the state lock.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use rpx_parcel::{BufferPool, Parcel, ParcelBatch, SendPath};
use rpx_util::time::dur_to_ns;
use rpx_util::{TimerHandle, TimerService};

use crate::counters::CoalescingCounters;
use crate::params::ParamsHandle;

/// How buffered parcels accumulate between flushes.
///
/// [`Append`](FlushPolicy::Append) is the paper's Algorithm 1: every
/// submitted parcel is kept and shipped. [`Mailbox`](FlushPolicy::Mailbox)
/// is the value-replacing variant behind `DeliveryClass::Coalesce`
/// (defined in `rpx-net`, selected by the registration builder): the
/// queue holds at most one parcel per destination, a newer submission
/// *replaces* the occupant, and each flush emits a single parcel — so N
/// state updates inside one interval cost one wire record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Keep every parcel; flush on queue-full, byte cap, or timer.
    #[default]
    Append,
    /// Newest-wins slot of one parcel; flush on timer (or sparse bypass).
    /// `nparcels`/`max_bytes` never trigger — the slot cannot fill.
    Mailbox,
}

struct State {
    buffer: Vec<Parcel>,
    bytes: usize,
    last_arrival: Option<Instant>,
    /// Bumped on every flush; a timer callback carrying a stale epoch is
    /// ignored (it raced with a queue-full flush).
    epoch: u64,
    timer: Option<TimerHandle>,
}

/// A coalescing queue for one destination locality.
pub struct CoalescingQueue {
    dst: u32,
    params: ParamsHandle,
    policy: FlushPolicy,
    timer_service: Arc<TimerService>,
    path: Arc<dyn SendPath>,
    counters: Arc<CoalescingCounters>,
    /// Recycles flushed buffers: a batch emitted downstream returns its
    /// `Vec<Parcel>` here on drop, and the next fill re-uses it.
    pool: Arc<BufferPool>,
    state: Mutex<State>,
}

impl CoalescingQueue {
    /// Create an [`FlushPolicy::Append`] queue for destination `dst`.
    pub fn new(
        dst: u32,
        params: ParamsHandle,
        timer_service: Arc<TimerService>,
        path: Arc<dyn SendPath>,
        counters: Arc<CoalescingCounters>,
    ) -> Arc<Self> {
        Self::with_policy(
            dst,
            params,
            FlushPolicy::Append,
            timer_service,
            path,
            counters,
        )
    }

    /// Create a queue for destination `dst` with an explicit flush policy.
    pub fn with_policy(
        dst: u32,
        params: ParamsHandle,
        policy: FlushPolicy,
        timer_service: Arc<TimerService>,
        path: Arc<dyn SendPath>,
        counters: Arc<CoalescingCounters>,
    ) -> Arc<Self> {
        Arc::new(CoalescingQueue {
            dst,
            params,
            policy,
            timer_service,
            path,
            counters,
            pool: BufferPool::new(),
            state: Mutex::new(State {
                buffer: Vec::new(),
                bytes: 0,
                last_arrival: None,
                epoch: 0,
                timer: None,
            }),
        })
    }

    /// The destination this queue serves.
    pub fn destination(&self) -> u32 {
        self.dst
    }

    /// Parcels currently buffered.
    pub fn pending(&self) -> usize {
        self.state.lock().buffer.len()
    }

    /// Spare recycled buffers currently pooled (observability/tests).
    pub fn spare_buffers(&self) -> usize {
        self.pool.spares()
    }

    /// Submit one parcel (Algorithm 1; under [`FlushPolicy::Mailbox`] the
    /// queue-parcel step becomes replace-the-occupant).
    pub fn submit(self: &Arc<Self>, parcel: Parcel) {
        debug_assert_eq!(parcel.dest_locality, self.dst);
        let params = self.params.load();
        // Timestamp before taking the lock; the gap error this introduces
        // under contention is bounded by the lock hold time.
        let now = Instant::now();
        // At most two batches leave one submit: what was already buffered
        // (first slot) and the arriving parcel when it bypasses (second).
        let mut flushed: Option<Vec<Parcel>> = None;
        let mut bypass: Option<ParcelBatch> = None;
        let mut replaced = false;
        let gap: Option<Duration>;
        {
            let mut st = self.state.lock();
            gap = st.last_arrival.map(|t| now.saturating_duration_since(t));
            st.last_arrival = Some(now);

            let sparse = gap.is_some_and(|g| g > params.interval);
            if params.is_disabled() || sparse {
                // Coalescing off (nparcels = 1) or sparse bypass: anything
                // still buffered goes first (parameters may have just been
                // lowered), then the arriving parcel ships immediately as
                // an inline batch — no buffer, no pool traffic.
                flushed = self.flush_locked(&mut st);
                bypass = Some(ParcelBatch::single(parcel));
            } else if self.policy == FlushPolicy::Mailbox && !st.buffer.is_empty() {
                // Mailbox newest-wins: the arriving value supersedes the
                // occupant in place. The armed timer keeps running — the
                // slot flushes on the first parcel's deadline, not the
                // last one's, so a steady stream still drains.
                st.bytes = parcel.wire_size();
                st.buffer[0] = parcel;
                replaced = true;
            } else {
                st.bytes += parcel.wire_size();
                if st.buffer.capacity() == 0 {
                    // case First after a flush: draw a recycled buffer
                    // pre-sized to nparcels so pushes never reallocate.
                    let cap = match self.policy {
                        FlushPolicy::Append => params.nparcels,
                        FlushPolicy::Mailbox => 1,
                    };
                    st.buffer = self.pool.take(cap);
                }
                st.buffer.push(parcel);
                if st.buffer.len() == 1 {
                    // case First: start the flush timer.
                    let epoch = st.epoch;
                    let weak = Arc::downgrade(self);
                    st.timer = Some(self.timer_service.arm_after(params.interval, move || {
                        if let Some(queue) = weak.upgrade() {
                            queue.timer_flush(epoch);
                        }
                    }));
                }
                if self.policy == FlushPolicy::Append
                    && (st.buffer.len() >= params.nparcels || st.bytes >= params.max_bytes)
                {
                    // case Last: stop the timer and flush. A mailbox never
                    // fills — only the timer (or sparse bypass) drains it.
                    flushed = self.flush_locked(&mut st);
                }
            }
        }
        // Counter recording happens outside the critical section.
        self.counters.record_arrival(gap.map(dur_to_ns));
        if replaced {
            self.path.note_mailbox_replaced();
        }
        if let Some(buf) = flushed {
            self.emit_buf(buf);
        }
        if let Some(batch) = bypass {
            self.counters.record_message(1);
            if self.policy == FlushPolicy::Mailbox {
                self.path.note_mailbox_flushed();
            }
            self.path.emit(self.dst, batch);
        }
    }

    /// Force-flush the queue (phase boundaries, shutdown).
    pub fn flush(&self) {
        let buf = {
            let mut st = self.state.lock();
            self.flush_locked(&mut st)
        };
        if let Some(buf) = buf {
            self.emit_buf(buf);
        }
    }

    /// Take the buffered parcels, cancel the timer, bump the epoch.
    /// Caller records counters and emits after releasing the state lock;
    /// the replacement buffer is drawn lazily from the pool on next push.
    fn flush_locked(&self, st: &mut State) -> Option<Vec<Parcel>> {
        if let Some(t) = st.timer.take() {
            t.cancel();
        }
        st.epoch += 1;
        if st.buffer.is_empty() {
            return None;
        }
        st.bytes = 0;
        Some(std::mem::take(&mut st.buffer))
    }

    /// Timer-driven flush; ignored if `epoch` is stale.
    fn timer_flush(self: &Arc<Self>, epoch: u64) {
        let buf = {
            let mut st = self.state.lock();
            if st.epoch != epoch {
                return;
            }
            self.flush_locked(&mut st)
        };
        if let Some(buf) = buf {
            self.emit_buf(buf);
        }
    }

    /// Record counters and hand a flushed buffer to the send path.
    fn emit_buf(&self, buf: Vec<Parcel>) {
        self.counters.record_message(buf.len());
        if self.policy == FlushPolicy::Mailbox {
            self.path.note_mailbox_flushed();
        }
        self.path
            .emit(self.dst, ParcelBatch::from_pool(buf, &self.pool));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CoalescingParams;
    use bytes::Bytes;
    use rpx_agas::Gid;
    use rpx_parcel::ActionId;
    use std::time::Duration;

    pub(crate) struct MockPath {
        pub batches: Mutex<Vec<(u32, Vec<Parcel>)>>,
        pub replaced: std::sync::atomic::AtomicU64,
        pub flushed: std::sync::atomic::AtomicU64,
    }

    impl MockPath {
        pub fn new() -> Arc<Self> {
            Arc::new(MockPath {
                batches: Mutex::new(Vec::new()),
                replaced: std::sync::atomic::AtomicU64::new(0),
                flushed: std::sync::atomic::AtomicU64::new(0),
            })
        }
        fn batch_sizes(&self) -> Vec<usize> {
            self.batches.lock().iter().map(|(_, b)| b.len()).collect()
        }
        fn total_parcels(&self) -> usize {
            self.batches.lock().iter().map(|(_, b)| b.len()).sum()
        }
    }

    impl SendPath for MockPath {
        fn emit(&self, dst: u32, batch: ParcelBatch) {
            // into_vec detaches the buffer from the recycling pool — test
            // capture deliberately trades recycling for ownership.
            self.batches.lock().push((dst, batch.into_vec()));
        }
        fn note_mailbox_replaced(&self) {
            self.replaced
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        fn note_mailbox_flushed(&self) {
            self.flushed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// A path that consumes and drops batches like a real transport,
    /// returning their buffers to the queue's pool.
    struct DropPath;
    impl SendPath for DropPath {
        fn emit(&self, _dst: u32, batch: ParcelBatch) {
            drop(batch);
        }
    }

    fn parcel(id: u64) -> Parcel {
        Parcel {
            id,
            src_locality: 0,
            dest_locality: 1,
            dest_object: Gid::INVALID,
            action: ActionId(0),
            args: Bytes::from_static(&[0u8; 16]),
            continuation: Gid::INVALID,
        }
    }

    fn queue(
        params: CoalescingParams,
    ) -> (
        Arc<CoalescingQueue>,
        Arc<MockPath>,
        Arc<CoalescingCounters>,
        Arc<TimerService>,
    ) {
        let path = MockPath::new();
        let counters = CoalescingCounters::new();
        let timer = Arc::new(TimerService::new("coalesce-test"));
        let q = CoalescingQueue::new(
            1,
            ParamsHandle::new(params),
            Arc::clone(&timer),
            path.clone() as Arc<dyn SendPath>,
            Arc::clone(&counters),
        );
        (q, path, counters, timer)
    }

    #[test]
    fn queue_full_triggers_flush() {
        let (q, path, counters, _t) = queue(CoalescingParams::new(4, Duration::from_secs(10)));
        for i in 0..8 {
            q.submit(parcel(i));
        }
        assert_eq!(path.batch_sizes(), vec![4, 4]);
        assert_eq!(q.pending(), 0);
        assert_eq!(counters.parcels.get(), 8);
        assert_eq!(counters.messages.get(), 2);
        assert_eq!(counters.parcels_per_message.ratio(), 4.0);
    }

    #[test]
    fn partial_queue_is_flushed_by_timer() {
        let (q, path, _c, _t) = queue(CoalescingParams::new(100, Duration::from_millis(5)));
        q.submit(parcel(1));
        q.submit(parcel(2));
        q.submit(parcel(3));
        assert_eq!(q.pending(), 3);
        assert!(path.batches.lock().is_empty());
        // Wait past the interval: the flush timer must fire.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(path.batch_sizes(), vec![3]);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn nparcels_one_disables_coalescing() {
        let (q, path, counters, _t) = queue(CoalescingParams::new(1, Duration::from_secs(10)));
        for i in 0..5 {
            q.submit(parcel(i));
        }
        assert_eq!(path.batch_sizes(), vec![1, 1, 1, 1, 1]);
        assert_eq!(counters.messages.get(), 5);
        assert_eq!(counters.parcels_per_message.ratio(), 1.0);
    }

    #[test]
    fn sparse_gap_bypasses_queueing() {
        // interval = 1 ms; parcels arriving 10 ms apart must ship
        // immediately (the paper's sparse-traffic rule).
        let (q, path, _c, _t) = queue(CoalescingParams::new(100, Duration::from_millis(1)));
        q.submit(parcel(1)); // first: queued, timer armed
        std::thread::sleep(Duration::from_millis(10));
        // Timer has already flushed parcel 1.
        q.submit(parcel(2)); // gap 10 ms > 1 ms → bypass
        assert_eq!(path.batch_sizes(), vec![1, 1]);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn max_bytes_forces_flush() {
        // Each test parcel is ~56 wire bytes; cap at 120 → flush on the 3rd.
        let (q, path, _c, _t) =
            queue(CoalescingParams::new(1000, Duration::from_secs(10)).with_max_bytes(120));
        q.submit(parcel(1));
        q.submit(parcel(2));
        assert_eq!(q.pending(), 2);
        q.submit(parcel(3));
        assert_eq!(q.pending(), 0);
        assert_eq!(path.batch_sizes(), vec![3]);
    }

    #[test]
    fn explicit_flush_empties_queue() {
        let (q, path, _c, _t) = queue(CoalescingParams::new(100, Duration::from_secs(10)));
        q.submit(parcel(1));
        q.submit(parcel(2));
        q.flush();
        assert_eq!(path.batch_sizes(), vec![2]);
        // Flushing an empty queue emits nothing.
        q.flush();
        assert_eq!(path.batch_sizes(), vec![2]);
    }

    #[test]
    fn timer_does_not_double_flush_after_queue_full() {
        let (q, path, _c, _t) = queue(CoalescingParams::new(2, Duration::from_millis(5)));
        q.submit(parcel(1));
        q.submit(parcel(2)); // fills queue → flush, cancels/invalidates timer
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(path.batch_sizes(), vec![2], "stale timer re-flushed");
    }

    #[test]
    fn params_update_applies_to_next_decision() {
        let (q, path, _c, _t) = queue(CoalescingParams::new(100, Duration::from_secs(10)));
        q.submit(parcel(1));
        q.params.set_nparcels(2);
        q.submit(parcel(2)); // now 2 ≥ nparcels → flush
        assert_eq!(path.batch_sizes(), vec![2]);
    }

    #[test]
    fn arrival_gaps_feed_counters() {
        let (q, _path, counters, _t) = queue(CoalescingParams::new(100, Duration::from_secs(10)));
        q.submit(parcel(1));
        std::thread::sleep(Duration::from_millis(2));
        q.submit(parcel(2));
        assert_eq!(counters.average_arrival.count(), 1);
        assert!(counters.average_arrival.mean() >= 2_000_000.0); // ≥ 2 ms in ns
        assert_eq!(counters.arrival_histogram.count(), 1);
    }

    #[test]
    fn flushed_buffers_are_recycled() {
        // With a transport that drops batches (as the parcel port does once
        // encoded), the queue cycles pooled buffers instead of allocating.
        let counters = CoalescingCounters::new();
        let timer = Arc::new(TimerService::new("recycle-test"));
        let q = CoalescingQueue::new(
            1,
            ParamsHandle::new(CoalescingParams::new(4, Duration::from_secs(10))),
            timer,
            Arc::new(DropPath) as Arc<dyn SendPath>,
            counters,
        );
        for round in 0..10u64 {
            for i in 0..4 {
                q.submit(parcel(round * 4 + i));
            }
            // Each full flush hands its buffer back: exactly one spare,
            // reused by the next round's first push.
            assert_eq!(q.spare_buffers(), 1, "round {round}");
        }
    }

    fn mailbox_queue(
        params: CoalescingParams,
    ) -> (Arc<CoalescingQueue>, Arc<MockPath>, Arc<TimerService>) {
        let path = MockPath::new();
        let timer = Arc::new(TimerService::new("mailbox-test"));
        let q = CoalescingQueue::with_policy(
            1,
            ParamsHandle::new(params),
            FlushPolicy::Mailbox,
            Arc::clone(&timer),
            path.clone() as Arc<dyn SendPath>,
            CoalescingCounters::new(),
        );
        (q, path, timer)
    }

    #[test]
    fn mailbox_newest_wins_single_flush() {
        use std::sync::atomic::Ordering;
        let (q, path, _t) = mailbox_queue(CoalescingParams::new(100, Duration::from_millis(5)));
        for i in 1..=10 {
            q.submit(parcel(i));
        }
        assert_eq!(q.pending(), 1, "slot holds exactly the newest parcel");
        std::thread::sleep(Duration::from_millis(30));
        let batches = path.batches.lock();
        assert_eq!(batches.len(), 1, "ten updates, one wire record");
        assert_eq!(batches[0].1.len(), 1);
        assert_eq!(batches[0].1[0].id, 10, "latest value wins");
        assert_eq!(path.replaced.load(Ordering::Relaxed), 9);
        assert_eq!(path.flushed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mailbox_never_flushes_on_count_or_bytes() {
        // nparcels = 2 and a tiny byte cap would flush an Append queue on
        // the second submit; a mailbox only drains by timer or flush().
        let (q, path, _t) =
            mailbox_queue(CoalescingParams::new(2, Duration::from_secs(10)).with_max_bytes(1));
        for i in 1..=5 {
            q.submit(parcel(i));
        }
        assert!(path.batches.lock().is_empty());
        q.flush();
        let batches = path.batches.lock();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].1[0].id, 5);
    }

    #[test]
    fn mailbox_sparse_gap_bypasses() {
        use std::sync::atomic::Ordering;
        let (q, path, _t) = mailbox_queue(CoalescingParams::new(100, Duration::from_millis(1)));
        q.submit(parcel(1)); // first: occupies slot, timer armed
        std::thread::sleep(Duration::from_millis(10));
        q.submit(parcel(2)); // gap 10 ms > 1 ms → ships immediately
        assert_eq!(path.batch_sizes(), vec![1, 1]);
        assert_eq!(q.pending(), 0);
        // Both deliveries count as mailbox flushes; nothing was replaced.
        assert_eq!(path.replaced.load(Ordering::Relaxed), 0);
        assert_eq!(path.flushed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn conservation_under_concurrency() {
        let (q, path, counters, _t) = queue(CoalescingParams::new(8, Duration::from_millis(2)));
        let n_threads = 4;
        let per_thread = 500;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per_thread {
                        q.submit(parcel((t * per_thread + i) as u64));
                    }
                });
            }
        });
        // Allow the final timer flush to land.
        std::thread::sleep(Duration::from_millis(30));
        let total = n_threads * per_thread;
        assert_eq!(path.total_parcels(), total);
        assert_eq!(counters.parcels.get() as usize, total);
        // Every parcel id delivered exactly once.
        let mut seen = std::collections::HashSet::new();
        for (_, batch) in path.batches.lock().iter() {
            for p in batch {
                assert!(seen.insert(p.id), "duplicate parcel {}", p.id);
            }
        }
        assert_eq!(seen.len(), total);
        // No batch exceeds nparcels.
        assert!(path.batch_sizes().iter().all(|&s| s <= 8));
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::MockPath;
    use super::*;
    use crate::params::CoalescingParams;
    use bytes::Bytes;
    use proptest::prelude::*;
    use rpx_agas::Gid;
    use rpx_parcel::ActionId;
    use std::time::Duration;

    fn parcel(id: u64) -> Parcel {
        Parcel {
            id,
            src_locality: 0,
            dest_locality: 1,
            dest_object: Gid::INVALID,
            action: ActionId(0),
            args: Bytes::from_static(&[0u8; 8]),
            continuation: Gid::INVALID,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Invariant: regardless of nparcels and submission count, every
        /// parcel is emitted exactly once, in order, and no batch exceeds
        /// nparcels.
        #[test]
        fn conservation_and_batch_bounds(nparcels in 1usize..32, count in 0usize..200) {
            let path = MockPath::new();
            let counters = CoalescingCounters::new();
            let timer = Arc::new(TimerService::new("prop"));
            let q = CoalescingQueue::new(
                1,
                ParamsHandle::new(CoalescingParams::new(nparcels, Duration::from_secs(10))),
                timer,
                path.clone() as Arc<dyn SendPath>,
                counters,
            );
            for i in 0..count {
                q.submit(parcel(i as u64));
            }
            q.flush();
            let batches = path.batches.lock();
            let flat: Vec<u64> = batches.iter().flat_map(|(_, b)| b.iter().map(|p| p.id)).collect();
            prop_assert_eq!(flat, (0..count as u64).collect::<Vec<_>>());
            prop_assert!(batches.iter().all(|(_, b)| b.len() <= nparcels.max(1)));
            // With a long interval and dense submissions, all full batches
            // have exactly nparcels (only the final flush may be short).
            if nparcels > 1 && count > 0 {
                for (_, b) in batches.iter().take(count / nparcels) {
                    prop_assert_eq!(b.len(), nparcels);
                }
            }
        }
    }
}
