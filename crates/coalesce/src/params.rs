//! Coalescing parameters and their live-tunable handle.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A snapshot of the coalescing control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescingParams {
    /// Parcels to coalesce into one message (queue length). `1` disables
    /// coalescing (every parcel ships immediately).
    pub nparcels: usize,
    /// Wait time before the flush timer empties a partially filled queue.
    pub interval: Duration,
    /// Maximum buffered payload bytes before a forced flush (memory
    /// overflow guard).
    pub max_bytes: usize,
}

impl CoalescingParams {
    /// Default maximum buffer size (1 MiB).
    pub const DEFAULT_MAX_BYTES: usize = 1024 * 1024;

    /// Parameters with the given queue length and wait time and the
    /// default buffer cap.
    pub fn new(nparcels: usize, interval: Duration) -> Self {
        assert!(nparcels >= 1, "nparcels must be at least 1");
        CoalescingParams {
            nparcels,
            interval,
            max_bytes: Self::DEFAULT_MAX_BYTES,
        }
    }

    /// Override the buffer cap.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        assert!(max_bytes > 0, "max_bytes must be positive");
        self.max_bytes = max_bytes;
        self
    }

    /// Whether these parameters effectively disable coalescing.
    pub fn is_disabled(&self) -> bool {
        self.nparcels <= 1
    }
}

impl Default for CoalescingParams {
    /// The paper's Parquet sweet spot: 4 parcels, 5000 µs wait.
    fn default() -> Self {
        CoalescingParams::new(4, Duration::from_micros(5000))
    }
}

struct Inner {
    nparcels: AtomicUsize,
    interval_us: AtomicU64,
    max_bytes: AtomicUsize,
}

/// A shared, atomically updatable view of [`CoalescingParams`].
///
/// The coalescer reads the handle on every submit; the adaptive
/// controller (or the application) writes it at any time. Updates take
/// effect for the *next* queuing decision — in-flight queues keep their
/// armed timers.
#[derive(Clone)]
pub struct ParamsHandle {
    inner: Arc<Inner>,
}

impl ParamsHandle {
    /// Create a handle with initial parameters.
    pub fn new(params: CoalescingParams) -> Self {
        ParamsHandle {
            inner: Arc::new(Inner {
                nparcels: AtomicUsize::new(params.nparcels),
                interval_us: AtomicU64::new(params.interval.as_micros() as u64),
                max_bytes: AtomicUsize::new(params.max_bytes),
            }),
        }
    }

    /// Read the current parameters.
    pub fn load(&self) -> CoalescingParams {
        CoalescingParams {
            nparcels: self.inner.nparcels.load(Ordering::Relaxed).max(1),
            interval: Duration::from_micros(self.inner.interval_us.load(Ordering::Relaxed)),
            max_bytes: self.inner.max_bytes.load(Ordering::Relaxed).max(1),
        }
    }

    /// Replace all parameters.
    pub fn store(&self, params: CoalescingParams) {
        self.inner
            .nparcels
            .store(params.nparcels.max(1), Ordering::Relaxed);
        self.inner
            .interval_us
            .store(params.interval.as_micros() as u64, Ordering::Relaxed);
        self.inner
            .max_bytes
            .store(params.max_bytes.max(1), Ordering::Relaxed);
    }

    /// Update only the queue length.
    pub fn set_nparcels(&self, nparcels: usize) {
        self.inner
            .nparcels
            .store(nparcels.max(1), Ordering::Relaxed);
    }

    /// Update only the wait time.
    pub fn set_interval(&self, interval: Duration) {
        self.inner
            .interval_us
            .store(interval.as_micros() as u64, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for ParamsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ParamsHandle").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_sweet_spot() {
        let p = CoalescingParams::default();
        assert_eq!(p.nparcels, 4);
        assert_eq!(p.interval, Duration::from_micros(5000));
        assert!(!p.is_disabled());
    }

    #[test]
    fn nparcels_one_means_disabled() {
        assert!(CoalescingParams::new(1, Duration::from_micros(100)).is_disabled());
        assert!(!CoalescingParams::new(2, Duration::from_micros(100)).is_disabled());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_nparcels_panics() {
        let _ = CoalescingParams::new(0, Duration::from_micros(100));
    }

    #[test]
    fn handle_roundtrips_and_updates() {
        let h = ParamsHandle::new(CoalescingParams::new(8, Duration::from_micros(2000)));
        assert_eq!(h.load().nparcels, 8);
        h.set_nparcels(32);
        h.set_interval(Duration::from_micros(4000));
        let p = h.load();
        assert_eq!(p.nparcels, 32);
        assert_eq!(p.interval, Duration::from_micros(4000));
        h.store(CoalescingParams::new(2, Duration::from_micros(1)));
        assert_eq!(h.load().nparcels, 2);
    }

    #[test]
    fn handle_clamps_degenerate_writes() {
        let h = ParamsHandle::new(CoalescingParams::default());
        h.set_nparcels(0);
        assert_eq!(h.load().nparcels, 1);
    }

    #[test]
    fn clones_share_state() {
        let h = ParamsHandle::new(CoalescingParams::default());
        let h2 = h.clone();
        h.set_nparcels(64);
        assert_eq!(h2.load().nparcels, 64);
    }

    #[test]
    fn max_bytes_builder() {
        let p = CoalescingParams::new(4, Duration::ZERO).with_max_bytes(128);
        assert_eq!(p.max_bytes, 128);
    }
}
