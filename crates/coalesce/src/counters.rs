//! The `/coalescing/*` performance counters.
//!
//! These are the five counters the paper adds to HPX during the study
//! (§II-B):
//!
//! * `/coalescing/count/parcels@action`
//! * `/coalescing/count/messages@action`
//! * `/coalescing/count/average-parcels-per-message@action`
//! * `/coalescing/time/average-parcel-arrival@action` (nanoseconds)
//! * `/coalescing/time/parcel-arrival-histogram@action` (microsecond gaps)

use std::sync::Arc;

use rpx_counters::{
    AverageCounter, CallbackCounter, CounterRegistry, CounterValue, HistogramCounter,
    MonotoneCounter, RatioCounter,
};
use rpx_util::Histogram;

/// Default arrival-gap histogram range: 0–10 000 µs in 100 buckets.
pub const HIST_MAX_US: u64 = 10_000;
/// Default number of histogram buckets.
pub const HIST_BUCKETS: usize = 100;

/// The per-action coalescing counter set.
///
/// In the default (global) mode one instance is shared by all destination
/// queues of an action, so the counters aggregate per action exactly as
/// in the paper. In per-destination mode each destination queue records
/// into its own instance created with [`CoalescingCounters::with_parent`],
/// which forwards every event to the shared action-level instance — the
/// paper's aggregate counters stay exact while the adaptive controller
/// reads the per-destination children.
pub struct CoalescingCounters {
    /// Parcels submitted for this action.
    pub parcels: Arc<MonotoneCounter>,
    /// Messages generated for this action.
    pub messages: Arc<MonotoneCounter>,
    /// parcels-shipped / messages-shipped.
    pub parcels_per_message: Arc<RatioCounter>,
    /// Mean gap between parcel arrivals (recorded in nanoseconds).
    pub average_arrival: Arc<AverageCounter>,
    /// Histogram of arrival gaps in microseconds.
    pub arrival_histogram: Arc<Histogram>,
    /// Action-level aggregate this instance forwards to (per-destination
    /// mode only).
    parent: Option<Arc<CoalescingCounters>>,
}

impl CoalescingCounters {
    /// Fresh counters (not yet registered anywhere).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Fresh per-destination counters that forward every recorded event
    /// to `parent` (the action-level aggregate).
    pub fn with_parent(parent: Arc<CoalescingCounters>) -> Arc<Self> {
        Arc::new(CoalescingCounters {
            parent: Some(parent),
            ..Self::default()
        })
    }

    /// Register all five counters in `registry` under `@action`.
    pub fn register(self: &Arc<Self>, registry: &CounterRegistry, action: &str) {
        registry.register_or_replace(
            &format!("/coalescing/count/parcels@{action}"),
            Arc::clone(&self.parcels) as _,
        );
        registry.register_or_replace(
            &format!("/coalescing/count/messages@{action}"),
            Arc::clone(&self.messages) as _,
        );
        // HPX computes this as a derived average; expose the ratio of the
        // two monotones so it matches parcels/messages at every instant.
        let this = Arc::clone(self);
        registry.register_or_replace(
            &format!("/coalescing/count/average-parcels-per-message@{action}"),
            CallbackCounter::new(move || {
                let msgs = this.messages.get();
                let value = if msgs == 0 {
                    0.0
                } else {
                    this.parcels_per_message.ratio()
                };
                CounterValue::Float(value)
            }) as _,
        );
        registry.register_or_replace(
            &format!("/coalescing/time/average-parcel-arrival@{action}"),
            Arc::clone(&self.average_arrival) as _,
        );
        registry.register_or_replace(
            &format!("/coalescing/time/parcel-arrival-histogram@{action}"),
            HistogramCounter::new(Arc::clone(&self.arrival_histogram)) as _,
        );
    }

    /// Record the arrival of one parcel with `gap` nanoseconds since the
    /// previous one (`None` for the first parcel ever seen).
    pub fn record_arrival(&self, gap_ns: Option<u64>) {
        self.parcels.increment();
        if let Some(gap_ns) = gap_ns {
            self.average_arrival.record(gap_ns);
            self.arrival_histogram.record(gap_ns / 1_000);
        }
        if let Some(parent) = &self.parent {
            parent.record_arrival(gap_ns);
        }
    }

    /// Record the emission of one message carrying `parcels` parcels.
    pub fn record_message(&self, parcels: usize) {
        self.messages.increment();
        self.parcels_per_message.add_numerator(parcels as u64);
        self.parcels_per_message.add_denominator(1);
        if let Some(parent) = &self.parent {
            parent.record_message(parcels);
        }
    }
}

impl Default for CoalescingCounters {
    fn default() -> Self {
        CoalescingCounters {
            parcels: MonotoneCounter::new(),
            messages: MonotoneCounter::new(),
            parcels_per_message: RatioCounter::new(),
            average_arrival: AverageCounter::new(),
            arrival_histogram: Arc::new(Histogram::new(0, HIST_MAX_US, HIST_BUCKETS)),
            parent: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_recording() {
        let c = CoalescingCounters::new();
        c.record_arrival(None);
        c.record_arrival(Some(2_000_000)); // 2 ms
        c.record_arrival(Some(4_000_000)); // 4 ms
        assert_eq!(c.parcels.get(), 3);
        assert_eq!(c.average_arrival.mean(), 3_000_000.0);
        // Histogram records µs: 2000 and 4000.
        assert_eq!(c.arrival_histogram.count(), 2);
        assert_eq!(c.arrival_histogram.sum(), 6000);
    }

    #[test]
    fn message_recording_tracks_ratio() {
        let c = CoalescingCounters::new();
        c.record_message(4);
        c.record_message(2);
        assert_eq!(c.messages.get(), 2);
        assert_eq!(c.parcels_per_message.ratio(), 3.0);
    }

    #[test]
    fn registration_exposes_all_five_paper_counters() {
        let reg = CounterRegistry::new(0);
        let c = CoalescingCounters::new();
        c.register(&reg, "get_cplx");
        for path in [
            "/coalescing/count/parcels@get_cplx",
            "/coalescing/count/messages@get_cplx",
            "/coalescing/count/average-parcels-per-message@get_cplx",
            "/coalescing/time/average-parcel-arrival@get_cplx",
            "/coalescing/time/parcel-arrival-histogram@get_cplx",
        ] {
            assert!(reg.query(path).is_ok(), "missing {path}");
        }
        assert_eq!(reg.discover("/coalescing/*@get_cplx").len(), 5);
    }

    #[test]
    fn queried_values_are_consistent() {
        let reg = CounterRegistry::new(0);
        let c = CoalescingCounters::new();
        c.register(&reg, "a");
        for _ in 0..8 {
            c.record_arrival(Some(1_000));
        }
        c.record_message(4);
        c.record_message(4);
        assert_eq!(reg.query_f64("/coalescing/count/parcels@a").unwrap(), 8.0);
        assert_eq!(reg.query_f64("/coalescing/count/messages@a").unwrap(), 2.0);
        assert_eq!(
            reg.query_f64("/coalescing/count/average-parcels-per-message@a")
                .unwrap(),
            4.0
        );
        assert_eq!(
            reg.query_f64("/coalescing/time/average-parcel-arrival@a")
                .unwrap(),
            1000.0
        );
    }

    #[test]
    fn zero_messages_ppm_is_zero() {
        let reg = CounterRegistry::new(0);
        let c = CoalescingCounters::new();
        c.register(&reg, "b");
        assert_eq!(
            reg.query_f64("/coalescing/count/average-parcels-per-message@b")
                .unwrap(),
            0.0
        );
    }

    #[test]
    fn child_counters_forward_to_parent() {
        let parent = CoalescingCounters::new();
        let a = CoalescingCounters::with_parent(Arc::clone(&parent));
        let b = CoalescingCounters::with_parent(Arc::clone(&parent));
        a.record_arrival(None);
        a.record_arrival(Some(2_000));
        b.record_arrival(Some(4_000));
        a.record_message(2);
        b.record_message(1);
        // Children keep their own view...
        assert_eq!(a.parcels.get(), 2);
        assert_eq!(b.parcels.get(), 1);
        assert_eq!(a.messages.get(), 1);
        // ...while the action-level aggregate sees everything.
        assert_eq!(parent.parcels.get(), 3);
        assert_eq!(parent.messages.get(), 2);
        assert_eq!(parent.parcels_per_message.ratio(), 1.5);
        assert_eq!(parent.average_arrival.mean(), 3_000.0);
    }

    #[test]
    fn multiple_actions_do_not_collide() {
        let reg = CounterRegistry::new(0);
        let ca = CoalescingCounters::new();
        let cb = CoalescingCounters::new();
        ca.register(&reg, "a");
        cb.register(&reg, "b");
        ca.record_arrival(None);
        assert_eq!(reg.query_f64("/coalescing/count/parcels@a").unwrap(), 1.0);
        assert_eq!(reg.query_f64("/coalescing/count/parcels@b").unwrap(), 0.0);
    }
}
