//! # rpx-lco
//!
//! **Local Control Objects**: the synchronisation primitives HPX uses to
//! coordinate tasks (§II-A of the paper). RPX provides the subset the
//! paper's workloads need:
//!
//! * [`Promise`]/[`Future`] — one-shot value transfer; remote action
//!   results arrive through these (the `hpx::future` of Listing 1),
//! * [`wait_all`] — block until a set of futures is ready (the
//!   `hpx::wait_all(vec)` call closing every phase of the toy
//!   application),
//! * [`Latch`] — single-use countdown,
//! * [`Barrier`] — reusable generation-counted barrier (the per-iteration
//!   synchronisation of the Parquet proxy).
//!
//! Futures support **cooperative waiting**: a waiter can supply a `pump`
//! closure that is invoked while blocked. The runtime passes the parcel
//! pump here so that a worker thread blocked on a remote result keeps
//! making network progress instead of deadlocking a one-worker scheduler.

#![warn(missing_docs)]

pub mod barrier;
pub mod latch;
pub mod promise;

pub use barrier::Barrier;
pub use latch::Latch;
pub use promise::{channel, wait_all, Future, LcoError, Promise};
