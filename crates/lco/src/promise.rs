//! One-shot promise/future pairs.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Errors surfaced by future/promise operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LcoError {
    /// The promise was dropped without a value being set.
    BrokenPromise,
    /// The value was already set once.
    AlreadySet,
    /// A timed wait expired.
    Timeout,
}

impl fmt::Display for LcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LcoError::BrokenPromise => write!(f, "promise dropped without a value"),
            LcoError::AlreadySet => write!(f, "promise value already set"),
            LcoError::Timeout => write!(f, "wait timed out"),
        }
    }
}

impl std::error::Error for LcoError {}

enum State<T> {
    Pending,
    Ready(T),
    Taken,
    Broken,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// The writing half of a one-shot channel.
pub struct Promise<T> {
    shared: Arc<Shared<T>>,
    fulfilled: bool,
}

/// The reading half of a one-shot channel.
pub struct Future<T> {
    shared: Arc<Shared<T>>,
}

/// Create a connected promise/future pair.
pub fn channel<T>() -> (Promise<T>, Future<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State::Pending),
        cv: Condvar::new(),
    });
    (
        Promise {
            shared: Arc::clone(&shared),
            fulfilled: false,
        },
        Future { shared },
    )
}

impl<T> Promise<T> {
    /// Fulfil the promise.
    pub fn set(mut self, value: T) -> Result<(), LcoError> {
        self.set_ref(value)
    }

    /// Fulfil without consuming (used when the promise lives in a shared
    /// table and is completed by a network handler).
    pub fn set_ref(&mut self, value: T) -> Result<(), LcoError> {
        let mut state = self.shared.state.lock();
        match *state {
            State::Pending => {
                *state = State::Ready(value);
                self.fulfilled = true;
                drop(state);
                self.shared.cv.notify_all();
                Ok(())
            }
            _ => Err(LcoError::AlreadySet),
        }
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        if !self.fulfilled {
            let mut state = self.shared.state.lock();
            if matches!(*state, State::Pending) {
                *state = State::Broken;
                drop(state);
                self.shared.cv.notify_all();
            }
        }
    }
}

impl<T> Future<T> {
    /// Whether a value is ready (or the promise broke).
    pub fn is_ready(&self) -> bool {
        !matches!(*self.shared.state.lock(), State::Pending)
    }

    /// Take the value if ready; `Ok(None)` while still pending.
    pub fn try_take(&self) -> Result<Option<T>, LcoError> {
        let mut state = self.shared.state.lock();
        match std::mem::replace(&mut *state, State::Taken) {
            State::Ready(v) => Ok(Some(v)),
            State::Pending => {
                *state = State::Pending;
                Ok(None)
            }
            State::Broken => {
                *state = State::Broken;
                Err(LcoError::BrokenPromise)
            }
            State::Taken => Err(LcoError::BrokenPromise),
        }
    }

    /// Block until the value arrives and take it.
    pub fn get(self) -> Result<T, LcoError> {
        let mut state = self.shared.state.lock();
        loop {
            match std::mem::replace(&mut *state, State::Taken) {
                State::Ready(v) => return Ok(v),
                State::Broken | State::Taken => return Err(LcoError::BrokenPromise),
                State::Pending => {
                    *state = State::Pending;
                    self.shared.cv.wait(&mut state);
                }
            }
        }
    }

    /// Block until the value arrives or `timeout` expires.
    pub fn get_timeout(self, timeout: Duration) -> Result<T, LcoError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            match std::mem::replace(&mut *state, State::Taken) {
                State::Ready(v) => return Ok(v),
                State::Broken | State::Taken => return Err(LcoError::BrokenPromise),
                State::Pending => {
                    *state = State::Pending;
                    if self.shared.cv.wait_until(&mut state, deadline).timed_out() {
                        if let State::Ready(_) = *state {
                            continue; // raced with a set at the deadline
                        }
                        return Err(LcoError::Timeout);
                    }
                }
            }
        }
    }

    /// Block until ready, invoking `pump` while waiting.
    ///
    /// Between pump calls the waiter parks briefly; `pump` returning
    /// `true` (work was done) skips the park. This is how a worker thread
    /// blocked on a remote result keeps the parcel pump alive.
    pub fn get_with(self, mut pump: impl FnMut() -> bool) -> Result<T, LcoError> {
        loop {
            {
                let mut state = self.shared.state.lock();
                match std::mem::replace(&mut *state, State::Taken) {
                    State::Ready(v) => return Ok(v),
                    State::Broken | State::Taken => return Err(LcoError::BrokenPromise),
                    State::Pending => {
                        *state = State::Pending;
                    }
                }
            }
            let did_work = pump();
            if !did_work {
                let mut state = self.shared.state.lock();
                if matches!(*state, State::Pending) {
                    // Short park: the pump must keep running even if no
                    // notify arrives (e.g. network progress on other nodes).
                    let _ = self
                        .shared
                        .cv
                        .wait_for(&mut state, Duration::from_micros(100));
                }
            }
        }
    }
}

/// Wait for every future, collecting the values in order.
///
/// This is `hpx::wait_all` followed by result extraction. Fails fast on
/// the first broken promise.
pub fn wait_all<T>(futures: Vec<Future<T>>) -> Result<Vec<T>, LcoError> {
    futures.into_iter().map(Future::get).collect()
}

/// Wait for every future while running `pump`, collecting values in order.
pub fn wait_all_with<T>(
    futures: Vec<Future<T>>,
    mut pump: impl FnMut() -> bool,
) -> Result<Vec<T>, LcoError> {
    futures.into_iter().map(|f| f.get_with(&mut pump)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn set_then_get() {
        let (p, f) = channel();
        p.set(42).unwrap();
        assert!(f.is_ready());
        assert_eq!(f.get(), Ok(42));
    }

    #[test]
    fn get_blocks_until_set() {
        let (p, f) = channel();
        let t = std::thread::spawn(move || f.get());
        std::thread::sleep(Duration::from_millis(5));
        p.set("hello").unwrap();
        assert_eq!(t.join().unwrap(), Ok("hello"));
    }

    #[test]
    fn double_set_fails() {
        let (mut p, _f) = channel();
        p.set_ref(1).unwrap();
        assert_eq!(p.set_ref(2), Err(LcoError::AlreadySet));
    }

    #[test]
    fn broken_promise_detected() {
        let (p, f) = channel::<u32>();
        drop(p);
        assert!(f.is_ready());
        assert_eq!(f.get(), Err(LcoError::BrokenPromise));
    }

    #[test]
    fn broken_promise_wakes_blocked_waiter() {
        let (p, f) = channel::<u32>();
        let t = std::thread::spawn(move || f.get());
        std::thread::sleep(Duration::from_millis(5));
        drop(p);
        assert_eq!(t.join().unwrap(), Err(LcoError::BrokenPromise));
    }

    #[test]
    fn try_take_semantics() {
        let (p, f) = channel();
        assert_eq!(f.try_take(), Ok(None));
        p.set(7).unwrap();
        assert_eq!(f.try_take(), Ok(Some(7)));
        // A second take observes a consumed channel.
        assert_eq!(f.try_take(), Err(LcoError::BrokenPromise));
    }

    #[test]
    fn get_timeout_expires_and_succeeds() {
        let (_p, f) = channel::<u32>();
        assert_eq!(
            f.get_timeout(Duration::from_millis(5)),
            Err(LcoError::Timeout)
        );

        let (p, f) = channel();
        let t = std::thread::spawn(move || f.get_timeout(Duration::from_secs(5)));
        p.set(9).unwrap();
        assert_eq!(t.join().unwrap(), Ok(9));
    }

    #[test]
    fn get_with_pumps_while_waiting() {
        let (p, f) = channel();
        let pumps = AtomicU64::new(0);
        let setter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            p.set(5).unwrap();
        });
        let v = f.get_with(|| {
            pumps.fetch_add(1, Ordering::Relaxed);
            false
        });
        setter.join().unwrap();
        assert_eq!(v, Ok(5));
        assert!(pumps.load(Ordering::Relaxed) > 0, "pump never invoked");
    }

    #[test]
    fn get_with_ready_value_pumps_zero_times() {
        let (p, f) = channel();
        p.set(1).unwrap();
        let mut pumped = false;
        assert_eq!(
            f.get_with(|| {
                pumped = true;
                false
            }),
            Ok(1)
        );
        assert!(!pumped);
    }

    #[test]
    fn wait_all_collects_in_order() {
        let mut promises = Vec::new();
        let mut futures = Vec::new();
        for _ in 0..10 {
            let (p, f) = channel();
            promises.push(p);
            futures.push(f);
        }
        let t = std::thread::spawn(move || wait_all(futures));
        for (i, p) in promises.into_iter().enumerate().rev() {
            p.set(i).unwrap();
        }
        assert_eq!(t.join().unwrap(), Ok((0..10).collect::<Vec<_>>()));
    }

    #[test]
    fn wait_all_propagates_broken() {
        let (p1, f1) = channel();
        let (p2, f2) = channel::<u32>();
        p1.set(1).unwrap();
        drop(p2);
        assert_eq!(wait_all(vec![f1, f2]), Err(LcoError::BrokenPromise));
    }

    #[test]
    fn wait_all_with_pump() {
        let (p, f) = channel();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            p.set(3).unwrap();
        });
        let out = wait_all_with(vec![f], || false);
        assert_eq!(out, Ok(vec![3]));
    }
}
