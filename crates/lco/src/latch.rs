//! Single-use countdown latch.

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A single-use countdown latch: waiters block until the count reaches
/// zero.
pub struct Latch {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    /// Latch requiring `count` count-downs. A zero count is immediately
    /// open.
    pub fn new(count: usize) -> Self {
        Latch {
            count: Mutex::new(count),
            cv: Condvar::new(),
        }
    }

    /// Decrement the count (saturating at zero); opens the latch at zero.
    pub fn count_down(&self) {
        let mut count = self.count.lock();
        if *count > 0 {
            *count -= 1;
            if *count == 0 {
                self.cv.notify_all();
            }
        }
    }

    /// Current count.
    pub fn count(&self) -> usize {
        *self.count.lock()
    }

    /// Whether the latch is open.
    pub fn is_open(&self) -> bool {
        self.count() == 0
    }

    /// Block until the latch opens.
    pub fn wait(&self) {
        let mut count = self.count.lock();
        while *count > 0 {
            self.cv.wait(&mut count);
        }
    }

    /// Block until the latch opens or `timeout` passes; returns whether it
    /// opened.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut count = self.count.lock();
        while *count > 0 {
            if self.cv.wait_until(&mut count, deadline).timed_out() {
                return *count == 0;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn opens_at_zero() {
        let l = Latch::new(2);
        assert!(!l.is_open());
        l.count_down();
        assert_eq!(l.count(), 1);
        l.count_down();
        assert!(l.is_open());
        l.wait(); // returns immediately
    }

    #[test]
    fn zero_initial_count_is_open() {
        let l = Latch::new(0);
        assert!(l.is_open());
        l.wait();
    }

    #[test]
    fn count_down_saturates() {
        let l = Latch::new(1);
        l.count_down();
        l.count_down();
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn waiters_are_released() {
        let l = Arc::new(Latch::new(3));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || l.wait()));
        }
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(1));
            l.count_down();
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn wait_timeout_behaviour() {
        let l = Latch::new(1);
        assert!(!l.wait_timeout(Duration::from_millis(5)));
        l.count_down();
        assert!(l.wait_timeout(Duration::from_millis(5)));
    }
}
