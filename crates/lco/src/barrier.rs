//! Reusable generation-counted barrier.
//!
//! The Parquet proxy synchronises localities at every iteration boundary;
//! a reusable barrier avoids re-allocating per iteration. Waiting supports
//! the same cooperative pump as futures, so scheduler workers blocked at
//! the barrier keep the parcel pump running.

use std::time::Duration;

use parking_lot::{Condvar, Mutex};

struct State {
    /// Parties still to arrive in the current generation.
    remaining: usize,
    /// Increments each time the barrier trips.
    generation: u64,
}

/// A reusable barrier for a fixed number of parties.
pub struct Barrier {
    parties: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl Barrier {
    /// Barrier for `parties` participants.
    ///
    /// # Panics
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            parties,
            state: Mutex::new(State {
                remaining: parties,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Completed generations (how many times the barrier has tripped).
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Arrive and block until all parties have arrived.
    ///
    /// Returns `true` for exactly one "leader" arrival per generation.
    pub fn arrive_and_wait(&self) -> bool {
        let mut state = self.state.lock();
        let gen = state.generation;
        state.remaining -= 1;
        if state.remaining == 0 {
            state.remaining = self.parties;
            state.generation += 1;
            self.cv.notify_all();
            return true;
        }
        while state.generation == gen {
            self.cv.wait(&mut state);
        }
        false
    }

    /// Arrive and wait, invoking `pump` while blocked (parking briefly
    /// between pumps that report no work).
    pub fn arrive_and_wait_with(&self, mut pump: impl FnMut() -> bool) -> bool {
        let gen = {
            let mut state = self.state.lock();
            let gen = state.generation;
            state.remaining -= 1;
            if state.remaining == 0 {
                state.remaining = self.parties;
                state.generation += 1;
                self.cv.notify_all();
                return true;
            }
            gen
        };
        loop {
            {
                let state = self.state.lock();
                if state.generation != gen {
                    return false;
                }
                // Don't hold the lock across the pump.
            }
            let did_work = pump();
            let mut state = self.state.lock();
            if state.generation != gen {
                return false;
            }
            if !did_work {
                let _ = self.cv.wait_for(&mut state, Duration::from_micros(100));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_parties_released_one_leader() {
        let b = Arc::new(Barrier::new(4));
        let leaders = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = Arc::clone(&b);
            let l = Arc::clone(&leaders);
            handles.push(std::thread::spawn(move || {
                if b.arrive_and_wait() {
                    l.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert_eq!(b.generation(), 1);
    }

    #[test]
    fn reusable_across_generations() {
        let b = Arc::new(Barrier::new(2));
        let b2 = Arc::clone(&b);
        let t = std::thread::spawn(move || {
            for _ in 0..10 {
                b2.arrive_and_wait();
            }
        });
        for _ in 0..10 {
            b.arrive_and_wait();
        }
        t.join().unwrap();
        assert_eq!(b.generation(), 10);
    }

    #[test]
    fn single_party_never_blocks() {
        let b = Barrier::new(1);
        assert!(b.arrive_and_wait());
        assert!(b.arrive_and_wait());
        assert_eq!(b.generation(), 2);
    }

    #[test]
    fn pumped_wait_invokes_pump() {
        let b = Arc::new(Barrier::new(2));
        let pumps = Arc::new(AtomicU64::new(0));
        let b2 = Arc::clone(&b);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            b2.arrive_and_wait()
        });
        let p = Arc::clone(&pumps);
        let leader = b.arrive_and_wait_with(move || {
            p.fetch_add(1, Ordering::Relaxed);
            false
        });
        let other_leader = t.join().unwrap();
        assert!(leader ^ other_leader, "exactly one leader");
        assert!(pumps.load(Ordering::Relaxed) > 0);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_panics() {
        let _ = Barrier::new(0);
    }
}
