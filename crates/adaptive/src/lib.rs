//! # rpx-adaptive
//!
//! **Adaptive coalescing control** — the realization of the paper's stated
//! goal ("Our aim is to eventually use these metrics to tune, at runtime,
//! parameters relating to active message coalescing", Abstract; §VI
//! future work). The paper itself stops at demonstrating that the
//! network-overhead counter reacts to parameter changes in real time
//! (Fig. 9); this crate closes the loop.
//!
//! Two controllers are provided:
//!
//! * [`OverheadController`] — the paper's envisioned design: watches the
//!   *instantaneous* `/threads/background-overhead` metric (Eq. 4 deltas)
//!   and the parcel arrival-rate counters, hill-climbs `nparcels` on a
//!   power-of-two ladder, and re-starts its search when it detects a
//!   communication *phase change* (a large shift in arrival rate). It
//!   needs no iteration structure in the application.
//! * [`PicsTuner`] — the Charm++/PICS-style baseline (\[6\],\[7\] in the
//!   paper): per application iteration it times a candidate configuration
//!   and converges by comparing iteration times. This is the approach the
//!   paper criticises as "only suited for iterative applications"; we
//!   implement it as the comparison baseline.
//!
//! The shared search machinery lives in [`search`].

#![warn(missing_docs)]

pub mod controller;
pub mod pics;
pub mod search;

pub use controller::{AdaptiveConfig, DestDecision, OverheadController, PerDestController};
pub use pics::PicsTuner;
pub use search::{HillClimber, Ladder};
