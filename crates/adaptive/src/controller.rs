//! The overhead-driven adaptive controller.
//!
//! This is the system the paper's methodology is designed to enable: a
//! runtime component that watches the *instantaneous* network-overhead
//! metric (Eq. 4 computed over sampling windows) together with the parcel
//! arrival-rate counters, and re-tunes the coalescing parameters of a live
//! application — without requiring the application to be iterative, which
//! is the limitation of the PICS approach ([`crate::PicsTuner`]).
//!
//! Structure:
//! * [`ControllerCore`] — the pure decision logic (warm-up, phase-change
//!   detection on the arrival rate, hill climbing on the overhead score).
//!   Deterministically testable.
//! * [`OverheadController`] — the runtime wrapper: a sampling thread that
//!   reads the metrics and counters every window and applies the core's
//!   decisions to a live [`ParamsHandle`]. One knob per action — the
//!   degenerate single-destination case.
//! * [`PerDestController`] — the per-destination wrapper: one
//!   [`ControllerCore`] per destination of a per-destination
//!   [`Coalescer`], all steered from one thread. Destinations are
//!   discovered dynamically as traffic reaches them; each core ticks on
//!   its own destination's parcel counters, so a hot peer and a cold
//!   peer converge to different operating points.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use rpx_coalesce::{Coalescer, CoalescingCounters, ParamsHandle};
use rpx_counters::TelemetryService;
use rpx_metrics::MetricsReader;
use rpx_util::Ewma;

use crate::search::{HillClimber, Ladder};

/// Controller configuration.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Measurement window between decisions.
    pub window: Duration,
    /// Candidate `nparcels` ladder.
    pub ladder: Ladder,
    /// Relative improvement required to keep climbing.
    pub hysteresis: f64,
    /// Arrival-rate shift (relative factor) treated as a phase change.
    pub phase_change_factor: f64,
    /// Windows ignored before the first decision (startup transients).
    pub warmup_windows: u32,
    /// Minimum parcels per window for a decision (quiet windows carry no
    /// signal).
    pub min_parcels_per_window: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: Duration::from_millis(20),
            ladder: Ladder::powers_of_two(1024),
            hysteresis: 0.02,
            phase_change_factor: 4.0,
            warmup_windows: 2,
            min_parcels_per_window: 16,
        }
    }
}

/// One decision made by the controller (for reporting/plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Time since the controller started.
    pub at: Duration,
    /// The `nparcels` value chosen for the next window.
    pub nparcels: usize,
    /// The overhead observed over the completed window.
    pub overhead: f64,
    /// Parcel arrival rate over the window (parcels/second).
    pub rate: f64,
    /// Whether this decision followed a detected phase change.
    pub phase_change: bool,
}

/// Pure decision logic (no threads, no clocks).
#[derive(Debug, Clone)]
pub struct ControllerCore {
    config: AdaptiveConfig,
    climber: HillClimber,
    rate_ewma: Ewma,
    windows_seen: u32,
    phase_changes: u32,
}

impl ControllerCore {
    /// New core starting from `initial_nparcels`.
    pub fn new(config: AdaptiveConfig, initial_nparcels: usize) -> Self {
        let climber = HillClimber::new(config.ladder.clone(), initial_nparcels, config.hysteresis);
        ControllerCore {
            config,
            climber,
            rate_ewma: Ewma::with_half_life(4.0),
            windows_seen: 0,
            phase_changes: 0,
        }
    }

    /// The `nparcels` the application should currently be running with.
    pub fn current(&self) -> usize {
        self.climber.current()
    }

    /// Number of detected phase changes.
    pub fn phase_changes(&self) -> u32 {
        self.phase_changes
    }

    /// Whether the search has converged for the current phase.
    pub fn is_settled(&self) -> bool {
        self.climber.is_settled()
    }

    /// Feed one window's observations; returns the next `nparcels` to
    /// apply (and whether this window was treated as a phase change), or
    /// `None` if no decision was made (warm-up or quiet window).
    pub fn tick(
        &mut self,
        overhead: f64,
        parcels_in_window: u64,
        rate: f64,
    ) -> Option<(usize, bool)> {
        self.windows_seen += 1;
        if self.windows_seen <= self.config.warmup_windows {
            self.rate_ewma.update(rate);
            return None;
        }
        if parcels_in_window < self.config.min_parcels_per_window {
            // Quiet window: the sparse-traffic bypass in the coalescer
            // already handles this regime; don't steer on noise.
            return None;
        }
        let mut phase_change = false;
        if let Some(smoothed) = self.rate_ewma.value() {
            if smoothed > 0.0 {
                let ratio = rate / smoothed;
                if ratio > self.config.phase_change_factor
                    || ratio < 1.0 / self.config.phase_change_factor
                {
                    phase_change = true;
                    self.phase_changes += 1;
                    self.climber.reset();
                    self.rate_ewma.reset();
                }
            }
        }
        self.rate_ewma.update(rate);
        let next = self.climber.observe(overhead);
        Some((next, phase_change))
    }
}

struct Shared {
    stop: AtomicBool,
    decisions: Mutex<Vec<Decision>>,
}

/// The live controller thread.
pub struct OverheadController {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl OverheadController {
    /// Start controlling `params` using metrics from `reader` and traffic
    /// counts from `counters`.
    pub fn start(
        reader: MetricsReader,
        params: ParamsHandle,
        counters: Arc<CoalescingCounters>,
        config: AdaptiveConfig,
    ) -> Self {
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            decisions: Mutex::new(Vec::new()),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("rpx-adaptive".to_string())
            .spawn(move || {
                let started = Instant::now();
                let mut core = ControllerCore::new(config.clone(), params.load().nparcels);
                let mut last_sample = reader.sample();
                let mut last_parcels = counters.parcels.get();
                while !thread_shared.stop.load(Ordering::SeqCst) {
                    // Sleep the window in small slices so stop() is prompt.
                    let wake = Instant::now() + config.window;
                    while Instant::now() < wake {
                        if thread_shared.stop.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let sample = reader.sample();
                    let delta = sample.delta_since(&last_sample);
                    last_sample = sample;
                    let parcels_now = counters.parcels.get();
                    let parcels_in_window = parcels_now.saturating_sub(last_parcels);
                    last_parcels = parcels_now;
                    let rate = parcels_in_window as f64 / config.window.as_secs_f64();
                    if let Some((next, phase_change)) =
                        core.tick(delta.network_overhead(), parcels_in_window, rate)
                    {
                        params.set_nparcels(next);
                        thread_shared.decisions.lock().push(Decision {
                            at: started.elapsed(),
                            nparcels: next,
                            overhead: delta.network_overhead(),
                            rate,
                            phase_change,
                        });
                    }
                }
            })
            .expect("failed to spawn adaptive controller");
        OverheadController {
            shared,
            thread: Some(thread),
        }
    }

    /// Start controlling `params` from a running [`TelemetryService`]
    /// instead of direct counter reads: each window's Eq. 4 overhead is
    /// the service's windowed measurement over the sampled
    /// `/threads/background-work` and `/threads/time/cumulative` rings
    /// ([`TelemetryService::windowed_overhead`]), i.e. the controller and
    /// the exported telemetry series observe the *same* instantaneous
    /// signal. Windows where the sampler has not yet accumulated enough
    /// history produce no decision.
    pub fn start_sampled(
        service: TelemetryService,
        params: ParamsHandle,
        counters: Arc<CoalescingCounters>,
        config: AdaptiveConfig,
    ) -> Self {
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            decisions: Mutex::new(Vec::new()),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("rpx-adaptive".to_string())
            .spawn(move || {
                let started = Instant::now();
                let mut core = ControllerCore::new(config.clone(), params.load().nparcels);
                let mut last_parcels = counters.parcels.get();
                while !thread_shared.stop.load(Ordering::SeqCst) {
                    let wake = Instant::now() + config.window;
                    while Instant::now() < wake {
                        if thread_shared.stop.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let parcels_now = counters.parcels.get();
                    let parcels_in_window = parcels_now.saturating_sub(last_parcels);
                    last_parcels = parcels_now;
                    let rate = parcels_in_window as f64 / config.window.as_secs_f64();
                    let Some(overhead) = service.windowed_overhead(config.window) else {
                        // The sampler hasn't covered this window yet (just
                        // started, or a fully idle window): no signal.
                        continue;
                    };
                    if let Some((next, phase_change)) = core.tick(overhead, parcels_in_window, rate)
                    {
                        params.set_nparcels(next);
                        thread_shared.decisions.lock().push(Decision {
                            at: started.elapsed(),
                            nparcels: next,
                            overhead,
                            rate,
                            phase_change,
                        });
                    }
                }
            })
            .expect("failed to spawn adaptive controller");
        OverheadController {
            shared,
            thread: Some(thread),
        }
    }

    /// Decisions made so far.
    pub fn decisions(&self) -> Vec<Decision> {
        self.shared.decisions.lock().clone()
    }

    /// Stop the controller and return its decision log.
    pub fn stop(mut self) -> Vec<Decision> {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        std::mem::take(&mut *self.shared.decisions.lock())
    }
}

impl Drop for OverheadController {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One decision made for one destination by a [`PerDestController`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DestDecision {
    /// The destination locality this decision applies to.
    pub dest: u32,
    /// The decision itself (the destination's own rate and window count;
    /// the overhead signal is the locality-wide Eq. 4 measurement).
    pub decision: Decision,
}

struct PerDestShared {
    stop: AtomicBool,
    decisions: Mutex<Vec<DestDecision>>,
}

/// Where one window's overhead measurement comes from.
enum OverheadSignal {
    /// Direct counter reads through a [`MetricsReader`] (Eq. 4 deltas).
    Direct(MetricsReader),
    /// A running [`TelemetryService`]'s windowed sampled series.
    Sampled(TelemetryService),
}

/// The per-destination adaptive controller: one hill climber per
/// destination of a per-destination [`Coalescer`], all driven from a
/// single "rpx-adaptive" thread.
///
/// Every window the controller reads the locality-wide overhead signal
/// once, then ticks each destination's [`ControllerCore`] with that
/// destination's own parcel count and arrival rate. Destinations whose
/// window was quiet make no decision (the coalescer's sparse-traffic
/// bypass already covers that regime), so a cold peer keeps its seed
/// parameters while a hot peer climbs — the per-destination split the
/// paper's global knob cannot express. New destinations are picked up on
/// the next window boundary; each core seeds from the destination's
/// current parameter value.
pub struct PerDestController {
    shared: Arc<PerDestShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl PerDestController {
    /// Start steering `coalescer`'s per-destination parameters using
    /// direct metric reads from `reader`.
    pub fn start(reader: MetricsReader, coalescer: Arc<Coalescer>, config: AdaptiveConfig) -> Self {
        Self::spawn(OverheadSignal::Direct(reader), coalescer, config)
    }

    /// Start steering `coalescer`'s per-destination parameters from a
    /// running [`TelemetryService`]'s sampled overhead series (see
    /// [`OverheadController::start_sampled`] for the signal semantics).
    pub fn start_sampled(
        service: TelemetryService,
        coalescer: Arc<Coalescer>,
        config: AdaptiveConfig,
    ) -> Self {
        Self::spawn(OverheadSignal::Sampled(service), coalescer, config)
    }

    fn spawn(signal: OverheadSignal, coalescer: Arc<Coalescer>, config: AdaptiveConfig) -> Self {
        let shared = Arc::new(PerDestShared {
            stop: AtomicBool::new(false),
            decisions: Mutex::new(Vec::new()),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("rpx-adaptive".to_string())
            .spawn(move || {
                let started = Instant::now();
                // Per-destination state: the hill climber plus the parcel
                // count at the previous window boundary.
                let mut cores: HashMap<u32, (ControllerCore, u64)> = HashMap::new();
                let mut last_sample = match &signal {
                    OverheadSignal::Direct(reader) => Some(reader.sample()),
                    OverheadSignal::Sampled(_) => None,
                };
                while !thread_shared.stop.load(Ordering::SeqCst) {
                    let wake = Instant::now() + config.window;
                    while Instant::now() < wake {
                        if thread_shared.stop.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let overhead = match &signal {
                        OverheadSignal::Direct(reader) => {
                            let sample = reader.sample();
                            let delta = sample.delta_since(last_sample.as_ref().unwrap());
                            last_sample = Some(sample);
                            Some(delta.network_overhead())
                        }
                        OverheadSignal::Sampled(service) => {
                            service.windowed_overhead(config.window)
                        }
                    };
                    let Some(overhead) = overhead else {
                        continue;
                    };
                    for dst in coalescer.destinations() {
                        let (core, last_parcels) = cores.entry(dst).or_insert_with(|| {
                            let seed = coalescer.params_for(dst).load().nparcels;
                            (ControllerCore::new(config.clone(), seed), 0)
                        });
                        let parcels_now = coalescer.counters_for(dst).parcels.get();
                        let parcels_in_window = parcels_now.saturating_sub(*last_parcels);
                        *last_parcels = parcels_now;
                        let rate = parcels_in_window as f64 / config.window.as_secs_f64();
                        if let Some((next, phase_change)) =
                            core.tick(overhead, parcels_in_window, rate)
                        {
                            coalescer.params_for(dst).set_nparcels(next);
                            thread_shared.decisions.lock().push(DestDecision {
                                dest: dst,
                                decision: Decision {
                                    at: started.elapsed(),
                                    nparcels: next,
                                    overhead,
                                    rate,
                                    phase_change,
                                },
                            });
                        }
                    }
                }
            })
            .expect("failed to spawn per-destination adaptive controller");
        PerDestController {
            shared,
            thread: Some(thread),
        }
    }

    /// Decisions made so far, in tick order (interleaved across
    /// destinations).
    pub fn decisions(&self) -> Vec<DestDecision> {
        self.shared.decisions.lock().clone()
    }

    /// Stop the controller and return its decision log.
    pub fn stop(mut self) -> Vec<DestDecision> {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        std::mem::take(&mut *self.shared.decisions.lock())
    }
}

impl Drop for PerDestController {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AdaptiveConfig {
        AdaptiveConfig {
            window: Duration::from_millis(5),
            ladder: Ladder::powers_of_two(256),
            hysteresis: 0.01,
            phase_change_factor: 4.0,
            warmup_windows: 1,
            min_parcels_per_window: 10,
        }
    }

    /// Synthetic overhead landscape: convex in log2(nparcels) with a
    /// minimum at `opt`.
    fn overhead_for(nparcels: usize, opt: f64) -> f64 {
        0.1 + 0.05 * ((nparcels as f64).log2() - opt).abs()
    }

    #[test]
    fn core_converges_to_overhead_minimum() {
        let mut core = ControllerCore::new(config(), 1);
        for _ in 0..30 {
            let oh = overhead_for(core.current(), 4.0); // optimum 16
            core.tick(oh, 1000, 1e5);
        }
        assert!(core.is_settled());
        let v = core.current();
        assert!((8..=32).contains(&v), "settled at {v}");
        assert_eq!(core.phase_changes(), 0);
    }

    #[test]
    fn warmup_windows_make_no_decision() {
        let mut core = ControllerCore::new(config(), 4);
        assert_eq!(core.tick(0.5, 1000, 1e5), None); // warm-up
        assert!(core.tick(0.5, 1000, 1e5).is_some());
    }

    #[test]
    fn quiet_windows_make_no_decision() {
        let mut core = ControllerCore::new(config(), 4);
        core.tick(0.5, 1000, 1e5); // warm-up
        assert_eq!(core.tick(0.5, 3, 300.0), None);
        // The chosen value is untouched.
        assert_eq!(core.current(), 4);
    }

    #[test]
    fn rate_shift_triggers_phase_change_and_research() {
        let mut core = ControllerCore::new(config(), 1);
        // Converge in a slow phase (optimum 4).
        for _ in 0..30 {
            let oh = overhead_for(core.current(), 2.0);
            core.tick(oh, 1000, 1e4);
        }
        assert!(core.is_settled());
        // Rate jumps 10×: phase change must re-arm the search…
        let (_, phase_change) = core
            .tick(overhead_for(core.current(), 6.0), 10_000, 1e5)
            .unwrap();
        assert!(phase_change);
        assert_eq!(core.phase_changes(), 1);
        // …and the climber must then converge towards the new optimum 64.
        for _ in 0..30 {
            let oh = overhead_for(core.current(), 6.0);
            core.tick(oh, 10_000, 1e5);
        }
        let v = core.current();
        assert!(v >= 16, "re-converged to {v}");
    }

    #[test]
    fn live_controller_steers_params_handle() {
        use rpx_coalesce::CoalescingParams;
        use rpx_counters::{CallbackCounter, CounterRegistry, CounterValue};
        use std::sync::atomic::AtomicU64;

        // Fake /threads counters whose overhead depends on the *current*
        // nparcels — a closed loop without a real runtime.
        let registry = CounterRegistry::new(0);
        let params = ParamsHandle::new(CoalescingParams::new(1, Duration::from_micros(2000)));
        let func = Arc::new(AtomicU64::new(0));
        let bg = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&func);
        registry.register_or_replace(
            "/threads/time/cumulative",
            CallbackCounter::new(move || CounterValue::Int(f2.load(Ordering::Relaxed) as i64)),
        );
        let b2 = Arc::clone(&bg);
        registry.register_or_replace(
            "/threads/background-work",
            CallbackCounter::new(move || CounterValue::Int(b2.load(Ordering::Relaxed) as i64)),
        );
        let counters = CoalescingCounters::new();

        // Simulated application: every 2 ms, generate load whose overhead
        // follows a convex landscape with the optimum at nparcels = 32.
        let stop = Arc::new(AtomicBool::new(false));
        let app = {
            let params = params.clone();
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            let func = Arc::clone(&func);
            let bg = Arc::clone(&bg);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let n = params.load().nparcels;
                    let oh = 0.1 + 0.08 * ((n as f64).log2() - 5.0).abs();
                    func.fetch_add(1_000_000, Ordering::Relaxed);
                    bg.fetch_add((1_000_000.0 * oh) as u64, Ordering::Relaxed);
                    for _ in 0..200 {
                        counters.record_arrival(Some(10_000));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };

        let controller = OverheadController::start(
            MetricsReader::new(registry),
            params.clone(),
            Arc::clone(&counters),
            config(),
        );
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::SeqCst);
        app.join().unwrap();
        let decisions = controller.stop();

        assert!(!decisions.is_empty(), "controller made no decisions");
        let final_n = params.load().nparcels;
        assert!(
            (8..=128).contains(&final_n),
            "converged to {final_n}, decisions: {decisions:?}"
        );
    }

    #[test]
    fn sampled_controller_steers_from_telemetry_series() {
        use rpx_coalesce::CoalescingParams;
        use rpx_counters::{
            CallbackCounter, CounterRegistry, CounterValue, TelemetryConfig, TelemetryService,
        };
        use std::sync::atomic::AtomicU64;

        let registry = CounterRegistry::new(0);
        let params = ParamsHandle::new(CoalescingParams::new(1, Duration::from_micros(2000)));
        let func = Arc::new(AtomicU64::new(0));
        let bg = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&func);
        registry.register_or_replace(
            "/threads/time/cumulative",
            CallbackCounter::new(move || CounterValue::Int(f2.load(Ordering::Relaxed) as i64)),
        );
        let b2 = Arc::clone(&bg);
        registry.register_or_replace(
            "/threads/background-work",
            CallbackCounter::new(move || CounterValue::Int(b2.load(Ordering::Relaxed) as i64)),
        );
        let counters = CoalescingCounters::new();
        let service = TelemetryService::start(
            registry,
            TelemetryConfig {
                interval: Duration::from_millis(1),
                patterns: vec!["/threads/*".to_string()],
                ..TelemetryConfig::default()
            },
        );

        // Same synthetic convex landscape as the direct-read test: the
        // optimum sits at nparcels = 32.
        let stop = Arc::new(AtomicBool::new(false));
        let app = {
            let params = params.clone();
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            let func = Arc::clone(&func);
            let bg = Arc::clone(&bg);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let n = params.load().nparcels;
                    let oh = 0.1 + 0.08 * ((n as f64).log2() - 5.0).abs();
                    func.fetch_add(1_000_000, Ordering::Relaxed);
                    bg.fetch_add((1_000_000.0 * oh) as u64, Ordering::Relaxed);
                    for _ in 0..200 {
                        counters.record_arrival(Some(10_000));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };

        let controller = OverheadController::start_sampled(
            service.clone(),
            params.clone(),
            Arc::clone(&counters),
            config(),
        );
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::SeqCst);
        app.join().unwrap();
        let decisions = controller.stop();
        service.stop();

        assert!(!decisions.is_empty(), "controller made no decisions");
        // Every decision's overhead came from the sampled series: Eq. 4
        // values are ratios in [0, 1].
        assert!(decisions.iter().all(|d| (0.0..=1.0).contains(&d.overhead)));
        let final_n = params.load().nparcels;
        assert!(
            (8..=128).contains(&final_n),
            "converged to {final_n}, decisions: {decisions:?}"
        );
    }

    #[test]
    fn per_dest_controller_steers_hot_and_cold_destinations_apart() {
        use rpx_coalesce::{CoalescingParams, FlushPolicy};
        use rpx_counters::{CallbackCounter, CounterRegistry, CounterValue};
        use rpx_parcel::{ParcelBatch, SendPath};
        use rpx_util::TimerService;
        use std::sync::atomic::AtomicU64;

        struct NullPath;
        impl SendPath for NullPath {
            fn emit(&self, _dst: u32, _batch: ParcelBatch) {}
        }

        let registry = CounterRegistry::new(0);
        let func = Arc::new(AtomicU64::new(0));
        let bg = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&func);
        registry.register_or_replace(
            "/threads/time/cumulative",
            CallbackCounter::new(move || CounterValue::Int(f2.load(Ordering::Relaxed) as i64)),
        );
        let b2 = Arc::clone(&bg);
        registry.register_or_replace(
            "/threads/background-work",
            CallbackCounter::new(move || CounterValue::Int(b2.load(Ordering::Relaxed) as i64)),
        );

        let timer = Arc::new(TimerService::new("perdest-test"));
        let coalescer = Coalescer::per_destination(
            "act",
            ParamsHandle::new(CoalescingParams::new(1, Duration::from_micros(2000))),
            FlushPolicy::Append,
            timer,
            Arc::new(NullPath) as _,
        );

        // Destination 1 is hot (busy every window), destination 2 is cold
        // (always under min_parcels_per_window). Overhead follows a convex
        // landscape in the HOT destination's nparcels, optimum at 32.
        let stop = Arc::new(AtomicBool::new(false));
        let app = {
            let coalescer = Arc::clone(&coalescer);
            let stop = Arc::clone(&stop);
            let func = Arc::clone(&func);
            let bg = Arc::clone(&bg);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let n = coalescer.params_for(1).load().nparcels;
                    let oh = 0.1 + 0.08 * ((n as f64).log2() - 5.0).abs();
                    func.fetch_add(1_000_000, Ordering::Relaxed);
                    bg.fetch_add((1_000_000.0 * oh) as u64, Ordering::Relaxed);
                    for _ in 0..200 {
                        coalescer.counters_for(1).record_arrival(Some(10_000));
                    }
                    coalescer.counters_for(2).record_arrival(Some(2_000_000));
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };

        let controller = PerDestController::start(
            MetricsReader::new(registry),
            Arc::clone(&coalescer),
            config(),
        );
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::SeqCst);
        app.join().unwrap();
        let decisions = controller.stop();

        let hot: Vec<_> = decisions.iter().filter(|d| d.dest == 1).collect();
        let cold: Vec<_> = decisions.iter().filter(|d| d.dest == 2).collect();
        assert!(!hot.is_empty(), "no decisions for the hot destination");
        assert!(cold.is_empty(), "quiet destination must not be steered");
        let hot_n = coalescer.params_for(1).load().nparcels;
        let cold_n = coalescer.params_for(2).load().nparcels;
        assert!(
            (8..=128).contains(&hot_n),
            "hot converged to {hot_n}, decisions: {decisions:?}"
        );
        assert_eq!(cold_n, 1, "cold destination keeps its seed parameters");
        assert_ne!(hot_n, cold_n, "destinations must diverge");
    }

    #[test]
    fn per_dest_stop_is_prompt() {
        use rpx_coalesce::{CoalescingParams, FlushPolicy};
        use rpx_counters::CounterRegistry;
        use rpx_parcel::{ParcelBatch, SendPath};
        use rpx_util::TimerService;

        struct NullPath;
        impl SendPath for NullPath {
            fn emit(&self, _dst: u32, _batch: ParcelBatch) {}
        }
        let coalescer = Coalescer::per_destination(
            "act",
            ParamsHandle::new(CoalescingParams::default()),
            FlushPolicy::Append,
            Arc::new(TimerService::new("perdest-stop")),
            Arc::new(NullPath) as _,
        );
        let controller = PerDestController::start(
            MetricsReader::new(CounterRegistry::new(0)),
            coalescer,
            AdaptiveConfig {
                window: Duration::from_secs(10),
                ..config()
            },
        );
        let t0 = Instant::now();
        let _ = controller.stop();
        assert!(t0.elapsed() < Duration::from_secs(1), "stop was not prompt");
    }

    #[test]
    fn stop_is_prompt_and_drop_is_clean() {
        use rpx_coalesce::CoalescingParams;
        use rpx_counters::CounterRegistry;
        let registry = CounterRegistry::new(0);
        let controller = OverheadController::start(
            MetricsReader::new(registry),
            ParamsHandle::new(CoalescingParams::default()),
            CoalescingCounters::new(),
            AdaptiveConfig {
                window: Duration::from_secs(10), // long window
                ..config()
            },
        );
        let t0 = Instant::now();
        let _ = controller.stop();
        assert!(t0.elapsed() < Duration::from_secs(1), "stop was not prompt");
    }
}
