//! Search machinery: value ladders and hill climbing.

/// A discrete, ordered ladder of candidate values (e.g. powers of two for
/// `nparcels`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ladder {
    values: Vec<usize>,
}

impl Ladder {
    /// A ladder from an explicit, strictly increasing value list.
    ///
    /// # Panics
    /// Panics if empty or not strictly increasing.
    pub fn new(values: Vec<usize>) -> Self {
        assert!(!values.is_empty(), "ladder must not be empty");
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "ladder must be strictly increasing"
        );
        Ladder { values }
    }

    /// Powers of two from 1 to `max` inclusive (1, 2, 4, …).
    pub fn powers_of_two(max: usize) -> Self {
        let mut values = Vec::new();
        let mut v = 1usize;
        while v <= max {
            values.push(v);
            v *= 2;
        }
        Ladder::new(values)
    }

    /// The candidate values.
    pub fn values(&self) -> &[usize] {
        &self.values
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the ladder is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Index of the rung closest to `value`.
    pub fn nearest(&self, value: usize) -> usize {
        self.values
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v.abs_diff(value))
            .map(|(i, _)| i)
            .expect("non-empty ladder")
    }
}

/// Hill climbing over a [`Ladder`], minimising a noisy score.
///
/// Protocol: call [`HillClimber::current`] to get the value to apply, run
/// a measurement window, then feed the observed score to
/// [`HillClimber::observe`]; it returns the next value to apply.
///
/// The climber keeps moving in its current direction while scores improve
/// by more than `hysteresis` (relative); otherwise it reverses once, and
/// if that fails too it settles. A settled climber re-arms when
/// [`HillClimber::reset`] is called (phase change).
#[derive(Debug, Clone)]
pub struct HillClimber {
    ladder: Ladder,
    index: usize,
    direction: isize,
    last_score: Option<f64>,
    /// Relative improvement required to keep moving (e.g. 0.02 = 2 %).
    hysteresis: f64,
    reversals: u32,
    settled: bool,
}

impl HillClimber {
    /// New climber starting at the rung nearest `start`, moving upward
    /// first.
    pub fn new(ladder: Ladder, start: usize, hysteresis: f64) -> Self {
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        let index = ladder.nearest(start);
        HillClimber {
            ladder,
            index,
            direction: 1,
            last_score: None,
            hysteresis,
            reversals: 0,
            settled: false,
        }
    }

    /// The value currently under evaluation.
    pub fn current(&self) -> usize {
        self.ladder.values()[self.index]
    }

    /// Whether the search has converged.
    pub fn is_settled(&self) -> bool {
        self.settled
    }

    /// Feed the score measured at [`HillClimber::current`]; returns the
    /// next value to apply. Lower scores are better.
    pub fn observe(&mut self, score: f64) -> usize {
        if self.settled {
            return self.current();
        }
        match self.last_score {
            None => {
                // First observation: just move in the current direction.
                self.last_score = Some(score);
                self.step();
            }
            Some(prev) => {
                let improved = score < prev * (1.0 - self.hysteresis);
                if improved {
                    self.last_score = Some(score);
                    self.step();
                } else {
                    // Worse (or flat): step back and reverse.
                    self.step_back();
                    self.direction = -self.direction;
                    self.reversals += 1;
                    if self.reversals >= 2 {
                        self.settled = true;
                    } else {
                        // Try the other direction from the best-known rung.
                        self.last_score = Some(prev.min(score));
                        self.step();
                    }
                }
            }
        }
        self.current()
    }

    /// Restart the search (e.g. on a detected phase change), keeping the
    /// current position as the new starting point.
    pub fn reset(&mut self) {
        self.direction = 1;
        self.last_score = None;
        self.reversals = 0;
        self.settled = false;
    }

    fn step(&mut self) {
        let next = self.index as isize + self.direction;
        if next < 0 || next >= self.ladder.len() as isize {
            // Hit a ladder end: reverse instead.
            self.direction = -self.direction;
            self.reversals += 1;
            if self.reversals >= 2 {
                self.settled = true;
                return;
            }
            let next = self.index as isize + self.direction;
            if next >= 0 && next < self.ladder.len() as isize {
                self.index = next as usize;
            }
        } else {
            self.index = next as usize;
        }
    }

    fn step_back(&mut self) {
        let back = self.index as isize - self.direction;
        if back >= 0 && back < self.ladder.len() as isize {
            self.index = back as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_construction() {
        let l = Ladder::powers_of_two(128);
        assert_eq!(l.values(), &[1, 2, 4, 8, 16, 32, 64, 128]);
        assert_eq!(l.len(), 8);
        assert!(!l.is_empty());
    }

    #[test]
    fn ladder_nearest() {
        let l = Ladder::powers_of_two(128);
        assert_eq!(l.values()[l.nearest(1)], 1);
        assert_eq!(l.values()[l.nearest(5)], 4);
        assert_eq!(l.values()[l.nearest(100)], 128);
        assert_eq!(l.values()[l.nearest(1_000_000)], 128);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_ladder_panics() {
        let _ = Ladder::new(vec![1, 4, 2]);
    }

    #[test]
    #[should_panic(expected = "not be empty")]
    fn empty_ladder_panics() {
        let _ = Ladder::new(vec![]);
    }

    /// Drive a climber against a known score function until settled;
    /// returns (final value, observations used).
    fn run_to_convergence(mut climber: HillClimber, score: impl Fn(usize) -> f64) -> (usize, u32) {
        let mut steps = 0;
        while !climber.is_settled() && steps < 50 {
            let s = score(climber.current());
            climber.observe(s);
            steps += 1;
        }
        (climber.current(), steps)
    }

    #[test]
    fn climbs_to_minimum_of_convex_score() {
        // Score minimised at 16 (U-shape like Parquet's Fig. 6).
        let score = |v: usize| ((v as f64).log2() - 4.0).abs() + 1.0;
        let climber = HillClimber::new(Ladder::powers_of_two(256), 1, 0.01);
        let (best, steps) = run_to_convergence(climber, score);
        assert!(
            (8..=32).contains(&best),
            "settled at {best} after {steps} steps"
        );
    }

    #[test]
    fn climbs_downward_when_started_high() {
        let score = |v: usize| ((v as f64).log2() - 2.0).abs() + 1.0; // min at 4
        let climber = HillClimber::new(Ladder::powers_of_two(256), 256, 0.01);
        let (best, _) = run_to_convergence(climber, score);
        assert!((2..=8).contains(&best), "settled at {best}");
    }

    #[test]
    fn monotone_score_settles_at_ladder_end() {
        // Monotone improvement with size (toy app, Fig. 5): should end on
        // the largest rung.
        let score = |v: usize| 1000.0 / v as f64;
        let climber = HillClimber::new(Ladder::powers_of_two(128), 1, 0.01);
        let (best, _) = run_to_convergence(climber, score);
        assert_eq!(best, 128);
    }

    #[test]
    fn hysteresis_ignores_noise_level_changes() {
        // Score flat within ±1%: climber must settle quickly, not wander.
        let score = |v: usize| 1.0 + 0.005 * ((v % 3) as f64);
        let climber = HillClimber::new(Ladder::powers_of_two(64), 8, 0.02);
        let (_best, steps) = run_to_convergence(climber, score);
        assert!(steps <= 6, "took {steps} steps on flat landscape");
    }

    #[test]
    fn reset_rearms_a_settled_climber() {
        let score = |v: usize| 1000.0 / v as f64;
        let mut climber = HillClimber::new(Ladder::powers_of_two(8), 1, 0.01);
        while !climber.is_settled() {
            let s = score(climber.current());
            climber.observe(s);
        }
        assert!(climber.is_settled());
        climber.reset();
        assert!(!climber.is_settled());
        // Settled climbers hold their value on observe.
        let mut settled = HillClimber::new(Ladder::powers_of_two(8), 1, 0.01);
        settled.settled = true;
        let v = settled.current();
        assert_eq!(settled.observe(0.0), v);
    }
}
