//! The PICS-style per-iteration tuning baseline.
//!
//! Charm++'s TRAM used PICS (a Performance-Analysis-Based Introspective
//! Control System, \[6\]\[7\] in the paper) to pick a coalescing buffer size:
//! each application *iteration* runs with a candidate configuration, its
//! time is measured, and the search converges after a handful of
//! decisions (the paper cites 5 decisions for the all-to-all benchmark).
//!
//! [`PicsTuner`] reproduces that scheme over the `nparcels` ladder with a
//! ternary-style elimination: each decision bisects the candidate range
//! by comparing the measured times of its probe points. It requires the
//! application to *have* iterations and to report their times — the
//! structural limitation the paper's counter-driven approach removes.

use crate::search::Ladder;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    Lo,
    Hi,
}

/// Per-iteration search over `nparcels` candidates.
#[derive(Debug, Clone)]
pub struct PicsTuner {
    ladder: Ladder,
    lo: usize,
    hi: usize,
    probe: Probe,
    lo_time: Option<f64>,
    decisions: u32,
    converged: bool,
}

impl PicsTuner {
    /// New tuner over `ladder`.
    pub fn new(ladder: Ladder) -> Self {
        let hi = ladder.len() - 1;
        PicsTuner {
            ladder,
            lo: 0,
            hi,
            probe: Probe::Lo,
            lo_time: None,
            decisions: 0,
            converged: false,
        }
    }

    fn lo_probe_index(&self) -> usize {
        self.lo + (self.hi - self.lo) / 3
    }

    fn hi_probe_index(&self) -> usize {
        self.hi - (self.hi - self.lo) / 3
    }

    /// The configuration to run the *next* iteration with.
    pub fn current(&self) -> usize {
        let idx = if self.converged {
            self.lo
        } else {
            match self.probe {
                Probe::Lo => self.lo_probe_index(),
                Probe::Hi => self.hi_probe_index(),
            }
        };
        self.ladder.values()[idx]
    }

    /// Whether the search has converged.
    pub fn is_converged(&self) -> bool {
        self.converged
    }

    /// Number of decisions (range eliminations) made so far.
    pub fn decisions(&self) -> u32 {
        self.decisions
    }

    /// Report the measured time of the iteration that ran with
    /// [`PicsTuner::current`]; returns the configuration for the next
    /// iteration.
    pub fn report_iteration(&mut self, time_secs: f64) -> usize {
        if self.converged {
            return self.current();
        }
        match self.probe {
            Probe::Lo => {
                self.lo_time = Some(time_secs);
                if self.lo_probe_index() == self.hi_probe_index() {
                    // Range too small to distinguish probes: done.
                    self.lo = self.lo_probe_index();
                    self.converged = true;
                    self.decisions += 1;
                } else {
                    self.probe = Probe::Hi;
                }
            }
            Probe::Hi => {
                let lo_time = self.lo_time.take().expect("lo probed before hi");
                self.decisions += 1;
                if lo_time <= time_secs {
                    self.hi = self.hi_probe_index().saturating_sub(1).max(self.lo);
                } else {
                    self.lo = (self.lo_probe_index() + 1).min(self.hi);
                }
                self.probe = Probe::Lo;
                if self.lo >= self.hi {
                    self.lo = self.lo.min(self.hi);
                    self.converged = true;
                }
            }
        }
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mut tuner: PicsTuner, score: impl Fn(usize) -> f64, max_iters: u32) -> (usize, u32) {
        let mut iters = 0;
        while !tuner.is_converged() && iters < max_iters {
            let t = score(tuner.current());
            tuner.report_iteration(t);
            iters += 1;
        }
        (tuner.current(), tuner.decisions())
    }

    #[test]
    fn converges_on_convex_landscape() {
        // Minimum at 4 — the Parquet shape (Fig. 6).
        let score = |v: usize| ((v as f64).log2() - 2.0).powi(2) + 1.0;
        let tuner = PicsTuner::new(Ladder::powers_of_two(1024));
        let (best, decisions) = run(tuner, score, 100);
        assert!((2..=8).contains(&best), "converged to {best}");
        // The paper cites PICS converging in ~5 decisions on a similar
        // ladder; ours must be in the same ballpark.
        assert!(decisions <= 8, "{decisions} decisions");
    }

    #[test]
    fn converges_on_monotone_landscape() {
        let score = |v: usize| 1000.0 / v as f64; // bigger is better
        let tuner = PicsTuner::new(Ladder::powers_of_two(1024));
        let (best, _) = run(tuner, score, 100);
        assert!(best >= 256, "converged to {best}");
    }

    #[test]
    fn single_candidate_converges_immediately() {
        let tuner = PicsTuner::new(Ladder::new(vec![4]));
        let (best, _) = run(tuner, |_| 1.0, 10);
        assert_eq!(best, 4);
    }

    #[test]
    fn converged_tuner_holds_value() {
        let mut tuner = PicsTuner::new(Ladder::new(vec![2, 4]));
        let mut guard = 0;
        while !tuner.is_converged() && guard < 20 {
            tuner.report_iteration(1.0);
            guard += 1;
        }
        assert!(tuner.is_converged());
        let v = tuner.current();
        assert_eq!(tuner.report_iteration(99.0), v);
        assert_eq!(tuner.current(), v);
    }

    #[test]
    fn iteration_budget_is_bounded() {
        // Even a 11-rung ladder must converge within a few dozen
        // iterations regardless of the landscape.
        for seed in 0..5u64 {
            let score = move |v: usize| (v as f64 * (seed + 1) as f64).sin() + 2.0;
            let tuner = PicsTuner::new(Ladder::powers_of_two(1024));
            let mut t = tuner;
            let mut iters = 0;
            while !t.is_converged() {
                let s = score(t.current());
                t.report_iteration(s);
                iters += 1;
                assert!(iters < 64, "did not converge");
            }
        }
    }
}
